"""R005 — checked-overflow: multiplicity arithmetic must be overflow-checked.

Multiplicity columns are int64 numpy arrays, and numpy silently wraps on
int64 overflow — a wrapped multiplicity turns into a wrong (possibly
negative) count and a wrong sensitivity, the worst failure mode for a DP
system.  :mod:`repro.engine.columnar` provides checked helpers
(``_pair_products``, ``_group_sums``, ``_checked_scale``) that raise
:class:`~repro.exceptions.MultiplicityOverflowError` instead; raw ``+``
or ``*`` on multiplicity operands is banned outside those helpers.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePath
from typing import Iterator

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    walk_skipping_nested_functions,
)

#: Local names recognised as multiplicity arrays.
MULT_NAME = re.compile(r"^_?(left_|right_|new_|out_)?mults?$")

#: Attribute reads recognised as multiplicity columns.
MULT_ATTRS = frozenset({"_mult"})

#: Functions allowed to do raw arithmetic: the checked helpers themselves.
CHECKED_HELPERS = re.compile(r"^_(pair_products|group_sums|checked_\w+)$")


def _is_mult_operand(node: ast.AST) -> bool:
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in MULT_ATTRS
    if isinstance(node, ast.Name):
        return MULT_NAME.match(node.id) is not None
    return False


class CheckedOverflowRule(Rule):
    rule_id = "R005"
    title = "checked-overflow: raw +/* on int64 multiplicity columns"
    rationale = (
        "numpy int64 arithmetic wraps silently; multiplicity products and "
        "sums must go through the checked helpers in engine/columnar.py."
    )

    def applies_to(self, path: PurePath) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if CHECKED_HELPERS.match(node.name):
                    continue
                yield from self._check_scope(ctx, node)
        yield from self._check_scope(ctx, ctx.tree, top_level=True)

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, top_level: bool = False
    ) -> Iterator[Finding]:
        for node in walk_skipping_nested_functions(scope):
            if top_level and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mult)):
                if _is_mult_operand(node.left) or _is_mult_operand(node.right):
                    yield ctx.finding(
                        self,
                        node,
                        "raw arithmetic on a multiplicity column; use the "
                        "checked helpers (_pair_products/_group_sums/"
                        "_checked_scale) to get overflow detection",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Mult)
            ):
                if _is_mult_operand(node.target) or _is_mult_operand(node.value):
                    yield ctx.finding(
                        self,
                        node,
                        "raw augmented arithmetic on a multiplicity column; use "
                        "the checked helpers in engine/columnar.py",
                    )
