"""Relation schemas: ordered, named attribute lists.

A :class:`Schema` is an immutable ordered sequence of attribute names.  The
engine stores tuples positionally, so the schema is the single source of
truth for which position holds which attribute.  Natural joins, projections
and group-bys all consult the schema to translate attribute names into tuple
positions exactly once per operation, then work on plain Python tuples.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro.exceptions import SchemaError, UnknownAttributeError


class Schema:
    """An immutable ordered list of distinct attribute names.

    Parameters
    ----------
    attributes:
        Attribute names in positional order.  Names must be non-empty
        strings and must not repeat.

    Examples
    --------
    >>> s = Schema(["A", "B"])
    >>> s.index_of("B")
    1
    >>> s.project_positions(["B"])
    (1,)
    """

    __slots__ = ("_attributes", "_positions", "_projection_cache")

    def __init__(self, attributes: Iterable[str]):
        attrs = tuple(attributes)
        for name in attrs:
            if not isinstance(name, str) or not name:
                raise SchemaError(f"attribute names must be non-empty strings, got {name!r}")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in schema: {attrs}")
        self._attributes: Tuple[str, ...] = attrs
        self._positions = {name: i for i, name in enumerate(attrs)}
        self._projection_cache: dict = {}

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attribute names in positional order."""
        return self._attributes

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    def index_of(self, attribute: str) -> int:
        """Return the position of ``attribute``.

        Raises :class:`~repro.exceptions.UnknownAttributeError` if absent.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise UnknownAttributeError(attribute, where=f"schema {self._attributes}") from None

    def project_positions(self, attributes: Sequence[str]) -> Tuple[int, ...]:
        """Positions of ``attributes``, in the order given.

        Memoised per attribute tuple: the join/semijoin/group-by operators
        resolve the same projections on every call over the same schemas,
        so repeated lookups cost one dict hit instead of a rebuild.
        """
        key = tuple(attributes)
        cached = self._projection_cache.get(key)
        if cached is None:
            cached = tuple(self.index_of(a) for a in key)
            self._projection_cache[key] = cached
        return cached

    def common(self, other: "Schema") -> Tuple[str, ...]:
        """Attributes shared with ``other``, in *this* schema's order."""
        other_set = set(other._attributes)
        return tuple(a for a in self._attributes if a in other_set)

    def union(self, other: "Schema") -> "Schema":
        """Schema of the natural join: this schema followed by the
        attributes of ``other`` that are not already present."""
        mine = set(self._attributes)
        return Schema(self._attributes + tuple(a for a in other._attributes if a not in mine))

    def restricted_to(self, attributes: Iterable[str]) -> "Schema":
        """Sub-schema keeping only ``attributes``, preserving this order."""
        keep = set(attributes)
        unknown = keep - set(self._attributes)
        if unknown:
            raise UnknownAttributeError(sorted(unknown)[0], where=f"schema {self._attributes}")
        return Schema(a for a in self._attributes if a in keep)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema({list(self._attributes)!r})"
