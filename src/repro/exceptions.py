"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class.  Sub-classes are grouped by the layer that raises
them (schema/engine, query analysis, sensitivity algorithms, privacy).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation or database was built with an inconsistent schema.

    Raised for duplicate attribute names, arity mismatches between a schema
    and a tuple, or attempts to combine relations whose shared attributes
    disagree on position conventions.
    """


class UnknownRelationError(ReproError):
    """A query or operation referenced a relation not present in the database."""

    def __init__(self, name: str):
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(ReproError):
    """An operation referenced an attribute not present in the schema."""

    def __init__(self, attribute: str, where: str = ""):
        suffix = f" in {where}" if where else ""
        super().__init__(f"unknown attribute: {attribute!r}{suffix}")
        self.attribute = attribute


class QueryStructureError(ReproError):
    """A query does not satisfy the structural requirements of an algorithm.

    Examples: running the path-join algorithm on a non-path query, running
    plain TSens on a cyclic query without a hypertree decomposition, or a
    query with self-joins (unsupported by the paper's algorithms).
    """


class NotAcyclicError(QueryStructureError):
    """GYO decomposition did not empty the hypergraph: the query is cyclic."""


class SelfJoinError(QueryStructureError):
    """The query repeats a base relation; the paper's algorithms exclude this."""


class DecompositionError(QueryStructureError):
    """A supplied (generalized) hypertree decomposition is invalid."""


class ParseError(ReproError):
    """A datalog-style query string could not be parsed."""


class PrivacyBudgetError(ReproError):
    """A mechanism was asked to spend more privacy budget than it holds."""


class MultiplicityOverflowError(ReproError):
    """A columnar-backend operation would overflow int64 multiplicities.

    The python backend (arbitrary-precision ints) handles such inputs."""


class MechanismConfigError(ReproError, ValueError):
    """A DP mechanism received inconsistent configuration parameters.

    Also a :class:`ValueError`: an ``epsilon <= 0`` or ``scale <= 0`` is a
    plain bad argument, and callers outside the library naturally reach
    for ``except ValueError``.
    """


class SessionError(ReproError):
    """A prepared-query session was driven with an invalid request.

    Examples: an update-stream element whose op is neither ``"insert"``
    nor ``"delete"``."""


class ServeError(ReproError):
    """The serving layer (:mod:`repro.serve`) was driven invalidly.

    Examples: reading through a lease that was already released, submitting
    work to a closed epoch manager or admission queue, or a server-side
    failure reported back to a client whose error type is not one of the
    library's own exception classes.
    """


class ProtocolError(ServeError):
    """A wire message violated the serving protocol.

    Raised for non-JSON lines, missing ``op``/``id`` fields, unknown
    operations and oversized frames — on either side of the connection.
    """


class TenantError(ServeError):
    """A multi-tenant request referenced an invalid or unknown tenant."""


class InternalError(ReproError):
    """An internal invariant of the library was violated.

    Replaces bare ``assert`` statements in library code paths: unlike an
    assert, the check survives ``python -O`` and the message reaches the
    caller.  Seeing this exception always indicates a bug in ``repro``
    itself, not in its inputs.
    """
