"""R008 — resident chains: no coordinator-side materialisation.

The worker-resident fold pipeline's perf contract is that a compiled
chain's intermediates never visit the coordinator: shards are loaded
once, every step folds inside the worker arenas, and only final
per-shard aggregates come back.  One stray ``import_result`` /
``decode_relation`` / ``to_relation`` / ``_combine`` inside the chain
driver silently reintroduces the per-op round trip the pipeline exists
to remove — the code stays correct, the speedup quietly dies, and no
functional test notices.

This rule pins the contract statically: inside an ``engine/parallel``
module, the chain-execution classes (:class:`PipelinePlan`,
:class:`WorkerState`) must not call a materialisation primitive
anywhere except the two sanctioned reduction points —
``WorkerState.fetch`` (explicit register materialisation for
maintenance) and ``WorkerState._reduce_emits`` (the final
overflow-checked reduction of emitted aggregates).
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.analysis.framework import FileContext, Finding, Rule

#: Calls that pull worker output into coordinator memory.
BANNED_CALLS = frozenset(
    {"import_result", "decode_relation", "to_relation", "_combine"}
)

#: Classes that make up the chain-execution layer.
CHAIN_CLASSES = frozenset({"PipelinePlan", "WorkerState"})

#: The only chain-execution methods allowed to materialise: explicit
#: register fetch and the final emit reduction.
ALLOWED_METHODS = frozenset({"fetch", "_reduce_emits"})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class ResidentChainMaterialisationRule(Rule):
    rule_id = "R008"
    title = "resident chain execution materialises on the coordinator"
    rationale = (
        "Chain intermediates must stay in the worker arenas; a "
        "coordinator-side import_result/decode_relation/to_relation/"
        "_combine inside PipelinePlan/WorkerState reintroduces the "
        "per-op round trip and silently forfeits the resident speedup. "
        "Only fetch and _reduce_emits may materialise."
    )

    def applies_to(self, path: PurePath) -> bool:
        return path.name == "parallel.py" and "engine" in path.parts

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef)
                    and node.name in CHAIN_CLASSES):
                continue
            for method in node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in ALLOWED_METHODS:
                    continue
                for call in ast.walk(method):
                    if not isinstance(call, ast.Call):
                        continue
                    name = _call_name(call)
                    if name in BANNED_CALLS:
                        yield ctx.finding(
                            self,
                            call,
                            f"{node.name}.{method.name} calls {name}(); "
                            "chain intermediates must stay worker-"
                            "resident — materialise only in fetch or "
                            "_reduce_emits",
                        )
