"""Maintained sensitivity state == recompute-from-scratch, under streams.

PR 4 pinned that a session's *counts* survive committed updates; the
maintained join-state layer extends that to the whole TSens pipeline —
topjoins and multiplicity tables are folded under updates, and
sensitivity reads refresh from the maintained state instead of
rebuilding.  The contract tested here:

* After a random insert/delete stream *interleaved with count and
  sensitivity probes* (the probes matter: they materialise topjoins and
  tables mid-stream, so later updates must fold deltas into them),
  ``sensitivity()``, ``most_sensitive()`` and ``top_k()`` on the
  maintained session equal a **fresh** session prepared on the mutated
  database — same local sensitivity, same per-relation witnesses and
  assignments, same multiplicity-table entries.
* This holds on both execution backends, for the ``tsens`` and ``path``
  methods, across acyclic/path/cyclic(GHD)/disconnected query shapes and
  selection predicates.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import prepare
from repro.datasets import (
    random_acyclic_query,
    random_database,
    random_path_query,
    random_update_stream,
)
from repro.engine import Database, Relation
from repro.query import parse_predicate, parse_query

seeds = st.integers(min_value=0, max_value=10_000)

BACKENDS = ("python", "columnar")


def _assert_same_result(maintained, fresh, query):
    assert maintained.method == fresh.method
    assert maintained.local_sensitivity == fresh.local_sensitivity
    for relation in query.relation_names:
        a = maintained.per_relation[relation]
        b = fresh.per_relation[relation]
        assert a.sensitivity == b.sensitivity, relation
        assert dict(a.assignment) == dict(b.assignment), relation
    if fresh.witness is None:
        assert maintained.witness is None
    else:
        assert maintained.witness is not None
        assert maintained.witness.sensitivity == fresh.witness.sensitivity


def _assert_same_tables(maintained, fresh, query):
    """Entry-wise multiplicity-table equality (the truncation mechanism
    reads arbitrary entries, not just the argmax)."""
    assert set(maintained.tables) == set(fresh.tables)
    for relation in maintained.tables:
        a = maintained.tables[relation].dense()
        b = fresh.tables[relation].dense()
        for row in set(a) | set(b):
            assert a.multiplicity(row) == b.multiplicity(row), (relation, row)


def _probe(session, query, rng, methods=("tsens",), with_top_k=True):
    """A mid-stream read mix: materialises/refreshes maintained state."""
    session.count()
    for method in methods:
        session.sensitivity(method=method)
    session.most_sensitive()
    if with_top_k:
        session.top_k(1 + int(rng.integers(0, 3)))


@pytest.mark.parametrize("backend", BACKENDS)
class TestMaintainedEqualsFresh:
    @given(seeds, st.integers(min_value=0, max_value=18))
    @settings(max_examples=20, deadline=None)
    def test_acyclic_interleaved_stream(self, backend, seed, n_updates):
        rng = np.random.default_rng(seed)
        # Up to 5 atoms: deep enough that a sibling-staged topjoin can
        # own a subtree, composing the sideways and downward fan-outs.
        query = random_acyclic_query(rng, num_atoms=1 + int(rng.integers(0, 5)))
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        _probe(session, query, rng)  # materialise state before the stream
        stream = random_update_stream(query, db, rng, n_updates)
        for index, (op, relation, row) in enumerate(stream):
            if op == "insert":
                session.insert(relation, row)
            else:
                session.delete(relation, row)
            if index % 3 == 0:
                _probe(session, query, rng)
        fresh = prepare(query, session.db)
        assert session.count() == fresh.count()
        maintained = session.sensitivity(method="tsens")
        recomputed = fresh.sensitivity(method="tsens")
        _assert_same_result(maintained, recomputed, query)
        _assert_same_tables(maintained, recomputed, query)
        assert dict(session.most_sensitive()) == dict(fresh.most_sensitive())
        k = 1 + int(rng.integers(0, 3))
        _assert_same_result(session.top_k(k), fresh.top_k(k), query)

    @given(seeds, st.integers(min_value=1, max_value=12))
    @settings(max_examples=15, deadline=None)
    def test_path_methods(self, backend, seed, n_updates):
        rng = np.random.default_rng(seed)
        query = random_path_query(rng, length=1 + int(rng.integers(0, 3)))
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        _probe(session, query, rng, methods=("path", "tsens"))
        stream = random_update_stream(query, db, rng, n_updates)
        for index, (op, relation, row) in enumerate(stream):
            if op == "insert":
                session.insert(relation, row)
            else:
                session.delete(relation, row)
            if index % 2 == 0:
                _probe(session, query, rng, methods=("path", "tsens"))
        fresh = prepare(query, session.db)
        for method in ("path", "tsens"):
            _assert_same_result(
                session.sensitivity(method=method),
                fresh.sensitivity(method=method),
                query,
            )

    @given(seeds, st.integers(min_value=1, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_cyclic_ghd_stream(self, backend, seed, n_updates):
        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db = random_database(query, rng, domain_size=3, max_rows=5, backend=backend)
        session = prepare(query, db)
        _probe(session, query, rng, with_top_k=False)  # top-k raises on GHDs
        stream = random_update_stream(query, db, rng, n_updates)
        for index, (op, relation, row) in enumerate(stream):
            if op == "insert":
                session.insert(relation, row)
            else:
                session.delete(relation, row)
            if index % 2 == 0:
                _probe(session, query, rng, with_top_k=False)
        fresh = prepare(query, session.db)
        maintained = session.sensitivity()
        recomputed = fresh.sensitivity()
        _assert_same_result(maintained, recomputed, query)
        _assert_same_tables(maintained, recomputed, query)

    @given(seeds, st.integers(min_value=1, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_disconnected_multipliers_track_updates(self, backend, seed, n_updates):
        """Cross-component multipliers come off maintained root botjoins,
        so updates in one component rescale every other component's
        sensitivities."""
        rng = np.random.default_rng(seed)
        query = parse_query("R(A,B), S(B,C), T(X,Y)")
        db = random_database(query, rng, domain_size=4, max_rows=6, backend=backend)
        session = prepare(query, db)
        _probe(session, query, rng, with_top_k=False)
        stream = random_update_stream(query, db, rng, n_updates)
        for op, relation, row in stream:
            if op == "insert":
                session.insert(relation, row)
            else:
                session.delete(relation, row)
            fresh = prepare(query, session.db)
            _assert_same_result(session.sensitivity(), fresh.sensitivity(), query)

    @given(seeds, st.integers(min_value=1, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_selection_stream(self, backend, seed, n_updates):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        target = query.relation_names[int(rng.integers(0, 3))]
        pivot = int(rng.integers(0, 3))
        first_var = query.atom(target).variables[0]
        filtered = query.with_selection(
            target, parse_predicate(f"{first_var} != {pivot}")
        )
        db = random_database(query, rng, backend=backend)
        session = prepare(filtered, db)
        _probe(session, filtered, rng)
        stream = random_update_stream(filtered, db, rng, n_updates)
        for op, relation, row in stream:
            if op == "insert":
                session.insert(relation, row)
            else:
                session.delete(relation, row)
        fresh = prepare(filtered, session.db)
        _assert_same_result(session.sensitivity(), fresh.sensitivity(), filtered)
        k = 1 + int(rng.integers(0, 3))
        _assert_same_result(session.top_k(k), fresh.top_k(k), filtered)


@pytest.mark.parametrize("backend", BACKENDS)
class TestWitnessDomainDependencies:
    """Witness extrapolation reads ``representative_domain``, which
    intersects active domains across *all* database relations sharing a
    base column name — so cached witnesses must be dropped even when the
    witness's own table never moved (regression tests; the random
    generators above name columns after query variables and cannot
    produce the cross-relation aliasing)."""

    def test_cross_component_domain_shift(self, backend):
        # R and S live in different query components but share base
        # column names, so deleting S's smallest 'a' value changes R's
        # extrapolated witness assignment.
        query = parse_query("Q(X,Y,Z,W) :- R(X,Y), S(Z,W)")
        db = Database(
            {
                "R": Relation(["a", "b"], [(5, 10), (6, 11)]),
                "S": Relation(["a", "b"], [(5, 10), (6, 11)]),
            },
            backend=backend,
        )
        session = prepare(query, db)
        session.most_sensitive()  # populate the witness caches
        session.delete("S", (5, 10))
        fresh = prepare(query, session.db)
        maintained = session.most_sensitive()
        recomputed = fresh.most_sensitive()
        for relation in query.relation_names:
            assert dict(maintained[relation].assignment) == dict(
                recomputed[relation].assignment
            ), relation
            assert (
                maintained[relation].sensitivity
                == recomputed[relation].sensitivity
            )

    def test_same_component_dead_delta_domain_shift(self, backend):
        # The update's join delta dies immediately (value joins nothing),
        # so no table moves — but S's base column 'a' backs R's exclusive
        # variable X, so R's extrapolated witness must still refresh.
        query = parse_query("Q(X,Y,Z) :- R(X,Y), S(Y,Z)")
        db = Database(
            {
                "R": Relation(["a", "b"], [(5, 1), (6, 1)]),
                "S": Relation(["b", "a"], [(1, 5), (1, 6)]),
            },
            backend=backend,
        )
        session = prepare(query, db)
        session.most_sensitive()
        session.insert("S", (99, 4))  # b=99 joins nothing; 'a' gains 4
        fresh = prepare(query, session.db)
        maintained = session.most_sensitive()
        recomputed = fresh.most_sensitive()
        for relation in query.relation_names:
            assert dict(maintained[relation].assignment) == dict(
                recomputed[relation].assignment
            ), relation

    def test_selection_filtered_row_still_shifts_domains(self, backend):
        # A filtered row never touches the join state at all, but it does
        # land in the database whose domains feed extrapolation.
        query = parse_query("Q(X,Y,Z,W) :- R(X,Y), S(Z,W)").with_selection(
            "S", parse_predicate("Z != 4")
        )
        db = Database(
            {
                "R": Relation(["a", "b"], [(5, 10), (6, 11)]),
                "S": Relation(["a", "b"], [(5, 10), (6, 11)]),
            },
            backend=backend,
        )
        session = prepare(query, db)
        session.most_sensitive()
        session.insert("S", (4, 12))  # filtered by Z != 4; 'a' gains 4
        fresh = prepare(query, session.db)
        maintained = session.most_sensitive()
        recomputed = fresh.most_sensitive()
        for relation in query.relation_names:
            assert dict(maintained[relation].assignment) == dict(
                recomputed[relation].assignment
            ), relation


@pytest.mark.parametrize("backend", BACKENDS)
class TestSharedStateAcrossConfigs:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_skip_relations_share_tables(self, backend, seed):
        """`sensitivity(skip_relations=...)` and `most_sensitive()` read
        the same maintained tables: only the witness/skip bookkeeping
        differs per cache key, and results match the one-shot API."""
        from repro import local_sensitivity

        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        skip = (query.relation_names[int(rng.integers(0, 3))],)
        full = session.sensitivity(method="tsens")
        partial = session.sensitivity(method="tsens", skip_relations=skip)
        _assert_same_result(
            full, local_sensitivity(query, db, method="tsens"), query
        )
        _assert_same_result(
            partial,
            local_sensitivity(query, db, method="tsens", skip_relations=skip),
            query,
        )
        # The shared maintained tables are literally the same objects.
        for relation in query.relation_names:
            if relation not in skip:
                assert full.tables[relation] is partial.tables[relation]

    @given(seeds, st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_explain_reflects_maintained_state(self, backend, seed, n_updates):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=1 + int(rng.integers(0, 3)))
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        session.explain()  # materialise, then fold updates into it
        stream = random_update_stream(query, db, rng, n_updates)
        for op, relation, row in stream:
            if op == "insert":
                session.insert(relation, row)
            else:
                session.delete(relation, row)
        maintained = session.explain()
        fresh = prepare(query, session.db).explain()
        assert maintained.local_sensitivity == fresh.local_sensitivity
        assert maintained.tree_width == fresh.tree_width
        assert [
            (n.node_id, n.materialised_rows, n.botjoin_rows, n.topjoin_rows)
            for n in maintained.nodes
        ] == [
            (n.node_id, n.materialised_rows, n.botjoin_rows, n.topjoin_rows)
            for n in fresh.nodes
        ]
        assert [
            (t.relation, t.factor_sizes, t.max_sensitivity)
            for t in maintained.tables
        ] == [
            (t.relation, t.factor_sizes, t.max_sensitivity)
            for t in fresh.tables
        ]
