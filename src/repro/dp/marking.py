"""Explicit declassification marker for the DP layer.

The ``repro lint`` privacy-taint rule (R001) forbids values derived from
the private database from leaving a public ``dp/`` function unless they
pass through a :mod:`repro.dp.primitives` mechanism — or carry this
marker, which records that the release is *intentional*: debugging
fields of experiment outcomes (true counts, true sensitivities) that the
experiment harness compares noisy answers against, or pre-DP utilities
(truncation, tuple sensitivities) that are inputs to a mechanism rather
than released answers.

Usable three ways::

    @declassified                       # whole function is non-private API
    def tuple_sensitivities(...): ...

    @declassified(reason="...")         # same, with a recorded rationale
    def tsens_truncate(...): ...

    true_count=declassified(count, reason="debug field")   # one value

The marker is identity at runtime — it exists for the reader and the
analyzer, not the interpreter.
"""

from __future__ import annotations


def declassified(target=None, *, reason: str = ""):
    """Mark a value or function as an intentional non-DP release."""
    del reason  # documentation only; the analyzer keys on the name
    if target is None:

        def mark(obj):
            return obj

        return mark
    return target
