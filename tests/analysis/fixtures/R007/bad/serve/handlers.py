"""Known-bad: serve/ handlers bypassing the epoch-lease boundary."""

from repro.evaluation.joinstate import JoinState  # noqa: F401


def handle_count(session):
    # Direct evaluator access: unpinned, can see a half-folded batch.
    return session._evaluator.base_count


def handle_probe(session, relation, rows):
    return session._ensure_evaluator().delta_batch(relation, rows)


def handle_stats(session):
    return [
        len(state.botjoins)
        for state in session.component_states
        if isinstance(state, JoinState)
    ]
