"""Re-evaluation baseline: local sensitivity via per-tuple count probes.

Sections 4.1/5.2 of the paper discuss the natural alternative to TSens:
re-run a (near-linear) count-only Yannakakis evaluation once per candidate
tuple deletion/insertion.  This matches the naive algorithm of Theorem 3.1
but uses the efficient evaluator per probe; the paper estimates it at
``×10k+`` the cost of TSens on its workloads.

Two probe engines are available through ``mode``:

``"incremental"`` (default)
    :class:`~repro.evaluation.incremental.IncrementalEvaluator` — cache
    the join-tree count aggregates once, then answer every candidate with
    a leaf-to-root delta propagation (Berkholz-style).  Whole relations
    probe in one vectorized batch, so the baseline runs *unsampled* at
    bench scale.
``"full"``
    The historical strawman: one complete re-evaluation per candidate.
    Kept as the cross-check the incremental engine is validated against,
    and as the runtime reference for the ablation bench.

Both modes support *sampling* a bounded number of candidates per relation
(``max_probes_per_relation``), which the bench uses to extrapolate the
full-mode runtime on databases where exhaustive re-running is hopeless.
Sampling draws identical candidates in both modes for a given seed, so
sampled results are mode-independent too.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.evaluation.incremental import IncrementalEvaluator
from repro.evaluation.yannakakis import _component_trees, bind, count_bound
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.core.result import SensitiveTuple, SensitivityResult
from repro.exceptions import MechanismConfigError

REEVAL_MODES: Tuple[str, ...] = ("incremental", "full")


def _candidates(
    db: Database,
    relation: str,
    include_insertions: bool,
    max_probes: Optional[int],
    rng: np.random.Generator,
) -> List[Tuple[object, ...]]:
    """Deletion + insertion candidate tuples for one relation, possibly
    sampled.  Deletion and insertion probes need no distinction: the count
    is multilinear in the multiplicities, so both deltas equal ``w(t)``."""
    candidates: List[Tuple[object, ...]] = list(db.relation(relation))
    if include_insertions:
        candidates.extend(db.representative_tuples(relation))
    if max_probes is not None and len(candidates) > max_probes:
        picks = rng.choice(len(candidates), size=max_probes, replace=False)
        candidates = [candidates[i] for i in sorted(picks)]
    return candidates


def reevaluation_sensitivity(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[DecompositionTree] = None,
    max_probes_per_relation: Optional[int] = None,
    include_insertions: bool = True,
    seed: int = 0,
    mode: str = "incremental",
    max_width: int = 3,
    evaluator: Optional[IncrementalEvaluator] = None,
) -> SensitivityResult:
    """Local sensitivity via one count probe per candidate tuple.

    Parameters
    ----------
    query, db:
        The query and instance.
    tree:
        Decomposition used by every evaluation (defaults to automatic).
    max_probes_per_relation:
        When set, probe at most this many deletion and insertion candidates
        per relation, sampled uniformly without replacement.  The result is
        then a *lower* bound on the local sensitivity — the bench uses this
        mode purely to extrapolate runtime, never for accuracy claims.
    include_insertions:
        Probe representative-domain insertions in addition to deletions.
    mode:
        ``"incremental"`` (cached join-tree counts, delta propagation per
        probe) or ``"full"`` (one complete re-evaluation per probe).  Both
        return identical results; ``"full"`` exists as the cross-check.
    max_width:
        GHD node-size cap for the automatic decomposition of cyclic
        queries (ignored when ``tree`` is given).
    evaluator:
        For ``mode="incremental"``: a live
        :class:`~repro.evaluation.incremental.IncrementalEvaluator` whose
        cached state already reflects ``db`` (e.g. the one a
        :class:`~repro.session.PreparedQuery` maintains).  Skips the
        build; ignored in ``"full"`` mode.
    """
    if mode not in REEVAL_MODES:
        raise MechanismConfigError(
            f"unknown reeval mode {mode!r} (known: {', '.join(REEVAL_MODES)})"
        )
    query.validate_against(db)
    rng = np.random.default_rng(seed)

    if mode == "incremental":
        if evaluator is None:
            evaluator = IncrementalEvaluator(
                query, db, tree=tree, max_width=max_width
            )
        probe_evaluator = evaluator

        def deltas_of(relation: str, rows) -> List[int]:
            return probe_evaluator.delta_batch(relation, rows)
    else:
        pairs = _component_trees(query, tree, max_width)

        def full_count(instance: Database) -> int:
            total = 1
            for sub, sub_tree in pairs:
                total *= count_bound(bind(sub, sub_tree, instance))
                if total == 0:
                    return 0
            return total

        base = full_count(db)

        def deltas_of(relation: str, rows) -> List[int]:
            # One full re-evaluation per probe — the O(runs) strawman.
            return [
                full_count(db.add_tuple(relation, row)) - base for row in rows
            ]

    per_relation = {}
    for relation in query.relation_names:
        atom = query.atom(relation)
        candidates = _candidates(
            db, relation, include_insertions, max_probes_per_relation, rng
        )
        deltas = deltas_of(relation, candidates)
        best_delta, best_row = 0, None
        for row, delta in zip(candidates, deltas):
            if delta > best_delta:
                best_delta, best_row = delta, row
        if best_row is None:
            per_relation[relation] = SensitiveTuple(relation, {}, 0)
        else:
            assignment = dict(zip(atom.variables, best_row))
            per_relation[relation] = SensitiveTuple(relation, assignment, best_delta)

    local = max((w.sensitivity for w in per_relation.values()), default=0)
    witness = None
    if local > 0:
        witness = next(w for w in per_relation.values() if w.sensitivity == local)
    method = "reeval" if max_probes_per_relation is None else "reeval-sampled"
    if mode == "incremental":
        method += "-incremental"
    return SensitivityResult(
        query_name=query.name,
        method=method,
        local_sensitivity=local,
        witness=witness,
        per_relation=per_relation,
        tables={},
    )
