"""Explain a TSens run: per-node intermediate sizes and cost structure.

Theorem 5.1's running time is governed by concrete intermediates — the
botjoin/topjoin group tables and each relation's multiplicity table.  This
module re-runs the two passes while recording, per node, the materialised
relation size, botjoin/topjoin sizes and grouping attributes, and per
relation the multiplicity-table factor shapes.  Useful for:

* spotting *why* a query is slow (e.g. q3's {R,N,L} node materialising a
  cross product of Nation × Lineitem);
* checking double-acyclicity in practice (all multiplicity tables stay
  factored);
* teaching — ``print(explain(...))`` walks the whole algorithm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.database import Database
from repro.evaluation.joinstate import JoinState
from repro.query.classify import classify
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.ghd import auto_decompose
from repro.query.jointree import DecompositionTree
from repro.exceptions import QueryStructureError


@dataclass
class NodeProfile:
    """Size accounting for one decomposition-tree node."""

    node_id: str
    relations: Tuple[str, ...]
    materialised_rows: int
    botjoin_rows: int
    botjoin_attributes: Tuple[str, ...]
    topjoin_rows: Optional[int]            # None at the root
    children: Tuple[str, ...]


@dataclass
class TableProfile:
    """Shape of one relation's multiplicity table."""

    relation: str
    factor_sizes: Tuple[int, ...]
    attributes: Tuple[str, ...]
    max_sensitivity: int
    dense_size_if_materialised: int


@dataclass
class Explanation:
    """Full cost breakdown of one TSens run."""

    query_name: str
    query_class: str
    tree_width: int
    tree_max_degree: int
    local_sensitivity: int
    nodes: List[NodeProfile] = field(default_factory=list)
    tables: List[TableProfile] = field(default_factory=list)
    seconds: float = 0.0

    def largest_intermediate(self) -> int:
        """The biggest materialised row count anywhere in the run."""
        sizes = [n.materialised_rows for n in self.nodes]
        sizes += [n.botjoin_rows for n in self.nodes]
        sizes += [n.topjoin_rows for n in self.nodes if n.topjoin_rows is not None]
        sizes += [max(t.factor_sizes) for t in self.tables if t.factor_sizes]
        return max(sizes, default=0)

    def __str__(self) -> str:
        lines = [
            f"TSens explanation for {self.query_name} "
            f"({self.query_class}, width={self.tree_width}, "
            f"d={self.tree_max_degree}) — LS={self.local_sensitivity}, "
            f"{self.seconds:.3f}s",
            "nodes:",
        ]
        for node in self.nodes:
            top = "-" if node.topjoin_rows is None else f"{node.topjoin_rows:,}"
            lines.append(
                f"  {node.node_id} [{','.join(node.relations)}]: "
                f"materialised={node.materialised_rows:,} "
                f"botjoin={node.botjoin_rows:,} on "
                f"({','.join(node.botjoin_attributes) or 'ε'}) topjoin={top}"
            )
        lines.append("multiplicity tables:")
        for table in self.tables:
            shape = " × ".join(f"{s:,}" for s in table.factor_sizes) or "1"
            lines.append(
                f"  {table.relation}: factors {shape} "
                f"(dense would be {table.dense_size_if_materialised:,}) "
                f"max δ = {table.max_sensitivity:,}"
            )
        return "\n".join(lines)


def explain(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[DecompositionTree] = None,
    skip_relations: Tuple[str, ...] = (),
    state: Optional[JoinState] = None,
) -> Explanation:
    """Run TSens once, recording the cost profile (connected queries).

    ``state`` lets session callers profile their *maintained*
    :class:`JoinState` — sizes reflect the folded structures without
    recomputing botjoins/topjoins/tables the session already holds; the
    recorded ``seconds`` then measure only the (cheap) profiling walk.
    One-shot calls build a throwaway state, which is the historical
    full computation.
    """
    if not query.is_connected():
        raise QueryStructureError("explain() covers connected queries")
    start = time.perf_counter()
    if state is None:
        if tree is None:
            tree = auto_decompose(query)
        state = JoinState(query, tree, db)
    else:
        tree = state.tree
    bound = state.bound
    botjoins = state.botjoins
    topjoins = state.topjoins()

    nodes = []
    for node_id in tree.pre_order():
        top = topjoins[node_id]
        nodes.append(
            NodeProfile(
                node_id=node_id,
                relations=tree.node(node_id).relations,
                materialised_rows=bound.relation(node_id).distinct_count(),
                botjoin_rows=botjoins[node_id].distinct_count(),
                botjoin_attributes=tuple(sorted(tree.shared_with_parent(node_id))),
                topjoin_rows=None if top is None else top.distinct_count(),
                children=tree.children(node_id),
            )
        )

    tables = []
    local = 1 if skip_relations else 0
    for relation in query.relation_names:
        if relation in skip_relations:
            continue
        table = state.multiplicity_table(relation)
        sizes = tuple(f.distinct_count() for f in table.factors)
        dense = 1
        for size in sizes:
            dense *= max(1, size)
        max_sens = table.max_sensitivity()
        local = max(local, max_sens)
        tables.append(
            TableProfile(
                relation=relation,
                factor_sizes=sizes,
                attributes=table.attributes,
                max_sensitivity=max_sens,
                dense_size_if_materialised=dense,
            )
        )
    elapsed = time.perf_counter() - start

    return Explanation(
        query_name=query.name,
        query_class=classify(query),
        tree_width=tree.width(),
        tree_max_degree=tree.max_degree(),
        local_sensitivity=local,
        nodes=nodes,
        tables=tables,
        seconds=elapsed,
    )
