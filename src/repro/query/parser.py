"""A small datalog-style query parser.

Accepts the notation the paper writes queries in::

    Q(A, B, C) :- R1(A, B), R2(B, C)

The head is optional (full CQs have all variables in the head anyway)::

    R1(A, B), R2(B, C)

Whitespace is insignificant.  Relation and variable names are identifiers
(``[A-Za-z_][A-Za-z0-9_]*``).  The parser builds a
:class:`~repro.query.conjunctive.ConjunctiveQuery`; selections are attached
afterwards with :meth:`ConjunctiveQuery.with_selection`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.exceptions import ParseError

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_ATOM_RE = re.compile(rf"\s*({_IDENT})\s*\(\s*({_IDENT}(?:\s*,\s*{_IDENT})*)\s*\)\s*")


def _parse_atom_list(text: str, where: str) -> List[Tuple[str, Tuple[str, ...]]]:
    atoms: List[Tuple[str, Tuple[str, ...]]] = []
    position = 0
    while position < len(text):
        match = _ATOM_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"could not parse atom in {where} at: {text[position:position + 40]!r}"
            )
        name = match.group(1)
        variables = tuple(v.strip() for v in match.group(2).split(","))
        atoms.append((name, variables))
        position = match.end()
        if position < len(text):
            if text[position] != ",":
                raise ParseError(
                    f"expected ',' between atoms in {where}, "
                    f"found {text[position:position + 10]!r}"
                )
            position += 1
    if not atoms:
        raise ParseError(f"{where} contains no atoms")
    return atoms


def parse_query(text: str, name: Optional[str] = None) -> ConjunctiveQuery:
    """Parse a datalog-style conjunctive query string.

    Examples
    --------
    >>> q = parse_query("Q(A,B,C) :- R1(A,B), R2(B,C)")
    >>> q.relation_names
    ('R1', 'R2')
    >>> parse_query("R1(A,B), R2(B,C)").variables
    ('A', 'B', 'C')
    """
    text = text.strip()
    if not text:
        raise ParseError("empty query string")
    head_name: Optional[str] = None
    head_vars: Optional[Tuple[str, ...]] = None
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        head_atoms = _parse_atom_list(head_text, "head")
        if len(head_atoms) != 1:
            raise ParseError("query head must be a single atom")
        head_name, head_vars = head_atoms[0]
    else:
        body_text = text
    body = _parse_atom_list(body_text, "body")
    atoms = [Atom(rel, variables) for rel, variables in body]
    query = ConjunctiveQuery(atoms, name=name or head_name or "Q")
    if head_vars is not None:
        missing = set(query.variables) - set(head_vars)
        extra = set(head_vars) - set(query.variables)
        if missing:
            raise ParseError(
                f"full CQs must project nothing: head is missing {sorted(missing)}"
            )
        if extra:
            raise ParseError(f"head variables {sorted(extra)} do not appear in the body")
    return query
