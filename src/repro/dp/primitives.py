"""Differential-privacy primitives: Laplace mechanism and sparse vector.

These are the two building blocks Sec. 6 composes:

* :func:`laplace_mechanism` — Definition 6.3, ``Q(D) + Lap(GS/ε)``;
* :func:`above_threshold` — the SVT variant used to learn the truncation
  threshold: scan a sequence of sensitivity-1 queries and stop at the first
  one whose noisy value exceeds a noisy threshold (Lyu–Su–Li, Alg. 1).

All randomness flows through an injected :class:`numpy.random.Generator`
so mechanisms are reproducible under a fixed seed; *privacy* of course
holds with respect to fresh randomness.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import MechanismConfigError


def _require_positive(name: str, value: float) -> None:
    if not value > 0:
        raise MechanismConfigError(f"{name} must be positive, got {value}")


def laplace_noise(scale: float, rng: np.random.Generator) -> float:
    """One draw of ``Lap(scale)`` (mean 0, variance ``2·scale²``)."""
    _require_positive("scale", scale)
    return float(rng.laplace(loc=0.0, scale=scale))


def laplace_mechanism(
    value: float,
    sensitivity: float,
    epsilon: float,
    rng: np.random.Generator,
) -> float:
    """``value + Lap(sensitivity/epsilon)`` — ε-DP for a query whose global
    sensitivity is at most ``sensitivity`` (Definition 6.3)."""
    _require_positive("epsilon", epsilon)
    if sensitivity < 0:
        raise MechanismConfigError(f"sensitivity must be non-negative, got {sensitivity}")
    if sensitivity == 0:
        return float(value)
    return float(value) + laplace_noise(sensitivity / epsilon, rng)


def above_threshold(
    values: Iterable[float],
    threshold: float,
    epsilon: float,
    rng: np.random.Generator,
    sensitivity: float = 1.0,
) -> Optional[int]:
    """AboveThreshold SVT: index of the first noisy value above the noisy
    threshold, or ``None`` if the stream is exhausted.

    Satisfies ε-DP for any (adaptively chosen) sequence of queries each of
    global sensitivity ``sensitivity``.  Noise scales are the standard
    ``2Δ/ε`` on the threshold and ``4Δ/ε`` on each query.

    Parameters
    ----------
    values:
        The query answers ``q_i(D)``, streamed lazily.
    threshold:
        The public threshold ``T``.
    epsilon:
        Total privacy budget of the scan.
    sensitivity:
        Global sensitivity ``Δ`` of each query (1 for TSensDP's rescaled
        threshold queries, Theorem 6.1).
    """
    _require_positive("epsilon", epsilon)
    _require_positive("sensitivity", sensitivity)
    noisy_threshold = threshold + laplace_noise(2.0 * sensitivity / epsilon, rng)
    for index, value in enumerate(values):
        noisy_value = value + laplace_noise(4.0 * sensitivity / epsilon, rng)
        if noisy_value >= noisy_threshold:
            return index
    return None


def laplace_confidence_radius(
    scale: float, confidence: float = 0.95
) -> float:
    """Radius ``r`` with ``P(|Lap(scale)| <= r) = confidence``.

    Convenience for experiment reporting (expected-error envelopes).
    """
    _require_positive("scale", scale)
    if not 0 < confidence < 1:
        raise MechanismConfigError(f"confidence must be in (0,1), got {confidence}")
    return float(-scale * np.log(1.0 - confidence))
