"""Benchmark E2 — Figure 6b: per-relation most sensitive tuples of q3.

One full TSens pass over the paper's cyclic query produces every
relation's multiplicity table; the benchmark times that pass and checks
the figure's structural claims (Lineitem skipped; every reported tuple
sensitivity below the corresponding per-relation Elastic bound).
"""

from repro.baselines import elastic_per_relation, plan_from_tree
from repro.core import local_sensitivity
from repro.workloads import q3_workload


def test_fig6b_most_sensitive_tuples(benchmark, tpch_base):
    workload = q3_workload()
    db = workload.prepared(tpch_base)

    result = benchmark.pedantic(
        lambda: local_sensitivity(
            workload.query, db, tree=workload.tree,
            skip_relations=workload.skip_relations,
        ),
        rounds=3,
        iterations=1,
    )
    elastic = elastic_per_relation(
        workload.query, db, plan=plan_from_tree(workload.tree)
    )
    for relation in workload.query.relation_names:
        witness = result.per_relation[relation]
        benchmark.extra_info[f"delta_{relation}"] = witness.sensitivity
        if relation in workload.skip_relations:
            assert witness.sensitivity == 1  # superkey bound
        else:
            assert witness.sensitivity <= elastic[relation]
