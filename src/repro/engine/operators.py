"""Relational operators over bag-semantics relations.

These are the building blocks the paper's algorithms are written in:

* :func:`join` — the paper's ``r̃join``: a natural join where the output
  multiplicity of a combined tuple is the *product* of input multiplicities.
* :func:`group_by` — the paper's ``γ_A``: project onto ``A`` and *sum*
  multiplicities into the new count.
* :func:`semijoin` — Yannakakis-style reducer.
* :func:`select`, :func:`project`, :func:`cross_product`, :func:`union_all`,
  :func:`difference` — standard bag operators used by tests, baselines and
  the naive algorithm.

Every operator is **backend-dispatching**: when an operand is a
:class:`~repro.engine.columnar.ColumnarRelation` the vectorized kernel in
:mod:`repro.engine.columnar` runs (other operands are promoted to columnar
first — promotion of the tiny unit relations used by the path algorithm is
O(1)); otherwise the per-tuple dict implementation below runs.  The layers
above the engine call these functions and never see the physical layout.

All joins are hash joins on the common attributes; when there are no common
attributes :func:`join` degenerates into a cross product, which is what the
paper's ``r̃join`` of attribute-disjoint topjoins/botjoins requires.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.engine import columnar as _columnar
from repro.engine.columnar import ColumnarRelation
from repro.engine.relation import Relation, Row
from repro.engine.schema import Schema
from repro.exceptions import SchemaError


def _promote(relation) -> ColumnarRelation:
    """Columnar view of a relation (identity for columnar operands)."""
    if isinstance(relation, ColumnarRelation):
        return relation
    return ColumnarRelation(relation.schema, relation.counts)


def _any_columnar(*relations) -> bool:
    return any(isinstance(rel, ColumnarRelation) for rel in relations)


def join(left: Relation, right: Relation) -> Relation:
    """Natural join multiplying multiplicities (the paper's ``r̃join``).

    The output schema is ``left``'s attributes followed by ``right``'s
    attributes not already present.  Output multiplicity of a combined row
    is ``left_count * right_count`` summed over all ways of producing it.
    """
    if _any_columnar(left, right):
        return _columnar.join(_promote(left), _promote(right))
    common = left.schema.common(right.schema)
    if not common:
        return cross_product(left, right)

    left_key = left.schema.project_positions(common)
    right_key = right.schema.project_positions(common)
    left_attrs = set(left.attributes)
    right_extra = tuple(
        i for i, a in enumerate(right.attributes) if a not in left_attrs
    )
    out_schema = left.schema.union(right.schema)

    # Build hash index on the smaller side for speed; probe with the larger.
    if right.distinct_count() <= left.distinct_count():
        index: Dict[Row, List[Tuple[Row, int]]] = {}
        for row, cnt in right.items():
            key = tuple(row[p] for p in right_key)
            index.setdefault(key, []).append((row, cnt))
        out: Dict[Row, int] = {}
        for lrow, lcnt in left.items():
            key = tuple(lrow[p] for p in left_key)
            for rrow, rcnt in index.get(key, ()):
                combined = lrow + tuple(rrow[p] for p in right_extra)
                out[combined] = out.get(combined, 0) + lcnt * rcnt
    else:
        index = {}
        for row, cnt in left.items():
            key = tuple(row[p] for p in left_key)
            index.setdefault(key, []).append((row, cnt))
        out = {}
        for rrow, rcnt in right.items():
            key = tuple(rrow[p] for p in right_key)
            extra = tuple(rrow[p] for p in right_extra)
            for lrow, lcnt in index.get(key, ()):
                combined = lrow + extra
                out[combined] = out.get(combined, 0) + lcnt * rcnt
    return Relation._from_counts(out_schema, out)


def join_all(relations: Sequence[Relation]) -> Relation:
    """Left-deep ``r̃join`` of a non-empty sequence of relations."""
    if not relations:
        raise SchemaError("join_all requires at least one relation")
    result = relations[0]
    for rel in relations[1:]:
        result = join(result, rel)
    return result


def cross_product(left: Relation, right: Relation) -> Relation:
    """Bag cross product (multiplicities multiply)."""
    if _any_columnar(left, right):
        return _columnar.cross_product(_promote(left), _promote(right))
    overlap = left.schema.common(right.schema)
    if overlap:
        raise SchemaError(f"cross product with overlapping attributes {overlap}")
    out_schema = left.schema.union(right.schema)
    out: Dict[Row, int] = {}
    for lrow, lcnt in left.items():
        for rrow, rcnt in right.items():
            out[lrow + rrow] = lcnt * rcnt
    return Relation._from_counts(out_schema, out)


def group_by(relation: Relation, attributes: Sequence[str]) -> Relation:
    """The paper's ``γ_A``: project onto ``attributes`` summing counts.

    An empty attribute list yields a zero-arity relation whose single
    tuple's multiplicity is the bag cardinality — useful for counting.
    """
    if isinstance(relation, ColumnarRelation):
        return _columnar.group_by(relation, attributes)
    positions = relation.schema.project_positions(attributes)
    out: Dict[Row, int] = {}
    for row, cnt in relation.items():
        key = tuple(row[p] for p in positions)
        out[key] = out.get(key, 0) + cnt
    return Relation._from_counts(Schema(attributes), out)


def project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """Alias of :func:`group_by` — bag projection sums multiplicities."""
    return group_by(relation, attributes)


def select(
    relation: Relation, predicate: Callable[[Mapping[str, object]], bool]
) -> Relation:
    """Bag selection σ: keep tuples whose attribute-dict satisfies the predicate."""
    return relation.filter(predicate)


def semijoin(left: Relation, right: Relation) -> Relation:
    """Keep ``left`` tuples that join with at least one ``right`` tuple.

    Multiplicities of the surviving tuples are unchanged — this is the
    reducer step of Yannakakis's algorithm, not a counting join.
    """
    if _any_columnar(left, right):
        return _columnar.semijoin(_promote(left), _promote(right))
    common = left.schema.common(right.schema)
    if not common:
        return left if not right.is_empty() else Relation(left.schema, ())
    left_key = left.schema.project_positions(common)
    right_key = right.schema.project_positions(common)
    present = {tuple(row[p] for p in right_key) for row in right}
    out = {
        row: cnt
        for row, cnt in left.items()
        if tuple(row[p] for p in left_key) in present
    }
    return Relation._from_counts(left.schema, out)


def union_all(relations: Iterable[Relation]) -> Relation:
    """Bag union (multiplicities add).  All schemas must match exactly."""
    relations = list(relations)
    if not relations:
        raise SchemaError("union_all requires at least one relation")
    if _any_columnar(*relations):
        return _columnar.union_all([_promote(rel) for rel in relations])
    schema = relations[0].schema
    out: Dict[Row, int] = {}
    for rel in relations:
        if rel.schema != schema:
            raise SchemaError(f"union_all schema mismatch: {rel.schema} vs {schema}")
        for row, cnt in rel.items():
            out[row] = out.get(row, 0) + cnt
    return Relation._from_counts(schema, out)


def difference(left: Relation, right: Relation) -> Relation:
    """Bag difference ``left ∸ right`` (monus: counts floor at zero)."""
    if _any_columnar(left, right):
        return _columnar.difference(_promote(left), _promote(right))
    if left.schema != right.schema:
        raise SchemaError(f"difference schema mismatch: {left.schema} vs {right.schema}")
    out: Dict[Row, int] = {}
    for row, cnt in left.items():
        remaining = cnt - right.multiplicity(row)
        if remaining > 0:
            out[row] = remaining
    return Relation._from_counts(left.schema, out)


def symmetric_difference_size(left: Relation, right: Relation) -> int:
    """``|left Δ right|`` under bag semantics: sum of |count deltas|.

    This is the quantity in the paper's Definition 2.1 of tuple sensitivity,
    ``|Q(D ∪ {t}) Δ Q(D)|``.  Backend-generic: iterates the logical
    (tuple, count) view of both operands.
    """
    if set(left.attributes) != set(right.attributes):
        raise SchemaError("symmetric difference over different attribute sets")
    positions = right.schema.project_positions(left.attributes)
    right_counts: Dict[Row, int] = {}
    for row, cnt in right.items():
        key = tuple(row[p] for p in positions)
        right_counts[key] = right_counts.get(key, 0) + cnt
    total = 0
    for row, cnt in left.items():
        total += abs(cnt - right_counts.pop(row, 0))
    total += sum(right_counts.values())
    return total
