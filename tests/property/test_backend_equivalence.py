"""Backend equivalence: the columnar engine is observationally identical.

Hypothesis drives random acyclic (and path, and cyclic) conjunctive
queries plus random instances through the whole stack — Yannakakis
counting, full evaluation, TSens, top-k clamping — once per backend, and
demands identical counts, local sensitivities, per-relation sensitivities
and most sensitive tuples.  This is the contract that makes the
``backend=`` knob safe to flip anywhere.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import local_sensitivity, ls_path_join, tsens, tsens_topk
from repro.datasets import random_acyclic_query, random_database, random_path_query
from repro.evaluation import count_query, evaluate_query
from repro.query import parse_query

seeds = st.integers(min_value=0, max_value=10_000)


def _pair(query, rng, **kwargs):
    """The same random instance on both backends."""
    db = random_database(query, rng, **kwargs)
    return db, db.with_backend("columnar")


def _assert_same_result(fast, slow, query):
    assert fast.local_sensitivity == slow.local_sensitivity
    for relation in query.relation_names:
        a, b = fast.per_relation[relation], slow.per_relation[relation]
        assert a.sensitivity == b.sensitivity
        assert dict(a.assignment) == dict(b.assignment)
    if fast.witness is None:
        assert slow.witness is None
    else:
        assert slow.witness is not None
        assert fast.witness.sensitivity == slow.witness.sensitivity


class TestEvaluationEquivalence:
    @given(seeds, st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_counts_match(self, seed, num_atoms):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db_py, db_col = _pair(query, rng)
        assert count_query(query, db_py) == count_query(query, db_col)

    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_full_outputs_match(self, seed, num_atoms):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db_py, db_col = _pair(query, rng)
        out_py = evaluate_query(query, db_py)
        out_col = evaluate_query(query, db_col)
        assert out_col.same_bag(out_py)
        assert out_py.same_bag(out_col)


class TestSensitivityEquivalence:
    @given(seeds, st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_tsens_matches(self, seed, num_atoms):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db_py, db_col = _pair(query, rng)
        _assert_same_result(tsens(query, db_col), tsens(query, db_py), query)

    @given(seeds, st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_path_algorithm_matches(self, seed, length):
        rng = np.random.default_rng(seed)
        query = random_path_query(rng, length=length)
        db_py, db_col = _pair(query, rng)
        _assert_same_result(
            ls_path_join(query, db_col), ls_path_join(query, db_py), query
        )

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_cyclic_ghd_matches(self, seed):
        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db_py, db_col = _pair(query, rng, domain_size=3, max_rows=5)
        fast = local_sensitivity(query, db_col)
        slow = local_sensitivity(query, db_py)
        assert fast.local_sensitivity == slow.local_sensitivity

    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_topk_clamp_matches(self, seed, k):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        db_py, db_col = _pair(query, rng)
        fast = tsens_topk(query, db_col, k=k)
        slow = tsens_topk(query, db_py, k=k)
        assert fast.local_sensitivity == slow.local_sensitivity
        for relation in query.relation_names:
            assert (
                fast.per_relation[relation].sensitivity
                == slow.per_relation[relation].sensitivity
            )

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_selections_match(self, seed):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        target = query.relation_names[int(rng.integers(0, 3))]
        pivot = int(rng.integers(0, 3))
        first_var = query.atom(target).variables[0]
        filtered = query.with_selection(
            target, lambda row: row[first_var] != pivot
        )
        db_py, db_col = _pair(query, rng)
        _assert_same_result(
            tsens(filtered, db_col), tsens(filtered, db_py), filtered
        )


class TestMultiplicityTablesEquivalence:
    @given(seeds, st.integers(min_value=2, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_every_tuple_sensitivity_matches(self, seed, num_atoms):
        """Not just the max: the whole multiplicity table must agree."""
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db_py, db_col = _pair(query, rng)
        fast = tsens(query, db_col)
        slow = tsens(query, db_py)
        for relation, table in slow.tables.items():
            for assignment, sensitivity in table.iter_descending():
                assert (
                    fast.tables[relation].sensitivity_of(assignment)
                    == sensitivity
                )
