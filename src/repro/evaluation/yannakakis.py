"""Yannakakis-style evaluation of (decomposed) conjunctive queries.

This module binds a structural decomposition tree to a concrete database —
materialising each node as the bag join of its assigned atoms — and then
evaluates the query:

* :func:`count_query` — ``|Q(D)|`` via a single bottom-up botjoin pass
  (near-linear for join trees, the paper's query-evaluation baseline in
  Fig. 7 / Table 1);
* :func:`evaluate_query` — the full join output, using semijoin reduction
  before joining so intermediate sizes stay bounded by input + output.

The botjoin pass implemented here (:func:`compute_botjoins`) is shared with
the sensitivity algorithms in :mod:`repro.core.acyclic`, which add the
top-down topjoin pass on top of it.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.engine.operators import group_by, join, join_all, semijoin
from repro.engine.database import Database
from repro.engine.parallel import PipelinePlan, WorkerState
from repro.engine.relation import Relation
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.ghd import auto_decompose
from repro.query.jointree import DecompositionTree
from repro.exceptions import InternalError


@dataclass
class BoundTree:
    """A decomposition tree with each node materialised over a database.

    Attributes
    ----------
    tree:
        The structural decomposition.
    node_relations:
        ``node_id -> Relation``: the bag join of the node's atoms, with the
        query's selections already applied and columns renamed to query
        variables.
    atom_relations:
        ``relation name -> Relation``: the individual bound atoms (needed
        when a GHD node holds several relations and one must be excluded).
    query:
        The query this binding was made for.
    """

    tree: DecompositionTree
    node_relations: Dict[str, Relation]
    atom_relations: Dict[str, Relation]
    query: ConjunctiveQuery

    def relation(self, node_id: str) -> Relation:
        return self.node_relations[node_id]

    def atom_relation(self, relation: str) -> Relation:
        return self.atom_relations[relation]


def bind(
    query: ConjunctiveQuery,
    tree: DecompositionTree,
    db: Database,
    parallel=None,
) -> BoundTree:
    """Materialise every tree node over ``db``.

    Width-1 nodes are just the (renamed, selection-filtered) base relation;
    wider GHD nodes are the bag join of their atoms.  The per-node join cost
    is the paper's ``n^p`` factor.  ``parallel`` (a
    :class:`~repro.engine.parallel.ParallelContext`) shard-partitions the
    selection filters and multi-atom node joins; inactive contexts take the
    identical serial path.
    """
    query.validate_against(db)
    atom_relations: Dict[str, Relation] = {
        rel: query.bound_relation(db, rel, parallel=parallel)
        for rel in query.relation_names
    }
    node_relations: Dict[str, Relation] = {}
    sharded = parallel is not None and parallel.active
    for node_id in tree.node_ids:
        node = tree.node(node_id)
        parts = [atom_relations[rel] for rel in node.relations]
        if sharded:
            keys = [f"atom:{rel}" for rel in node.relations]
            node_relations[node_id] = parallel.join_all(parts, keys=keys)
        else:
            node_relations[node_id] = join_all(parts)
    return BoundTree(
        tree=tree,
        node_relations=node_relations,
        atom_relations=atom_relations,
        query=query,
    )


def bound_delta(
    query: ConjunctiveQuery,
    relation: str,
    rows: Mapping[Tuple[object, ...], int],
    relation_cls,
) -> Relation:
    """A signed delta relation bound to ``relation``'s atom.

    Mirrors :meth:`ConjunctiveQuery.bound_relation` for a small update
    batch: columns are renamed positionally to the atom's variables and
    the query's selection (if any) filters rows *before* they enter the
    maintained join state — filtered rows still reach the database, they
    just contribute nothing to any derived level.
    """
    atom = query.atom(relation)
    predicate = query.selections.get(relation)
    if predicate is not None:
        rows = {
            row: cnt
            for row, cnt in rows.items()
            if predicate(dict(zip(atom.variables, row)))
        }
    return relation_cls(list(atom.variables), dict(rows))


def compute_botjoins(
    bound: BoundTree, parallel=None, shard_cache=None, resident=None
) -> Dict[str, Relation]:
    """Botjoins ``K(v)`` for every node, in post-order (paper Eqn. 5/7).

    ``K(v) = γ_{A_v ∩ A_p(v)} r̃join(rel_v, {K(c) | c ∈ children(v)})``.
    For the root the grouping attribute set is empty, so ``K(root)`` is a
    zero-arity relation whose single count is ``|Q(D)|``.

    With an active ``parallel`` context each level's join+group runs
    hash-sharded across the worker pool and the per-shard partial botjoins
    are reduced on the coordinator; ``shard_cache`` (a
    :class:`~repro.engine.sharding.ShardMap`) keeps node/botjoin
    partitionings alive across passes (the maintained join state hands in
    its long-lived map so repeated reads re-use shard layouts).

    ``resident`` (a :class:`ResidentFoldPipeline`) runs the whole chain
    worker-side instead: every non-root botjoin stays resident in the
    workers and only the root aggregate returns, the result being a
    dict-compatible :class:`ResidentMapping` that fetches registers on
    demand.  A failed chain (worker death) falls back to the per-op path
    right here — overflow errors are *not* caught; they mean the same
    thing they mean serially.
    """
    if resident is not None and resident.enabled:
        try:
            return resident.botjoins()
        except (ChainUnsupported, InternalError):
            resident.disable()
    tree = bound.tree
    botjoins: Dict[str, Relation] = {}
    sharded = parallel is not None and parallel.active
    for node_id in tree.post_order():
        children = tree.children(node_id)
        group_attrs = sorted(tree.shared_with_parent(node_id))
        if sharded:
            parts = [bound.relation(node_id)]
            parts.extend(botjoins[child] for child in children)
            keys = [f"node:{node_id}"]
            keys.extend(f"bot:{child}" for child in children)
            botjoins[node_id] = parallel.join_group(
                parts, group_attrs, cache=shard_cache, keys=keys
            )
        else:
            current = bound.relation(node_id)
            for child in children:
                current = join(current, botjoins[child])
            botjoins[node_id] = group_by(current, group_attrs)
    return botjoins


def compute_topjoins(
    bound: BoundTree,
    botjoins: Dict[str, Relation],
    parallel=None,
    shard_cache=None,
    resident=None,
) -> Dict[str, Optional[Relation]]:
    """Topjoins ``J(v)`` for every node, in pre-order (paper Eqn. 8).

    ``J(root)`` is ``None`` (the complement of the whole tree is empty).
    For a node whose parent is the root the topjoin omits ``J(parent)``;
    otherwise ``J(v) = γ_{A_v ∩ A_p} r̃join(rel_p, J(p), {K(s) | s ∈ N(v)})``.
    ``parallel``/``shard_cache`` shard each level exactly as in
    :func:`compute_botjoins`; ``resident`` runs the sweep against the
    worker-resident botjoin registers (falling back per-op on failure).
    """
    if resident is not None and resident.enabled:
        try:
            return resident.topjoins(botjoins)
        except (ChainUnsupported, InternalError):
            resident.disable()
    tree = bound.tree
    topjoins: Dict[str, Optional[Relation]] = {tree.root: None}
    sharded = parallel is not None and parallel.active
    for node_id in tree.pre_order():
        if node_id == tree.root:
            continue
        parent = tree.parent(node_id)
        if parent is None:
            raise InternalError(f"non-root node {node_id} has no parent")
        parts: List[Relation] = [bound.relation(parent)]
        keys: List[Optional[str]] = [f"node:{parent}"]
        parent_top = topjoins[parent]
        if parent_top is not None:
            parts.append(parent_top)
            keys.append(f"top:{parent}")
        for sibling in tree.neighbours(node_id):
            parts.append(botjoins[sibling])
            keys.append(f"bot:{sibling}")
        group_attrs = sorted(tree.shared_with_parent(node_id))
        if sharded:
            topjoins[node_id] = parallel.join_group(
                parts, group_attrs, cache=shard_cache, keys=keys
            )
        else:
            topjoins[node_id] = group_by(join_all(parts), group_attrs)
    return topjoins


# ---------------------------------------------------- worker-resident chains
class ChainUnsupported(Exception):
    """This component's fold chain cannot run worker-resident.

    Raised by the chain compiler for shapes the resident pipeline does not
    cover (cross-product joins inside a chain, nullary node relations,
    tree edges sharing no attributes); callers fall back to the per-op
    sharded or serial path, which handles everything.
    """


class _ChainCompiler:
    """Builds one :class:`~repro.engine.parallel.PipelinePlan`.

    Tracks, per register, its attribute set and the attribute its shards
    are partitioned on, and inserts peer-to-peer exchanges exactly where
    an operator needs a different co-partitioning:

    * a join runs shard-local only if both operands hash on the same
      shared attribute — otherwise the smaller-by-construction operand
      (the grouped botjoin) is re-scattered to the other's attribute;
    * a grouping that *drops* the partition attribute would leave partial
      sums split across shards, so it runs as a combiner: local partial
      group, exchange on the first group attribute, final group.

    Every register a plan keeps is therefore fully grouped and key-
    disjoint across shards — the invariant that makes worker-side delta
    folds (bag union/monus per shard) exact.
    """

    def __init__(self) -> None:
        self.steps: List[Tuple] = []
        #: register -> (attribute set, partition attribute).
        self.regs: Dict[str, Tuple[FrozenSet[str], str]] = {}
        self.loads: Dict[str, str] = {}
        self.reads: List[str] = []
        self.keeps: Dict[str, str] = {}
        self.emits: List[str] = []
        self._temp = 0

    #: Temporary-register prefix.  ``~`` keeps temporaries disjoint from
    #: every named register family (``node:``/``bot:``/``top:`` — a bare
    #: ``t`` prefix would make a join *free* the ``top:`` operand it just
    #: consumed, deleting a resident register other nodes still read).
    TEMP_PREFIX = "~t"

    def _fresh(self) -> str:
        self._temp += 1
        return f"{self.TEMP_PREFIX}{self._temp}"

    def _free(self, reg: str) -> None:
        if reg in self.regs and reg.startswith(self.TEMP_PREFIX):
            self.steps.append(("free", reg))
            del self.regs[reg]

    def load(self, name: str, attrs, attribute: str) -> None:
        if attribute not in attrs:
            raise ChainUnsupported(f"load attribute {attribute!r} not in schema")
        self.steps.append(("load", name))
        self.loads[name] = attribute
        self.regs[name] = (frozenset(attrs), attribute)

    def read(self, name: str, attrs, attribute: str) -> None:
        """Declare a register left resident by an earlier plan."""
        self.reads.append(name)
        self.regs[name] = (frozenset(attrs), attribute)

    def repartition(self, reg: str, attribute: str) -> str:
        attrs, part = self.regs[reg]
        if part == attribute:
            return reg
        if attribute not in attrs:
            raise ChainUnsupported(
                f"cannot repartition {reg!r} on foreign attribute {attribute!r}"
            )
        target = self._fresh()
        self.steps.append(("scatter", target, reg, attribute))
        self._free(reg)
        self.steps.append(("collect", target))
        self.regs[target] = (attrs, attribute)
        return target

    def join(self, left: str, right: str) -> str:
        lattrs, lpart = self.regs[left]
        rattrs, rpart = self.regs[right]
        common = lattrs & rattrs
        if not common:
            raise ChainUnsupported("cross-product join inside a chain")
        if lpart in common:
            attribute = lpart
        elif rpart in common:
            attribute = rpart
        else:
            attribute = sorted(common)[0]
        left = self.repartition(left, attribute)
        right = self.repartition(right, attribute)
        target = self._fresh()
        self.steps.append(("join", target, left, right))
        self.regs[target] = (lattrs | rattrs, attribute)
        self._free(left)
        self._free(right)
        return target

    def group(self, source: str, group_attrs) -> str:
        attrs, part = self.regs[source]
        group_attrs = tuple(group_attrs)
        if not group_attrs or part in group_attrs:
            # Root groupings (empty attrs) produce *partial* sums — their
            # only legal consumer is an emit, reduced coordinator-side.
            target = self._fresh()
            self.steps.append(("group", target, source, group_attrs))
            self.regs[target] = (frozenset(group_attrs), part)
            self._free(source)
            return target
        # Combiner: the grouping drops the partition attribute, so local
        # sums are partial.  Pre-group locally (shrinks the exchange),
        # scatter on the first group attribute, group again for finals.
        partial = self._fresh()
        self.steps.append(("group", partial, source, group_attrs))
        self.regs[partial] = (frozenset(group_attrs), part)
        self._free(source)
        moved = self.repartition(partial, group_attrs[0])
        target = self._fresh()
        self.steps.append(("group", target, moved, group_attrs))
        self.regs[target] = (frozenset(group_attrs), group_attrs[0])
        self._free(moved)
        return target

    def keep(self, name: str, source: str) -> None:
        attrs, part = self.regs[source]
        self.steps.append(("keep", name, source))
        self.regs[name] = (attrs, part)
        self.keeps[name] = part
        self._free(source)

    def emit(self, name: str, source: str) -> None:
        self.steps.append(("emit", name, source))
        self.emits.append(name)
        self._free(source)

    def plan(self) -> PipelinePlan:
        return PipelinePlan(
            steps=tuple(self.steps),
            loads=dict(self.loads),
            reads=tuple(self.reads),
            keeps=dict(self.keeps),
            emits=tuple(self.emits),
        )

    def named_registers(self) -> Dict[str, Tuple[FrozenSet[str], str]]:
        """Register info for everything that outlives this plan."""
        return {
            name: info
            for name, info in self.regs.items()
            if not name.startswith(self.TEMP_PREFIX)
        }


def compile_botjoin_chain(
    bound: BoundTree,
) -> Tuple[PipelinePlan, Dict[str, Tuple[FrozenSet[str], str]]]:
    """The bottom-up sweep as one per-shard program.

    Loads every node relation (partitioned to co-locate with its first
    child's botjoin), folds the botjoin joins worker-side, keeps each
    non-root ``bot:<id>`` resident, and emits only the root partials.
    Returns the plan plus the resident-register map the topjoin compiler
    (and delta folds) build on.
    """
    tree = bound.tree
    if len(tree.node_ids) < 2:
        raise ChainUnsupported("single-node tree gains nothing from residency")
    compiler = _ChainCompiler()
    for node_id in tree.post_order():
        node_attrs = sorted(tree.node(node_id).attributes)
        if not node_attrs:
            raise ChainUnsupported(f"nullary node relation at {node_id!r}")
        children = tree.children(node_id)
        group_attrs = sorted(tree.shared_with_parent(node_id))
        attribute = None
        for child in children:
            child_part = compiler.regs[f"bot:{child}"][1]
            if child_part in node_attrs:
                attribute = child_part
                break
        if attribute is None:
            attribute = group_attrs[0] if group_attrs else node_attrs[0]
        compiler.load(f"node:{node_id}", node_attrs, attribute)
        current = f"node:{node_id}"
        for child in children:
            current = compiler.join(current, f"bot:{child}")
        grouped = compiler.group(current, group_attrs)
        if node_id == tree.root:
            compiler.emit("root", grouped)
        else:
            compiler.keep(f"bot:{node_id}", grouped)
    return compiler.plan(), compiler.named_registers()


def compile_topjoin_chain(
    bound: BoundTree,
    resident_registers: Dict[str, Tuple[FrozenSet[str], str]],
) -> PipelinePlan:
    """The top-down sweep over the botjoin plan's resident registers.

    Reads the ``node:``/``bot:`` registers the bottom-up plan left in the
    workers, keeps every non-root ``top:<id>`` resident, and emits
    nothing — topjoins are fetched lazily, only when a sensitivity read
    actually needs them.
    """
    tree = bound.tree
    compiler = _ChainCompiler()
    for name, (attrs, part) in resident_registers.items():
        compiler.read(name, attrs, part)
    for node_id in tree.pre_order():
        if node_id == tree.root:
            continue
        parent = tree.parent(node_id)
        if parent is None:
            raise InternalError(f"non-root node {node_id} has no parent")
        group_attrs = sorted(tree.shared_with_parent(node_id))
        if not group_attrs:
            raise ChainUnsupported(
                f"node {node_id!r} shares no attributes with its parent"
            )
        current = f"node:{parent}"
        if parent != tree.root:
            current = compiler.join(current, f"top:{parent}")
        for sibling in tree.neighbours(node_id):
            current = compiler.join(current, f"bot:{sibling}")
        grouped = compiler.group(current, group_attrs)
        compiler.keep(f"top:{node_id}", grouped)
    return compiler.plan()


class ResidentMapping(MutableMapping):
    """Dict-compatible view over worker-resident registers.

    Committed writes (:meth:`__setitem__`, from the maintained state's
    commit sweep) land in a local overlay that always wins; reads of keys
    without a local value fetch the register from the workers once and
    cache it.  A failed fetch (worker death, dropped register) triggers
    ``recover()``, which recomputes the *entire* dict on the per-op path
    and populates the overlay — after which the mapping is just a dict
    with extra steps.
    """

    def __init__(
        self,
        state: WorkerState,
        register_of: Dict[str, Optional[str]],
        local: Dict[str, Optional[Relation]],
        recover: Callable[[], Dict],
    ):
        self._state = state
        self._register_of = dict(register_of)
        self._local: Dict[str, Optional[Relation]] = dict(local)
        self._recover = recover

    def peek(self, key: str) -> Optional[Relation]:
        """The locally-materialised value, or ``None`` — never fetches."""
        return self._local.get(key)

    def materialized(self, key: str) -> bool:
        return key in self._local

    def __getitem__(self, key: str):
        if key in self._local:
            return self._local[key]
        register = self._register_of.get(key)
        if register is None:
            raise KeyError(key)
        try:
            value = self._state.fetch(register)
        except InternalError:
            self._local.update(self._recover())
            return self._local[key]
        self._local[key] = value
        return value

    def __setitem__(self, key: str, value) -> None:
        self._local[key] = value

    def __delitem__(self, key: str) -> None:
        self._local.pop(key, None)
        self._register_of.pop(key, None)

    def __iter__(self):
        return iter(set(self._register_of) | set(self._local))

    def __len__(self) -> int:
        return len(set(self._register_of) | set(self._local))


class ResidentFoldPipeline:
    """Compiles and drives the worker-resident chain of one component.

    Owns one :class:`~repro.engine.parallel.WorkerState`; the bottom-up
    plan runs on first botjoin materialisation, the top-down plan on
    first topjoin materialisation, and committed update deltas fold into
    the resident registers via :meth:`fold`.  Every failure path disables
    the pipeline and lands on the per-op sharded path — never on wrong
    answers.
    """

    def __init__(
        self,
        bound: BoundTree,
        parallel,
        shards,
        state: WorkerState,
        bot_plan: PipelinePlan,
        top_plan: PipelinePlan,
        registers: Dict[str, Tuple[FrozenSet[str], str]],
    ):
        self.bound = bound
        self.parallel = parallel
        self.shards = shards
        self.state = state
        self._bot_plan = bot_plan
        self._top_plan = top_plan
        self._registers = registers
        self.enabled = True
        self._botjoins: Optional[ResidentMapping] = None

    @classmethod
    def try_create(cls, bound: BoundTree, parallel, shards):
        """A pipeline for this component, or ``None`` for the per-op path.

        Gates: an active multi-worker context with chains on, at least
        two tree nodes, a single backend across the node relations, and
        at least one operand past the context's fan-out threshold.
        """
        if parallel is None or not getattr(parallel, "active", False):
            return None
        if not getattr(parallel, "chains", False):
            return None
        relations = list(bound.node_relations.values())
        if not relations or len({type(r) for r in relations}) != 1:
            return None
        if max(r.distinct_count() for r in relations) < max(
            1, parallel.min_shard_rows
        ):
            return None
        try:
            bot_plan, registers = compile_botjoin_chain(bound)
            top_plan = compile_topjoin_chain(bound, registers)
        except ChainUnsupported:
            return None
        state = parallel.chain_state()
        if state is None:
            return None
        return cls(bound, parallel, shards, state, bot_plan, top_plan, registers)

    def disable(self) -> None:
        """Stop using the resident path; registers are dropped."""
        self.enabled = False
        self.state.drop()

    def close(self) -> None:
        self.enabled = False
        self.state.close()

    # ------------------------------------------------------------- sweeps
    def botjoins(self) -> ResidentMapping:
        """Run the bottom-up plan; only the root aggregate comes home."""
        tree = self.bound.tree
        inputs = {
            name: self.bound.node_relations[name.partition(":")[2]]
            for name in self._bot_plan.loads
        }
        emits = self.state.run_plan(self._bot_plan, inputs)
        register_of = {
            node_id: f"bot:{node_id}"
            for node_id in tree.node_ids
            if node_id != tree.root
        }
        mapping = ResidentMapping(
            self.state,
            register_of,
            {tree.root: emits["root"]},
            self._recover_botjoins,
        )
        self._botjoins = mapping
        return mapping

    def topjoins(self, botjoins) -> ResidentMapping:
        """Run the top-down sweep against the resident botjoins."""
        tree = self.bound.tree
        self.state.run_plan(self._top_plan, {})
        register_of = {
            node_id: f"top:{node_id}"
            for node_id in tree.node_ids
            if node_id != tree.root
        }
        return ResidentMapping(
            self.state,
            register_of,
            {tree.root: None},
            lambda: self._recover_topjoins(botjoins),
        )

    # ----------------------------------------------------------- recovery
    def _recover_botjoins(self) -> Dict[str, Relation]:
        self.disable()
        return compute_botjoins(
            self.bound, parallel=self.parallel, shard_cache=self.shards
        )

    def _recover_topjoins(self, botjoins) -> Dict[str, Optional[Relation]]:
        self.disable()
        return compute_topjoins(
            self.bound, botjoins, parallel=self.parallel, shard_cache=self.shards
        )

    # -------------------------------------------------------- maintenance
    def fold(self, name: str, folds, new_source) -> bool:
        """Fold committed deltas into one resident register (never raises).

        ``new_source`` (the relation the maintained state just committed,
        when it is materialised) cross-checks the folded total; a mismatch
        or any failure drops the register, and the next read recomputes.
        """
        if not self.enabled:
            return False
        expected = new_source.total_count() if new_source is not None else None
        return self.state.fold_delta(name, folds, expected_total=expected)


def count_bound(bound: BoundTree) -> int:
    """``|Q(D)|`` from a bound tree via one botjoin pass."""
    botjoins = compute_botjoins(bound)
    return botjoins[bound.tree.root].total_count()


def semijoin_reduce(bound: BoundTree) -> Dict[str, Relation]:
    """Full (two-pass) semijoin reduction of the node relations.

    After the bottom-up and top-down passes, every remaining tuple
    participates in at least one join result, so the final join phase never
    grows beyond the output size.  Returns the reduced node relations.
    """
    tree = bound.tree
    reduced = dict(bound.node_relations)
    for node_id in tree.post_order():
        for child in tree.children(node_id):
            reduced[node_id] = semijoin(reduced[node_id], reduced[child])
    for node_id in tree.pre_order():
        parent = tree.parent(node_id)
        if parent is not None:
            reduced[node_id] = semijoin(reduced[node_id], reduced[parent])
    return reduced


def evaluate_bound(bound: BoundTree) -> Relation:
    """The full bag join output of a bound tree."""
    reduced = semijoin_reduce(bound)
    result: Optional[Relation] = None
    for node_id in bound.tree.pre_order():
        rel = reduced[node_id]
        result = rel if result is None else join(result, rel)
    if result is None:
        raise InternalError("bound query has no nodes to evaluate")
    return result


def default_tree(query: ConjunctiveQuery, max_width: int = 3) -> DecompositionTree:
    """The tree the engine picks when the caller supplies none: GYO join
    tree for acyclic queries, automatic GHD (node size ≤ ``max_width``)
    otherwise.  The query must be connected (components are handled by the
    top-level functions)."""
    return auto_decompose(query, max_width=max_width)


def _component_trees(
    query: ConjunctiveQuery,
    tree: Optional[DecompositionTree],
    max_width: int = 3,
) -> List[Tuple[ConjunctiveQuery, DecompositionTree]]:
    if tree is not None:
        return [(query, tree)]
    components = query.connected_components()
    if len(components) == 1:
        return [(query, default_tree(query, max_width))]
    pairs: List[Tuple[ConjunctiveQuery, DecompositionTree]] = []
    for i, component in enumerate(components):
        sub = query.subquery(component, name=f"{query.name}#c{i}")
        pairs.append((sub, default_tree(sub, max_width)))
    return pairs


def count_query(
    query: ConjunctiveQuery, db: Database, tree: Optional[DecompositionTree] = None
) -> int:
    """``|Q(D)|`` under bag semantics.

    Disconnected queries multiply their components' counts (the join of
    attribute-disjoint components is a cross product).
    """
    total = 1
    for sub, sub_tree in _component_trees(query, tree):
        total *= count_bound(bind(sub, sub_tree, db))
        if total == 0:
            return 0
    return total


def evaluate_query(
    query: ConjunctiveQuery, db: Database, tree: Optional[DecompositionTree] = None
) -> Relation:
    """The full join output ``Q(D)`` as a bag relation."""
    result: Optional[Relation] = None
    for sub, sub_tree in _component_trees(query, tree):
        part = evaluate_bound(bind(sub, sub_tree, db))
        result = part if result is None else join(result, part)
    if result is None:
        raise InternalError("query has no connected components to evaluate")
    return result


def naive_join(query: ConjunctiveQuery, db: Database) -> Relation:
    """Left-deep join in body order — the brute-force oracle for tests."""
    parts = [query.bound_relation(db, rel) for rel in query.relation_names]
    return join_all(parts)
