"""Snapshot-epoch serving for prepared queries.

Turns a :class:`~repro.session.PreparedQuery` into a long-lived,
multi-tenant server: readers pin immutable epochs via refcounted leases
(:mod:`~repro.serve.epochs`), concurrent reads coalesce into shared
vectorized passes (:mod:`~repro.serve.admission`), DP releases spend
per-tenant budgets (:mod:`~repro.serve.tenants`), and a stdlib asyncio
front end speaks newline-delimited JSON (:mod:`~repro.serve.server`,
:mod:`~repro.serve.protocol`, :mod:`~repro.serve.client`).  See
``docs/serving.md`` for the architecture and wire reference.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.client import ServeClient, connect
from repro.serve.epochs import AppliedBatch, Epoch, EpochLease, EpochManager
from repro.serve.protocol import MAX_LINE, OPS, PROTOCOL_VERSION
from repro.serve.server import SessionServer, serve
from repro.serve.tenants import Tenant, TenantRegistry

__all__ = [
    "AdmissionQueue",
    "AppliedBatch",
    "Epoch",
    "EpochLease",
    "EpochManager",
    "MAX_LINE",
    "OPS",
    "PROTOCOL_VERSION",
    "ServeClient",
    "SessionServer",
    "Tenant",
    "TenantRegistry",
    "connect",
    "serve",
]
