"""Benchmark E5 — Table 2: DP answering, TSensDP vs PrivSQL.

Times one mechanism run per (query, mechanism) pair, reusing a shared
TruncationOracle per query as the experiment harness does.  The headline
shape — TSensDP's global sensitivity far below PrivSQL's on the cyclic and
star queries — is asserted on the way.
"""

import numpy as np
import pytest

from repro.dp import run_privsql, run_tsens_dp
from repro.dp.truncation import TruncationOracle
from repro.experiments.table2 import loose_bound
from repro.workloads import facebook_workloads, tpch_workloads

WORKLOADS = {w.name: w for w in tpch_workloads() + facebook_workloads()}
_ORACLES = {}


def _oracle(workload, db):
    if workload.name not in _ORACLES:
        _ORACLES[workload.name] = TruncationOracle(
            workload.query,
            db,
            workload.primary,
            tree=workload.tree,
            skip_relations=workload.skip_relations,
        )
    return _ORACLES[workload.name]


def _db_for(workload, tpch_base, facebook_base):
    base = tpch_base if workload.name.startswith("q") and workload.name[1:].isdigit() and workload.name in ("q1", "q2", "q3") else facebook_base
    return workload.prepared(base)


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_table2_tsensdp(benchmark, tpch_base, facebook_base, name):
    workload = WORKLOADS[name]
    db = _db_for(workload, tpch_base, facebook_base)
    oracle = _oracle(workload, db)
    ell = loose_bound(oracle.max_primary_sensitivity, floor=workload.ell)
    rng = np.random.default_rng(1)

    outcome = benchmark.pedantic(
        lambda: run_tsens_dp(
            workload.query,
            db,
            primary=workload.primary,
            epsilon=1.0,
            ell=ell,
            tree=workload.tree,
            oracle=oracle,
            rng=rng,
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["tau"] = outcome.tau
    assert outcome.global_sensitivity <= ell


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_table2_privsql(benchmark, tpch_base, facebook_base, name):
    workload = WORKLOADS[name]
    db = _db_for(workload, tpch_base, facebook_base)
    rng = np.random.default_rng(1)

    outcome = benchmark.pedantic(
        lambda: run_privsql(
            workload.query,
            db,
            primary=workload.primary,
            epsilon=1.0,
            tree=workload.tree,
            rng=rng,
        ),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["global_sensitivity"] = outcome.global_sensitivity
    if name in ("q3", "q4", "q_cycle", "q_star"):
        # PrivSQL's static bound explodes on the cyclic/star joins.
        oracle = _oracle(workload, db)
        assert outcome.global_sensitivity > oracle.local_sensitivity
