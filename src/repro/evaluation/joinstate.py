"""Maintained join-state for TSens: botjoins, topjoins and multiplicity
tables that survive committed updates.

The TSens pipeline over one connected component is a chain of derived
structures (paper Sec. 5): bind the decomposition tree, compute botjoins
``K(v)`` bottom-up, topjoins ``J(v)`` top-down, then per-relation
multiplicity tables ``T^i`` whose max entry is the local sensitivity.
Historically each sensitivity read rebuilt the whole chain even though the
session layer already maintained the botjoins under single-tuple updates.
A :class:`JoinState` owns the *entire* chain and keeps every level
consistent under committed updates:

* **Botjoins** are folded along the leaf-to-root path of the updated
  relation's node, exactly as before (bag union for inserts, monus for
  deletes — monus is exact because a delete's delta never exceeds the
  removed tuple's own contribution).
* **Topjoins** are the mirror image.  ``J(v)`` is the complement of
  ``v``'s subtree, so an update at node ``u`` leaves ``J`` unchanged on
  the whole ``u``-to-root path and changes it *everywhere else* — but
  each changed node has exactly one changed input (``rel_u`` for ``u``'s
  children, ``ΔK(path child)`` for siblings of path nodes, ``ΔJ(parent)``
  below), so the delta propagates root-to-leaf through small joins
  against cached relations, never re-joining full inputs.
* **Multiplicity tables** are stored factored by attribute-connected
  components (the same layout the one-shot algorithm uses).  An update
  changes exactly one input part of each table — the updated atom for
  co-located relations, the path-child botjoin for tables on the path,
  the node's topjoin everywhere else — so only the one factor containing
  that part is patched (``factor ± γ(Δpart ⋈ other parts)``); all other
  factors are reused as-is.

Every level below the botjoins is **lazy**: a count-only consumer never
materialises topjoins or tables, and an update folds deltas only into
the structures that exist.  All fallible delta math (including columnar
``int64`` overflow) is *staged* against pre-update state and committed in
one non-raising sweep, so a raising update leaves the state untouched.

Layering: this module sits in ``evaluation`` and only imports the result
types from :mod:`repro.core.result`; the algorithm layer
(:mod:`repro.core.acyclic` and friends) consumes a :class:`JoinState` —
one-shot callers build a throwaway instance, sessions keep one alive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.engine.database import Database
from repro.engine.operators import difference, group_by, join, join_all, union_all
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.sharding import ShardMap
from repro.evaluation.yannakakis import (
    BoundTree,
    ResidentFoldPipeline,
    bind,
    bound_delta,
    compute_botjoins,
    compute_topjoins,
)
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.core.result import MultiplicityTable
from repro.exceptions import InternalError, QueryStructureError


def effective_attributes(
    query: ConjunctiveQuery, relation: str
) -> Tuple[str, ...]:
    """Attributes of ``relation`` shared with at least one other atom."""
    atom = query.atom(relation)
    exclusive = set(query.exclusive_variables(relation))
    return tuple(v for v in atom.variables if v not in exclusive)


@dataclass(frozen=True)
class _TablePart:
    """One symbolic input of a multiplicity table.

    ``kind`` is ``"top"`` (the node's topjoin), ``"bot"`` (a child's
    botjoin) or ``"atom"`` (another relation materialised in the same
    node); ``key`` is the node id or relation name respectively.
    """

    kind: str
    key: str


@dataclass(frozen=True)
class _TableComponent:
    """One attribute-connected factor of a table: its parts, in join
    order, and the effective attributes the factor is grouped on."""

    parts: Tuple[_TablePart, ...]
    effective: Tuple[str, ...]


@dataclass(frozen=True)
class TableLayout:
    """Symbolic shape of one relation's multiplicity table.

    The layout depends only on the query and the decomposition — never on
    the data — so it is computed once and reused to both build the table
    and locate the single factor an update touches.
    """

    relation: str
    node_id: str
    effective: Tuple[str, ...]
    components: Tuple[_TableComponent, ...]


def table_layout(
    query: ConjunctiveQuery, tree: DecompositionTree, relation: str
) -> TableLayout:
    """The factored shape of ``relation``'s table ``T^i`` (paper Eqn. 6).

    Groups the table's inputs — topjoin, child botjoins, co-located atoms
    — into attribute-connected components with the same greedy sweep the
    one-shot algorithm applied to the materialised relations, so the
    factorisation (and therefore every downstream argmax/tie-break) is
    bit-identical whether the table is built fresh or maintained.
    """
    node_id = tree.node_of_relation(relation)
    parts: List[Tuple[_TablePart, Tuple[str, ...]]] = []
    if node_id != tree.root:
        parts.append(
            (
                _TablePart("top", node_id),
                tuple(sorted(tree.shared_with_parent(node_id))),
            )
        )
    for child in tree.children(node_id):
        parts.append(
            (_TablePart("bot", child), tuple(sorted(tree.shared_with_parent(child))))
        )
    for other in tree.node(node_id).relations:
        if other != relation:
            parts.append(
                (_TablePart("atom", other), tuple(query.atom(other).variables))
            )
    effective = effective_attributes(query, relation)

    remaining = list(parts)
    components: List[_TableComponent] = []
    covered: List[str] = []
    while remaining:
        seed_part, seed_attrs = remaining.pop(0)
        group = [seed_part]
        attrs = set(seed_attrs)
        changed = True
        while changed:
            changed = False
            for other in list(remaining):
                if attrs & set(other[1]):
                    group.append(other[0])
                    attrs |= set(other[1])
                    remaining.remove(other)
                    changed = True
        component_effective = tuple(a for a in effective if a in attrs)
        covered.extend(component_effective)
        components.append(_TableComponent(tuple(group), component_effective))
    missing = [a for a in effective if a not in covered]
    if missing and parts:
        raise QueryStructureError(
            f"multiplicity table for {relation!r} is missing attributes "
            f"{missing}; the decomposition does not cover the query"
        )
    return TableLayout(relation, node_id, effective, tuple(components))


def _part_shard_key(part: _TablePart) -> str:
    """Shard-map key of a table part (kinds map onto the cache namespaces
    the botjoin/topjoin passes already use, so partitionings are shared)."""
    return f"{part.kind}:{part.key}"


def build_table(
    layout: TableLayout,
    part_value: Callable[[_TablePart], Relation],
    parallel=None,
    shard_cache=None,
) -> MultiplicityTable:
    """Materialise a table from its layout and a part-resolving callback.

    ``parallel``/``shard_cache`` shard each factor's join+group across the
    worker pool, re-using the botjoin/topjoin partitionings already cached
    for this state; inactive contexts take the identical serial path.
    """
    if not layout.components:
        # Single-relation query: Q(D) = R, every tuple has sensitivity 1.
        table = Relation(
            Schema(layout.effective), {(): 1} if not layout.effective else {}
        )
        return MultiplicityTable(layout.relation, (table,))
    factors: List[Relation] = []
    sharded = parallel is not None and parallel.active
    for component in layout.components:
        parts = [part_value(part) for part in component.parts]
        if sharded:
            keys = [_part_shard_key(part) for part in component.parts]
            factors.append(
                parallel.join_group(
                    parts, component.effective, cache=shard_cache, keys=keys
                )
            )
        else:
            factors.append(group_by(join_all(parts), component.effective))
    return MultiplicityTable(layout.relation, tuple(factors))


Row = Tuple[object, ...]


@dataclass(frozen=True)
class RelationDelta:
    """A compacted, signed delta relation for one base relation.

    ``plus`` maps tuples to the (positive) multiplicity to insert,
    ``minus`` to the multiplicity to delete.  After compaction
    (:func:`repro.evaluation.incremental.compact_updates`) every tuple
    appears on at most one side, and every ``minus`` count is bounded by
    the tuple's pre-batch database multiplicity — which is exactly what
    makes bag monus an *exact* delta at every derived level.
    """

    relation: str
    plus: Mapping[Row, int]
    minus: Mapping[Row, int]

    def is_empty(self) -> bool:
        return not self.plus and not self.minus

    def tuple_count(self) -> int:
        """Distinct tuples carried by this delta (both signs)."""
        return len(self.plus) + len(self.minus)


class _BatchStaging:
    """Uncommitted overlay of a :class:`JoinState` for one update batch.

    Every read during staging goes through this overlay, so fold *k*
    sees the state produced by folds ``1..k-1`` while the committed
    structures stay untouched — any exception mid-batch (columnar
    overflow, say) simply abandons the overlay, leaving the state
    bit-identical to its pre-batch value.  Within a single fold all
    overlay reads refer to structures that fold does not change (each
    derived structure has exactly one changed input per update), so
    read-before-write ordering inside a fold is immaterial.
    """

    __slots__ = (
        "state", "atoms", "nodes", "botjoins", "topjoins", "tables",
        "reports", "touched_columns", "shard_deltas",
    )

    def __init__(self, state: "JoinState"):
        self.state = state
        self.atoms: Dict[str, Relation] = {}
        self.nodes: Dict[str, Relation] = {}
        self.botjoins: Dict[str, Relation] = {}
        self.topjoins: Dict[str, Relation] = {}
        self.tables: Dict[str, MultiplicityTable] = {}
        self.reports: List[AppliedUpdate] = []
        self.touched_columns: Set[str] = set()
        #: shard-map name -> [(delta relation, insert)] folds, in order;
        #: consumed at commit to re-shard only the delta rows.
        self.shard_deltas: Dict[str, List[Tuple[Relation, bool]]] = {}

    def atom(self, relation: str) -> Relation:
        got = self.atoms.get(relation)
        return got if got is not None else self.state.bound.atom_relations[relation]

    def node(self, node_id: str) -> Relation:
        got = self.nodes.get(node_id)
        return got if got is not None else self.state.bound.node_relations[node_id]

    def botjoin(self, node_id: str) -> Relation:
        got = self.botjoins.get(node_id)
        return got if got is not None else self.state.botjoins[node_id]

    def topjoin(self, node_id: str) -> Optional[Relation]:
        if node_id in self.topjoins:
            return self.topjoins[node_id]
        tops = self.state._topjoins
        if tops is None:
            raise InternalError("staging read of unmaterialised topjoins")
        return tops[node_id]

    def table(self, relation: str) -> MultiplicityTable:
        got = self.tables.get(relation)
        return got if got is not None else self.state._tables[relation]

    def record_shard_delta(self, name: str, delta: Relation, insert: bool) -> None:
        self.shard_deltas.setdefault(name, []).append((delta, insert))


@dataclass(frozen=True)
class AppliedUpdate:
    """What one committed update changed inside a :class:`JoinState`.

    Consumers holding caches *derived* from the state (the incremental
    evaluator's sibling complements, say) use this to invalidate exactly
    what moved.
    """

    relation: str
    node_id: str
    #: the row failed the relation's selection predicate: nothing changed.
    filtered: bool
    #: node ids whose botjoin was re-staged by this update.
    changed_botjoins: Tuple[str, ...]
    #: the touched node holds several atoms (GHD node).
    node_multi_atom: bool


class JoinState:
    """The maintained TSens join-state of one *connected* query component.

    Parameters
    ----------
    query:
        Connected full CQ without self-joins (a component subquery for
        disconnected queries).
    tree:
        Decomposition covering ``query`` (join tree or GHD).  Structural
        validation is the caller's job — the algorithm layer raises the
        same errors it always did before building a state.
    db:
        Database to bind against.  The state never mutates the caller's
        object; :meth:`apply_update` advances the *bound* relations only
        (the session layer owns the database snapshots).

    Botjoins are materialised eagerly (they are the count structure);
    topjoins and multiplicity tables appear on first use and are folded
    under updates from then on.  :attr:`witnesses` is a caller-managed
    per-relation witness cache which the state *invalidates* whenever an
    update touches the corresponding table, or may move the witness's
    extrapolated exclusive values — those come from
    :meth:`~repro.engine.database.Database.representative_domain`, which
    intersects active domains across *all database relations sharing the
    base column name*, so the dependency crosses relations (and, for
    disconnected queries, components): see
    :meth:`drop_domain_dependent_witnesses`.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        tree: DecompositionTree,
        db: Database,
        parallel=None,
    ):
        self.query = query
        #: sharded-execution context (None or inactive = serial build);
        #: the shard map below keeps this state's hash partitionings alive
        #: across maintained reads, invalidated by identity on commit.
        self.parallel = parallel
        self.shards = (
            ShardMap() if parallel is not None and parallel.active else None
        )
        self.bound: BoundTree = bind(query, tree, db, parallel=parallel)
        #: worker-resident fold pipeline (None = per-op sharded / serial):
        #: keeps botjoin/topjoin shards inside the worker processes across
        #: both sweeps and across maintained updates, so only root
        #: aggregates and lazily-fetched registers cross process
        #: boundaries.
        self.resident = ResidentFoldPipeline.try_create(
            self.bound, parallel, self.shards
        )
        self.botjoins: Dict[str, Relation] = compute_botjoins(
            self.bound,
            parallel=parallel,
            shard_cache=self.shards,
            resident=self.resident,
        )
        self._topjoins: Optional[Dict[str, Optional[Relation]]] = None
        self._layouts: Dict[str, TableLayout] = {}
        self._tables: Dict[str, MultiplicityTable] = {}
        #: relation -> cached witness (managed by the algorithm layer).
        self.witnesses: Dict[str, object] = {}
        # Schema-only dependency data for witness invalidation (schemas
        # never change, so this stays valid across updates): each
        # relation's base columns, and the base columns its exclusive
        # query variables map to (the ones witness extrapolation reads
        # representative domains for).
        self._base_columns: Dict[str, frozenset] = {}
        self._exclusive_columns: Dict[str, frozenset] = {}
        for rel in query.relation_names:
            base_attrs = db.relation(rel).schema.attributes
            var_to_column = dict(zip(query.atom(rel).variables, base_attrs))
            self._base_columns[rel] = frozenset(base_attrs)
            self._exclusive_columns[rel] = frozenset(
                var_to_column[var] for var in query.exclusive_variables(rel)
            )

    # ------------------------------------------------------------- accessors
    @property
    def tree(self) -> DecompositionTree:
        return self.bound.tree

    @property
    def count(self) -> int:
        """``|Q(D)|`` for this component, from the root botjoin."""
        return self.botjoins[self.tree.root].total_count()

    @property
    def topjoins_materialised(self) -> bool:
        return self._topjoins is not None

    @property
    def tables_materialised(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def topjoins(self) -> Dict[str, Optional[Relation]]:
        """All topjoins ``J(v)``, built on first use, maintained after."""
        if self._topjoins is None:
            # First materialisation from committed botjoins — there is no
            # staged predecessor state for an update to corrupt.
            # repro-lint: disable=R002 -- lazy first build, not an update
            self._topjoins = compute_topjoins(
                self.bound,
                self.botjoins,
                parallel=self.parallel,
                shard_cache=self.shards,
                resident=self.resident,
            )
        return self._topjoins

    def layout(self, relation: str) -> TableLayout:
        if relation not in self._layouts:
            self._layouts[relation] = table_layout(self.query, self.tree, relation)
        return self._layouts[relation]

    def _part_value(self, part: _TablePart) -> Relation:
        if part.kind == "top":
            top = self.topjoins()[part.key]
            if top is None:  # layouts never reference the root topjoin
                raise InternalError(f"table layout references root topjoin {part.key}")
            return top
        if part.kind == "bot":
            return self.botjoins[part.key]
        return self.bound.atom_relation(part.key)

    def multiplicity_table(self, relation: str) -> MultiplicityTable:
        """``T^i`` for one relation — built once, patched under updates."""
        if relation not in self._tables:
            # Same lazy-first-build exemption as topjoins() above.
            # repro-lint: disable=R002 -- lazy first build, not an update
            self._tables[relation] = build_table(
                self.layout(relation),
                self._part_value,
                parallel=self.parallel,
                shard_cache=self.shards,
            )
        return self._tables[relation]

    def close(self) -> None:
        """Release the shared-memory shard map (serial states no-op).

        The state itself stays readable — partitionings are rebuilt on
        demand if another sharded read follows.  Idempotent.
        """
        if self.resident is not None:
            self.resident.close()
        if self.shards is not None:
            self.shards.close()

    def base_columns(self, relation: str) -> frozenset:
        """Base-schema column names of one of this component's relations."""
        return self._base_columns[relation]

    def drop_domain_dependent_witnesses(self, columns) -> None:
        """Invalidate witnesses whose extrapolated values may have moved.

        A witness's exclusive attributes take values from
        ``Database.representative_domain``, which intersects the active
        domains of every *database* relation whose base schema carries the
        column name — so updating any relation that shares a column name
        with one of ``R``'s exclusive columns can change ``R``'s witness
        even though ``R``'s multiplicity table did not move (and even when
        ``R`` lives in a different query component).  The evaluator calls
        this on *every* component state with the updated relation's base
        columns, on every committed update — including selection-filtered
        rows, which still land in the database and its domains.
        """
        columns = frozenset(columns)
        for relation, exclusive in self._exclusive_columns.items():
            if exclusive & columns:
                self.witnesses.pop(relation, None)

    # --------------------------------------------------------------- updates
    def apply_update(
        self, relation: str, row: Sequence[object], insert: bool
    ) -> AppliedUpdate:
        """Fold one committed ``±row`` update of ``relation`` into every
        materialised level of the state (a one-delta batch)."""
        row = tuple(row)
        delta = RelationDelta(
            relation,
            {row: 1} if insert else {},
            {} if insert else {row: 1},
        )
        return self.apply_update_batch([delta])[0]

    def apply_update_batch(
        self, deltas: Sequence[RelationDelta]
    ) -> Tuple[AppliedUpdate, ...]:
        """Fold whole signed delta relations into every materialised level.

        Each delta's minus side folds before its plus side (disjoint
        tuples after compaction, so the order is mathematically free but
        matches the single-update monus path exactly).  The entire batch
        is *staged* against an overlay first and committed in one
        non-raising sweep — a failure anywhere (unknown structure,
        columnar ``int64`` overflow) leaves the state bit-identical to
        its pre-batch value.  Returns one :class:`AppliedUpdate` report
        per signed fold, in fold order.
        """
        return self.commit_update_batch(self.stage_update_batch(deltas))

    def stage_update_batch(self, deltas: Sequence[RelationDelta]) -> _BatchStaging:
        """Stage a batch into an uncommitted overlay (all fallible work)."""
        staging = _BatchStaging(self)
        for delta in deltas:
            if delta.minus:
                self._stage_delta_fold(staging, delta.relation, delta.minus, False)
            if delta.plus:
                self._stage_delta_fold(staging, delta.relation, delta.plus, True)
        return staging

    def commit_update_batch(
        self, staging: _BatchStaging
    ) -> Tuple[AppliedUpdate, ...]:
        """Fold a fully-staged batch overlay into committed state.

        Dict assignments only; nothing here raises, so a failure anywhere
        in staging leaves every committed structure at its pre-batch
        value.  Committed attributes are assigned here and in ``__init__``
        only (enforced by lint rule R002).
        """
        for relation, atom in staging.atoms.items():
            self.bound.atom_relations[relation] = atom
        for node_id, node_relation in staging.nodes.items():
            self.bound.node_relations[node_id] = node_relation
        for changed, botjoin in staging.botjoins.items():
            self.botjoins[changed] = botjoin
        if self._topjoins is not None:
            for changed, topjoin in staging.topjoins.items():
                self._topjoins[changed] = topjoin
        for rel, table in staging.tables.items():
            self._tables[rel] = table
            self.witnesses.pop(rel, None)
        # Tables aside, any witness whose extrapolated exclusive values
        # read a representative domain the batch may have moved is stale
        # too — within this component; the evaluator repeats this for the
        # other components of a disconnected query.
        self.drop_domain_dependent_witnesses(staging.touched_columns)
        if self.shards is not None:
            self._commit_shard_deltas(staging)
        return tuple(staging.reports)

    @staticmethod
    def _committed_source(mapping, key):
        """A committed relation for delta patching, without fetching.

        :class:`~repro.evaluation.yannakakis.ResidentMapping` values that
        are not locally materialised must not be pulled off the workers
        just to patch a coordinator-side shard cache — ``peek`` returns
        only what the commit sweep (or an earlier read) already holds.
        """
        if hasattr(mapping, "peek"):
            return mapping.peek(key)
        return mapping.get(key)

    def _commit_shard_deltas(self, staging: _BatchStaging) -> None:
        """Re-shard only the delta rows of the batch's replaced relations.

        Part of the commit sweep: :meth:`ShardMap.apply_delta` never
        raises — partitionings it cannot patch (shared-memory exports,
        backend or vocabulary-generation mismatches) fall back to plain
        invalidation and are rebuilt lazily on the next sharded read.
        Worker-resident registers (``node:``/``bot:``/``top:``) fold the
        same deltas in place via
        :meth:`~repro.evaluation.yannakakis.ResidentFoldPipeline.fold`,
        which is equally non-raising: a failed fold drops the register
        and the next resident read recomputes.
        """
        topjoins = self._topjoins if self._topjoins is not None else {}
        for name, folds in staging.shard_deltas.items():
            kind, _, key = name.partition(":")
            if kind == "atom":
                new_source = self.bound.atom_relations.get(key)
            elif kind == "node":
                new_source = self.bound.node_relations.get(key)
            elif kind == "bot":
                new_source = self._committed_source(self.botjoins, key)
            else:
                new_source = self._committed_source(topjoins, key)
            if self.resident is not None and kind in ("node", "bot", "top"):
                self.resident.fold(name, folds, new_source)
            if new_source is None:
                self.shards.invalidate([name])
                continue
            self.shards.apply_delta(name, new_source, folds)

    def _stage_delta_fold(
        self,
        staging: _BatchStaging,
        relation: str,
        rows: Mapping[Row, int],
        insert: bool,
    ) -> None:
        """Stage one single-signed delta relation of ``relation``.

        ``|Q(D)|``, every botjoin, every topjoin and every table factor
        are multilinear in each relation's multiplicity vector, and the
        fold changes exactly one input of each derived structure — so the
        whole delta *relation* propagates through the same small join
        chains the one-tuple fold used, with every read going through the
        batch overlay (the state after all previous folds).
        """
        tree = self.tree
        node_id = tree.node_of_relation(relation)
        node = tree.node(node_id)
        multi_atom = len(node.relations) > 1
        # Whatever the selection filter keeps, the rows land in the
        # database, whose active domains feed witness extrapolation.
        staging.touched_columns.update(self._base_columns[relation])
        current_atom = staging.atom(relation)
        atom_delta = bound_delta(self.query, relation, rows, type(current_atom))
        if atom_delta.is_empty():
            staging.reports.append(
                AppliedUpdate(relation, node_id, True, (), multi_atom)
            )
            return
        if atom_delta.distinct_count() == 1:
            # Single-tuple fast path: array-level bump instead of a
            # union/difference kernel pass (keeps one-update batches as
            # cheap as the historical one-tuple fold).
            ((row, cnt),) = tuple(atom_delta.items())
            new_atom = (
                current_atom.add(row, cnt) if insert else current_atom.remove(row, cnt)
            )
        else:
            new_atom = (
                union_all([current_atom, atom_delta])
                if insert
                else difference(current_atom, atom_delta)
            )
        # The node-level delta joins the delta relation with the other
        # atoms materialised in the same node.  For deletes this uses the
        # pre-fold state, which is exactly the removed contribution.
        node_delta = atom_delta
        if not multi_atom:
            new_node_relation = new_atom
        else:
            for other in node.relations:
                if other != relation:
                    node_delta = join(node_delta, staging.atom(other))
            node_parts = [
                new_atom if rel == relation else staging.atom(rel)
                for rel in node.relations
            ]
            if self.parallel is not None and self.parallel.active:
                # Full node rejoin is the one big join in a fold; fan it
                # out ephemerally (no cache keys — new_atom is uncommitted,
                # so a failure here must not touch the shard map).
                new_node_relation = self.parallel.join_all(node_parts)
            else:
                new_node_relation = join_all(node_parts)

        # ----- stage: botjoins along the leaf-to-root path
        staged_botjoins: Dict[str, Relation] = {}
        path_deltas: Dict[str, Relation] = {}
        #: ancestor -> ΔK(path child) ⋈ rel_ancestor, cached because the
        #: topjoin staging needs exactly this join as its sideways core.
        path_expanded: Dict[str, Relation] = {}
        delta = node_delta
        previous: Optional[str] = None
        current: Optional[str] = node_id
        while current is not None:
            if previous is None:
                for child in tree.children(current):
                    delta = join(delta, staging.botjoin(child))
            else:
                delta = join(delta, staging.node(current))
                path_expanded[current] = delta
                for child in tree.children(current):
                    if child != previous:
                        delta = join(delta, staging.botjoin(child))
            delta = group_by(delta, sorted(tree.shared_with_parent(current)))
            if delta.is_empty():
                break  # joins nothing from here up: no botjoin changes
            path_deltas[current] = delta
            staged_botjoins[current] = (
                union_all([staging.botjoin(current), delta])
                if insert
                else difference(staging.botjoin(current), delta)
            )
            previous, current = current, tree.parent(current)

        # ----- stage: topjoins everywhere off the path (if materialised)
        staged_topjoins: Dict[str, Relation] = {}
        topjoin_deltas: Dict[str, Relation] = {}
        if self._topjoins is not None:
            self._stage_topjoin_deltas(
                staging, node_id, node_delta, path_deltas, path_expanded,
                insert, staged_topjoins, topjoin_deltas,
            )

        # ----- stage: the one changed factor of each materialised table
        staged_tables: Dict[str, MultiplicityTable] = {}
        if self._tables:
            ancestors: Dict[str, str] = {}  # ancestor node -> its path child
            walk = node_id
            parent = tree.parent(walk)
            while parent is not None:
                ancestors[parent] = walk
                walk, parent = parent, tree.parent(parent)
            for rel in self._tables:
                if rel == relation:
                    continue  # T^i excludes R_i itself: unchanged by design
                patched = self._stage_table_patch(
                    staging, rel, relation, node_id, ancestors,
                    atom_delta, path_deltas, topjoin_deltas, insert,
                )
                if patched is not None:
                    staged_tables[rel] = patched

        # ----- merge the fold into the batch overlay
        staging.atoms[relation] = new_atom
        staging.nodes[node_id] = new_node_relation
        staging.botjoins.update(staged_botjoins)
        staging.topjoins.update(staged_topjoins)
        staging.tables.update(staged_tables)
        staging.record_shard_delta(f"atom:{relation}", atom_delta, insert)
        staging.record_shard_delta(f"node:{node_id}", node_delta, insert)
        for changed, path_delta in path_deltas.items():
            staging.record_shard_delta(f"bot:{changed}", path_delta, insert)
        for changed, topjoin_delta in topjoin_deltas.items():
            staging.record_shard_delta(f"top:{changed}", topjoin_delta, insert)
        staging.reports.append(
            AppliedUpdate(
                relation, node_id, False, tuple(staged_botjoins), multi_atom
            )
        )

    def _stage_topjoin_deltas(
        self,
        staging: _BatchStaging,
        node_id: str,
        node_delta: Relation,
        path_deltas: Dict[str, Relation],
        path_expanded: Dict[str, Relation],
        insert: bool,
        staged: Dict[str, Relation],
        deltas: Dict[str, Relation],
    ) -> None:
        """Root-to-leaf mirror of the botjoin fold.

        ``J(v)`` is untouched for every ``v`` on the update path (the
        update happened inside ``v``'s subtree, and ``J(v)`` is the
        complement).  Every other node has exactly one changed input:

        * children of the updated node see ``Δrel_u``,
        * siblings of a path node ``p_{i-1}`` (children of ``p_i``) see
          ``ΔK(p_{i-1})``,
        * every node below a changed topjoin sees ``ΔJ(parent)``,

        so each delta is one small join chain against cached (pre-update)
        relations, grouped to the node's parent-shared attributes.  Empty
        deltas prune whole subtrees.
        """
        tree = self.tree
        if self._topjoins is None:
            raise InternalError("topjoin staging requires materialised topjoins")
        pending: List[str] = []

        def stage(target: str, dj: Relation) -> None:
            if dj.is_empty():
                return
            deltas[target] = dj
            old = staging.topjoin(target)
            if old is None:  # only non-root nodes are ever staged
                raise InternalError(f"staged topjoin of root node {target}")
            staged[target] = (
                union_all([old, dj]) if insert else difference(old, dj)
            )
            pending.append(target)

        def fan_out(core: Relation, parent: str, exclude: Optional[str]) -> None:
            """ΔJ for every child of ``parent`` except ``exclude``.

            The shared core delta is already joined with everything common
            to all children (the parent relation and topjoin — the only
            large inputs, probed once per update level, not per child);
            each target then picks up its *other* siblings' botjoins
            left-deep from the core.  Sibling botjoins may be mutually
            attribute-disjoint (they connect only through the parent
            relation), so products must stay seeded by the core — bare
            suffix products would cross-multiply.
            """
            targets = [c for c in tree.children(parent) if c != exclude]
            if not targets or core.is_empty():
                return
            for child in targets:
                acc = core
                for sibling in targets:
                    if sibling != child:
                        acc = join(acc, staging.botjoin(sibling))
                stage(child, group_by(acc, sorted(tree.shared_with_parent(child))))

        # Children of the updated node: the changed input is rel_u.
        if tree.children(node_id):
            core = node_delta
            own_top = staging.topjoin(node_id)
            if own_top is not None:
                core = join(core, own_top)
            fan_out(core, node_id, None)

        # Siblings of each path node: the changed input is ΔK(path child).
        previous, current = node_id, tree.parent(node_id)
        while current is not None:
            path_delta = path_deltas.get(previous)
            if path_delta is None:
                break  # the botjoin delta died below: nothing changes here up
            if any(c != previous for c in tree.children(current)):
                # ΔK(prev) ⋈ rel_current was already computed by the
                # botjoin fold; only the topjoin factor is new here.
                core = path_expanded[current]
                parent_top = staging.topjoin(current)
                if parent_top is not None:
                    core = join(core, parent_top)
                fan_out(core, current, previous)
            previous, current = current, tree.parent(current)

        # Below every changed topjoin: the changed input is ΔJ(parent).
        while pending:
            parent = pending.pop()
            if tree.children(parent):
                core = join(deltas[parent], staging.node(parent))
                fan_out(core, parent, None)

    def _staged_part_value(self, staging: _BatchStaging, part: _TablePart) -> Relation:
        """:meth:`_part_value` through the batch overlay."""
        if part.kind == "top":
            top = staging.topjoin(part.key)
            if top is None:  # layouts never reference the root topjoin
                raise InternalError(f"table layout references root topjoin {part.key}")
            return top
        if part.kind == "bot":
            return staging.botjoin(part.key)
        return staging.atom(part.key)

    def _stage_table_patch(
        self,
        staging: _BatchStaging,
        rel: str,
        updated_relation: str,
        updated_node: str,
        ancestors: Dict[str, str],
        atom_delta: Relation,
        path_deltas: Dict[str, Relation],
        topjoin_deltas: Dict[str, Relation],
        insert: bool,
    ) -> Optional[MultiplicityTable]:
        """The patched table for ``rel``, or ``None`` when it is unchanged.

        Exactly one symbolic part of the table moved in this fold; the
        patch replaces the one factor containing it with ``factor ±
        γ(Δpart ⋈ other parts)``, reusing every other factor object
        untouched.  All reads go through the overlay, so a fold sees the
        factors and parts produced by the previous folds of the batch.
        """
        layout = self.layout(rel)
        w = layout.node_id
        if w == updated_node:
            changed = _TablePart("atom", updated_relation)
            part_delta: Optional[Relation] = atom_delta
        elif w in ancestors:
            path_child = ancestors[w]
            changed = _TablePart("bot", path_child)
            part_delta = path_deltas.get(path_child)
        else:
            changed = _TablePart("top", w)
            part_delta = topjoin_deltas.get(w)
        if part_delta is None or part_delta.is_empty():
            return None
        table = staging.table(rel)
        for index, component in enumerate(layout.components):
            if changed not in component.parts:
                continue
            parts = [part_delta] + [
                self._staged_part_value(staging, part)
                for part in component.parts
                if part != changed
            ]
            factor_delta = group_by(join_all(parts), component.effective)
            if factor_delta.is_empty():
                return None
            old = table.factors[index]
            new_factor = (
                union_all([old, factor_delta])
                if insert
                else difference(old, factor_delta)
            )
            factors = (
                table.factors[:index] + (new_factor,) + table.factors[index + 1:]
            )
            return MultiplicityTable(rel, factors, table.multiplier)
        return None
