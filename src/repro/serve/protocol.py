"""Wire protocol for the serving layer: newline-delimited JSON frames.

Stdlib-only by design (``asyncio`` streams + ``json``): one request per
line, one response per line, every frame a JSON object.  Requests carry
``id`` (caller-chosen correlation token, echoed back verbatim), ``op``
(one of :data:`OPS`) and op-specific parameters; responses carry the
same ``id`` plus either ``ok: true`` with a ``result`` object and the
``epoch`` the answer was pinned to, or ``ok: false`` with an ``error``
object (``type`` names a :class:`~repro.exceptions.ReproError` subclass
the client re-raises).  ``docs/serving.md`` is the full reference; an
optional FastAPI adapter sketch lives there too — this module stays the
dependency-free source of truth either way.

Besides framing, this module owns the JSON projections of the library's
result objects (:class:`~repro.core.result.SensitivityResult`,
:class:`~repro.core.explain.Explanation`, the DP outcome dataclasses).
Projections are lossy on purpose: multiplicity tables can be as large as
the database and never cross the wire.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import asdict, is_dataclass
from typing import Dict, Optional, Tuple

from repro import exceptions as _exceptions
from repro.core.result import SensitiveTuple, SensitivityResult
from repro.exceptions import ProtocolError, ReproError, ServeError

#: Protocol revision, reported by the ``epoch`` and ``stats`` endpoints.
PROTOCOL_VERSION = 1

#: Hard cap on one frame (request or response), in bytes.  A probe of
#: tens of thousands of rows fits comfortably; anything larger should be
#: chunked by the caller.
MAX_LINE = 8 * 1024 * 1024

#: Operations the server understands.
OPS = (
    "count",
    "probe",
    "sensitivity",
    "top_k",
    "explain",
    "release",
    "apply",
    "stats",
    "epoch",
    "shutdown",
)

#: Exception classes a response ``error.type`` may name, discovered from
#: :mod:`repro.exceptions` so the mapping can never drift from the
#: hierarchy.
EXCEPTION_TYPES: Dict[str, type] = {
    name: cls
    for name, cls in inspect.getmembers(_exceptions, inspect.isclass)
    if issubclass(cls, ReproError)
}


# ------------------------------------------------------------------ framing
def encode_frame(payload: Dict[str, object]) -> bytes:
    """One JSON object -> one ``\\n``-terminated line of UTF-8 bytes."""
    line = json.dumps(payload, separators=(",", ":"), default=str).encode(
        "utf-8"
    )
    if len(line) > MAX_LINE:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds MAX_LINE={MAX_LINE}"
        )
    return line + b"\n"


def decode_frame(line: bytes) -> Dict[str, object]:
    """One received line -> the JSON object it carries."""
    if len(line) > MAX_LINE:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds MAX_LINE={MAX_LINE}"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def parse_request(
    payload: Dict[str, object],
) -> Tuple[object, str, Dict[str, object]]:
    """Split a request frame into ``(id, op, params)``, validating shape."""
    if "id" not in payload:
        raise ProtocolError("request frame is missing 'id'")
    request_id = payload["id"]
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request frame is missing a string 'op'")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (known: {', '.join(OPS)})")
    params = {k: v for k, v in payload.items() if k not in ("id", "op")}
    return request_id, op, params


def ok_response(
    request_id: object, result: object, epoch: Optional[int] = None
) -> Dict[str, object]:
    payload: Dict[str, object] = {"id": request_id, "ok": True, "result": result}
    if epoch is not None:
        payload["epoch"] = epoch
    return payload


def error_response(request_id: object, exc: BaseException) -> Dict[str, object]:
    """Project an exception into a response frame (library exception
    classes keep their names; anything else degrades to ``ServeError``)."""
    name = type(exc).__name__
    if name not in EXCEPTION_TYPES:
        name = "ServeError"
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": name, "message": str(exc)},
    }


def raise_remote(error: Dict[str, object]) -> None:
    """Re-raise a response's ``error`` object client-side.

    The named library exception class is reconstructed with the remote
    message; classes with richer constructors (or unknown names) degrade
    to :class:`~repro.exceptions.ServeError` carrying the same text.
    """
    name = error.get("type", "ServeError")
    message = str(error.get("message", "remote error"))
    cls = EXCEPTION_TYPES.get(str(name), ServeError)
    try:
        raise cls(message)
    except TypeError:
        raise ServeError(f"{name}: {message}") from None


# ------------------------------------------------------------- projections
def sensitive_tuple_to_dict(witness: SensitiveTuple) -> Dict[str, object]:
    return {
        "relation": witness.relation,
        "sensitivity": witness.sensitivity,
        "assignment": dict(witness.assignment),
    }


def sensitivity_result_to_dict(result: SensitivityResult) -> Dict[str, object]:
    """The wire view of a sensitivity result: everything except the
    multiplicity tables (database-sized; never serialised)."""
    return {
        "query_name": result.query_name,
        "method": result.method,
        "local_sensitivity": result.local_sensitivity,
        "witness": (
            sensitive_tuple_to_dict(result.witness)
            if result.witness is not None
            else None
        ),
        "per_relation": {
            name: sensitive_tuple_to_dict(witness)
            for name, witness in result.per_relation.items()
        },
    }


def explanation_to_dict(explanation) -> Dict[str, object]:
    """The wire view of an :class:`~repro.core.explain.Explanation`
    (a dataclass of dataclasses; ``asdict`` recurses)."""
    return asdict(explanation)


def outcome_to_dict(outcome) -> Dict[str, object]:
    """The wire view of a DP release outcome: the dataclass fields plus a
    ``mechanism_outcome`` discriminator naming the concrete class."""
    if not is_dataclass(outcome):
        raise ProtocolError(
            f"cannot serialise release outcome {type(outcome).__name__}"
        )
    payload = asdict(outcome)
    payload["mechanism_outcome"] = type(outcome).__name__
    return payload
