"""Benchmark E3 — Figure 7: runtime of TSens vs Elastic vs evaluation.

pytest-benchmark separately times, per TPC-H query, (a) the TSens pass,
(b) the Elastic static analysis, and (c) the count-only Yannakakis
evaluation.  The figure's claims: Elastic ≪ evaluation ≈ TSens (within a
small constant factor).

The module doubles as a standalone backend-comparison script::

    PYTHONPATH=src python benchmarks/bench_fig7_runtime.py --backend columnar

times TSens and the count evaluation per query on the requested backend
*and* on the python reference, and prints the per-query and aggregate
speedups (the columnar engine's headline number).
"""

import pytest

from repro.baselines import elastic_sensitivity, plan_from_tree
from repro.core import local_sensitivity
from repro.evaluation import count_query
from repro.query import auto_decompose
from repro.workloads import q1_workload, q2_workload, q3_workload

WORKLOADS = {
    "q1": q1_workload(),
    "q2": q2_workload(),
    "q3": q3_workload(),
}


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_fig7_tsens_time(benchmark, tpch_base, name):
    workload = WORKLOADS[name]
    db = workload.prepared(tpch_base)
    benchmark.pedantic(
        lambda: local_sensitivity(
            workload.query, db, tree=workload.tree,
            skip_relations=workload.skip_relations,
        ),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_fig7_elastic_time(benchmark, tpch_base, name):
    workload = WORKLOADS[name]
    db = workload.prepared(tpch_base)
    tree = workload.tree or auto_decompose(workload.query)
    plan = plan_from_tree(tree)
    benchmark(lambda: elastic_sensitivity(workload.query, db, plan=plan))


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_fig7_evaluation_time(benchmark, tpch_base, name):
    workload = WORKLOADS[name]
    db = workload.prepared(tpch_base)
    benchmark.pedantic(
        lambda: count_query(workload.query, db, tree=workload.tree),
        rounds=3,
        iterations=1,
    )


# --------------------------------------------------------------- script mode
def _best_of(fn, rounds):
    import time

    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_backend(backend, scale, seed, rounds):
    """Per-query TSens + count wall times (best of ``rounds``) on ``backend``."""
    from repro.datasets import generate_tpch

    base = generate_tpch(scale, seed=seed, backend=backend)
    results = {}
    for name, workload in WORKLOADS.items():
        db = workload.prepared(base)
        results[name] = {
            "tsens_seconds": _best_of(
                lambda: local_sensitivity(
                    workload.query, db, tree=workload.tree,
                    skip_relations=workload.skip_relations,
                ),
                rounds,
            ),
            "count_seconds": _best_of(
                lambda: count_query(workload.query, db, tree=workload.tree),
                rounds,
            ),
        }
    return results


if __name__ == "__main__":
    import argparse
    import json
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from conftest import SEED, TPCH_SCALE

    parser = argparse.ArgumentParser(
        description="Figure 7 runtimes per backend, with python-reference speedups."
    )
    parser.add_argument(
        "--backend", default="columnar", choices=("python", "columnar"),
        help="backend to report (python skips the comparison run)",
    )
    parser.add_argument("--scale", type=float, default=TPCH_SCALE)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--json", type=Path, default=None,
        help="also write the full result document to this path",
    )
    args = parser.parse_args()

    timed = {args.backend: run_backend(args.backend, args.scale, args.seed, args.rounds)}
    if args.backend != "python":
        timed["python"] = run_backend("python", args.scale, args.seed, args.rounds)

    document = {"scale": args.scale, "seed": args.seed, "backends": timed}
    print(f"fig7 runtimes  scale={args.scale}  seed={args.seed}  rounds={args.rounds}")
    for name in WORKLOADS:
        line = f"  {name}:"
        for backend_name, results in timed.items():
            entry = results[name]
            line += (
                f"  {backend_name}: tsens={entry['tsens_seconds']*1e3:8.2f}ms"
                f" count={entry['count_seconds']*1e3:8.2f}ms"
            )
        print(line)

    if "python" in timed and args.backend != "python":
        fast, ref = timed[args.backend], timed["python"]
        speedups = {}
        for name in WORKLOADS:
            speedups[name] = {
                metric: ref[name][metric] / max(fast[name][metric], 1e-9)
                for metric in ("tsens_seconds", "count_seconds")
            }
        ref_total = sum(v[m] for v in ref.values() for m in v)
        fast_total = sum(v[m] for v in fast.values() for m in v)
        overall = ref_total / max(fast_total, 1e-9)
        document["speedup_vs_python"] = {"per_query": speedups, "overall": overall}
        print(f"speedup ({args.backend} vs python):")
        for name, entry in speedups.items():
            print(
                f"  {name}: tsens {entry['tsens_seconds']:.1f}x,"
                f" count {entry['count_seconds']:.1f}x"
            )
        print(f"  overall (total wall time): {overall:.1f}x")

    if args.json is not None:
        args.json.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
