"""Unit tests for the re-evaluation baseline."""

import numpy as np
import pytest

from repro.baselines import reevaluation_sensitivity
from repro.core import local_sensitivity, naive_local_sensitivity
from repro.datasets import random_acyclic_query, random_database
from repro.exceptions import MechanismConfigError


class TestReevaluation:
    @pytest.mark.parametrize("mode", ["incremental", "full"])
    def test_matches_naive_fig1(self, fig1_query, fig1_db, mode):
        fast = reevaluation_sensitivity(fig1_query, fig1_db, mode=mode)
        slow = naive_local_sensitivity(fig1_query, fig1_db)
        assert fast.local_sensitivity == slow.local_sensitivity

    def test_matches_naive_random(self):
        rng = np.random.default_rng(21)
        for _ in range(10):
            query = random_acyclic_query(rng, num_atoms=3)
            db = random_database(query, rng)
            fast = reevaluation_sensitivity(query, db)
            slow = naive_local_sensitivity(query, db)
            assert fast.local_sensitivity == slow.local_sensitivity

    def test_modes_agree_exactly(self, fig3_query, fig3_db):
        incremental = reevaluation_sensitivity(fig3_query, fig3_db)
        full = reevaluation_sensitivity(fig3_query, fig3_db, mode="full")
        assert incremental.local_sensitivity == full.local_sensitivity
        for relation in fig3_query.relation_names:
            a = incremental.per_relation[relation]
            b = full.per_relation[relation]
            assert a.sensitivity == b.sensitivity
            assert dict(a.assignment) == dict(b.assignment)

    @pytest.mark.parametrize("mode", ["incremental", "full"])
    def test_sampled_mode_lower_bounds(self, fig3_query, fig3_db, mode):
        exact = naive_local_sensitivity(fig3_query, fig3_db).local_sensitivity
        sampled = reevaluation_sensitivity(
            fig3_query, fig3_db, max_probes_per_relation=2, seed=5, mode=mode
        )
        assert sampled.local_sensitivity <= exact
        assert sampled.method.startswith("reeval-sampled")

    def test_deletions_only_mode(self, fig1_query, fig1_db):
        result = reevaluation_sensitivity(
            fig1_query, fig1_db, include_insertions=False
        )
        # Downward-only: Fig. 1's LS of 4 needs an insertion, so the
        # deletions-only bound is strictly smaller.
        assert result.local_sensitivity == 1

    def test_method_labels(self, fig1_query, fig1_db):
        assert (
            reevaluation_sensitivity(fig1_query, fig1_db).method
            == "reeval-incremental"
        )
        assert (
            reevaluation_sensitivity(fig1_query, fig1_db, mode="full").method
            == "reeval"
        )

    def test_unknown_mode_rejected(self, fig1_query, fig1_db):
        with pytest.raises(MechanismConfigError):
            reevaluation_sensitivity(fig1_query, fig1_db, mode="lazy")


class TestApiDispatch:
    def test_local_sensitivity_reeval_method(self, fig1_query, fig1_db):
        via_api = local_sensitivity(fig1_query, fig1_db, method="reeval")
        direct = naive_local_sensitivity(fig1_query, fig1_db)
        assert via_api.method == "reeval-incremental"
        assert via_api.local_sensitivity == direct.local_sensitivity

    def test_local_sensitivity_reeval_full_mode(self, fig1_query, fig1_db):
        via_api = local_sensitivity(
            fig1_query, fig1_db, method="reeval", reeval_mode="full"
        )
        assert via_api.method == "reeval"

    @pytest.mark.parametrize("mode", ["incremental", "full"])
    def test_max_width_reaches_auto_decompose(
        self, triangle_query, triangle_db, mode
    ):
        from repro.exceptions import DecompositionError

        # width 2 suffices for the triangle; width 1 forbids merging.
        ok = local_sensitivity(
            triangle_query, triangle_db, method="reeval",
            reeval_mode=mode, max_width=2,
        )
        assert ok.local_sensitivity == naive_local_sensitivity(
            triangle_query, triangle_db
        ).local_sensitivity
        with pytest.raises(DecompositionError):
            local_sensitivity(
                triangle_query, triangle_db, method="reeval",
                reeval_mode=mode, max_width=1,
            )

    def test_reeval_rejects_unsupported_knobs(self, fig1_query, fig1_db):
        with pytest.raises(MechanismConfigError):
            local_sensitivity(fig1_query, fig1_db, method="reeval", top_k=2)
        with pytest.raises(MechanismConfigError):
            local_sensitivity(
                fig1_query, fig1_db, method="reeval", skip_relations=("R1",)
            )
