"""Prepared sessions == one-shot calls == fresh sessions after updates.

Two contracts make the session API safe to build on:

* **Read equivalence** — every read on a :class:`~repro.session.PreparedQuery`
  (count, sensitivity under every method, top-k) returns exactly what the
  corresponding one-shot function returns on the session's database, for
  both execution backends.
* **Update equivalence** — after an arbitrary committed insert/delete
  stream, the session (whose caches were maintained by leaf-to-root delta
  folding, never rebuilt) is indistinguishable from a *fresh* session
  prepared on the mutated database: same counts, same sensitivities, same
  witnesses, same per-probe reeval deltas.

Hypothesis drives random acyclic/path/cyclic queries, random databases
and random update streams through both contracts.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import local_sensitivity, prepare
from repro.datasets import (
    random_acyclic_query,
    random_database,
    random_path_query,
    random_update_stream,
)
from repro.evaluation import count_query
from repro.query import parse_query

seeds = st.integers(min_value=0, max_value=10_000)

BACKENDS = ("python", "columnar")


def _assert_same_result(session_result, oneshot_result, query):
    assert session_result.method == oneshot_result.method
    assert session_result.local_sensitivity == oneshot_result.local_sensitivity
    for relation in query.relation_names:
        a = session_result.per_relation[relation]
        b = oneshot_result.per_relation[relation]
        assert a.sensitivity == b.sensitivity
        assert dict(a.assignment) == dict(b.assignment)
    if oneshot_result.witness is None:
        assert session_result.witness is None
    else:
        assert session_result.witness is not None
        assert (
            session_result.witness.sensitivity
            == oneshot_result.witness.sensitivity
        )


def _apply_stream(session, stream):
    for op, relation, row in stream:
        if op == "insert":
            session.insert(relation, row)
        else:
            session.delete(relation, row)


@pytest.mark.parametrize("backend", BACKENDS)
class TestPreparedMatchesOneShot:
    @given(seeds, st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_acyclic_all_methods(self, backend, seed, num_atoms):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        assert session.count() == count_query(query, db)
        for method in ("auto", "tsens", "naive", "reeval"):
            _assert_same_result(
                session.sensitivity(method=method),
                local_sensitivity(query, db, method=method),
                query,
            )

    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_path_queries(self, backend, seed, length):
        rng = np.random.default_rng(seed)
        query = random_path_query(rng, length=length)
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        for method in ("auto", "path"):
            _assert_same_result(
                session.sensitivity(method=method),
                local_sensitivity(query, db, method=method),
                query,
            )

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_cyclic_ghd(self, backend, seed):
        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db = random_database(query, rng, domain_size=3, max_rows=5, backend=backend)
        session = prepare(query, db)
        assert session.count() == count_query(query, db)
        _assert_same_result(
            session.sensitivity(), local_sensitivity(query, db), query
        )

    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_top_k_upper_bound_matches(self, backend, seed, k):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        db = random_database(query, rng, backend=backend)
        _assert_same_result(
            prepare(query, db).top_k(k),
            local_sensitivity(query, db, top_k=k),
            query,
        )


@pytest.mark.parametrize("backend", BACKENDS)
class TestSessionAfterUpdateStream:
    @given(seeds, st.integers(min_value=0, max_value=25))
    @settings(max_examples=20, deadline=None)
    def test_stream_equals_fresh_session(self, backend, seed, n_updates):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(
            rng, num_atoms=1 + int(rng.integers(0, 3))
        )
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        stream = random_update_stream(query, db, rng, n_updates)
        _apply_stream(session, stream)
        assert session.updates_applied == n_updates

        # The session's database snapshot equals the manual replay ...
        manual = db
        for op, relation, row in stream:
            manual = (
                manual.add_tuple(relation, row)
                if op == "insert"
                else manual.remove_tuple(relation, row)
            )
        for relation in query.relation_names:
            assert session.db.relation(relation).same_bag(
                manual.relation(relation)
            )

        # ... and every read off the maintained caches matches a session
        # rebuilt from scratch on that database.
        fresh = prepare(query, manual)
        assert session.count() == fresh.count()
        _assert_same_result(session.sensitivity(), fresh.sensitivity(), query)
        _assert_same_result(
            session.sensitivity(method="reeval"),
            fresh.sensitivity(method="reeval"),
            query,
        )

    @given(seeds, st.integers(min_value=1, max_value=20))
    @settings(max_examples=15, deadline=None)
    def test_batch_apply_equals_fresh_session(self, backend, seed, n_updates):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=2)
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        stream = random_update_stream(query, db, rng, n_updates)
        count = session.apply(stream)
        fresh = prepare(query, session.db)
        assert count == session.count() == fresh.count()
        _assert_same_result(session.sensitivity(), fresh.sensitivity(), query)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_stream_on_cyclic_query(self, backend, seed):
        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db = random_database(query, rng, domain_size=3, max_rows=5, backend=backend)
        session = prepare(query, db)
        stream = random_update_stream(query, db, rng, 10)
        _apply_stream(session, stream)
        fresh = prepare(query, session.db)
        assert session.count() == fresh.count()
        _assert_same_result(session.sensitivity(), fresh.sensitivity(), query)

    @given(seeds, st.integers(min_value=1, max_value=12))
    @settings(max_examples=15, deadline=None)
    def test_interleaved_probes_and_commits(self, backend, seed, n_updates):
        """Probes *between* commits exercise the stale-complement refresh
        (probe state exists, then an applied update partially invalidates
        it) — every delta must still match a freshly built evaluator."""
        from repro.evaluation import IncrementalEvaluator

        rng = np.random.default_rng(seed)
        query = random_acyclic_query(
            rng, num_atoms=1 + int(rng.integers(0, 3))
        )
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        session.sensitivity(method="reeval")  # builds probe state up front
        stream = random_update_stream(query, db, rng, n_updates)
        for op, relation, row in stream:
            if op == "insert":
                session.insert(relation, row)
            else:
                session.delete(relation, row)
            probe_rel = query.relation_names[
                int(rng.integers(0, len(query.relation_names)))
            ]
            arity = query.atom(probe_rel).arity
            probes = [
                tuple(int(v) for v in rng.integers(0, 4, size=arity))
                for _ in range(3)
            ] + list(session.db.relation(probe_rel))[:3]
            fresh = IncrementalEvaluator(query, session.db)
            assert session.sensitivity(method="reeval").local_sensitivity == (
                prepare(query, session.db).sensitivity(method="reeval")
            ).local_sensitivity
            maintained = session._ensure_evaluator()
            assert maintained.base_count == fresh.base_count
            assert maintained.delta_batch(probe_rel, probes) == (
                fresh.delta_batch(probe_rel, probes)
            )

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_stream_with_selection(self, backend, seed):
        from repro.query import parse_predicate

        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        target = query.relation_names[int(rng.integers(0, 3))]
        pivot = int(rng.integers(0, 3))
        first_var = query.atom(target).variables[0]
        filtered = query.with_selection(
            target, parse_predicate(f"{first_var} != {pivot}")
        )
        db = random_database(query, rng, backend=backend)
        session = prepare(filtered, db)
        stream = random_update_stream(filtered, db, rng, 12)
        _apply_stream(session, stream)
        fresh = prepare(filtered, session.db)
        assert session.count() == fresh.count()
        _assert_same_result(session.sensitivity(), fresh.sensitivity(), filtered)
