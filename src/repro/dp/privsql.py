"""A PrivSQL-style baseline (PrivateSQL, Kotsogiannis et al. 2019).

PrivSQL answers SQL counting queries under a *policy*: one primary private
relation, with privacy propagating to other relations through foreign keys
(deleting a primary tuple cascades).  Its truncation strategy differs from
TSensDP in two ways the paper contrasts (Sec. 6.2 "Discussion"):

* it truncates **non-primary** relations, capping the *frequency* of each
  foreign-key group at a learned threshold — frequency, not tuple
  sensitivity, so it can both over-truncate (bias, e.g. q2) and keep the
  actually-sensitive tuples (loose bounds, e.g. q3);
* its SVT threshold queries have sensitivity equal to the relation's
  policy sensitivity (the product of caps up the FK chain), not 1.

Global sensitivity of the truncated query is obtained by Flex-style static
analysis on the truncated instance with the learned caps substituted for
the truncated relations' join-key frequencies — mirroring PrivateSQL's
constraint-driven sensitivity computation.  As in the paper's experiments,
the synopsis phase is disabled: the query is answered directly with the
Laplace mechanism.

This is a reimplementation in shape, not a port; simplifications are
documented in DESIGN.md ("Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.database import Database, ForeignKey
from repro.engine.relation import Relation
from repro.evaluation.yannakakis import count_query
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.baselines.elastic import elastic_sensitivity, plan_from_tree
from repro.dp.accountant import BudgetAccountant
from repro.dp.marking import declassified
from repro.dp.primitives import above_threshold, laplace_mechanism
from repro.exceptions import MechanismConfigError


@dataclass
class PrivSQLOutcome:
    """One run of the PrivSQL-style mechanism (fields mirror
    :class:`~repro.dp.tsensdp.TSensDPOutcome` for side-by-side reporting)."""

    answer: float
    global_sensitivity: int
    thresholds: Dict[str, int]
    true_count: int
    truncated_count: int
    epsilon: float
    ledger: Dict[str, float]

    @property
    def bias(self) -> int:
        return abs(self.true_count - self.truncated_count)

    @property
    def relative_bias(self) -> float:
        if self.true_count == 0:
            return 0.0
        return self.bias / self.true_count

    @property
    def error(self) -> float:
        return abs(self.answer - self.true_count)

    @property
    def relative_error(self) -> float:
        if self.true_count == 0:
            return 0.0
        return self.error / self.true_count


def affected_relations(db: Database, primary: str) -> List[ForeignKey]:
    """Foreign keys reachable from ``primary`` walking parent→child.

    Returns the FK edges in BFS order; their child relations are the ones
    the policy marks as (transitively) private and hence truncatable.
    """
    edges: List[ForeignKey] = []
    frontier = [primary]
    visited = {primary}
    while frontier:
        current = frontier.pop(0)
        for fk in db.foreign_keys:
            if fk.parent == current and fk.child not in visited:
                edges.append(fk)
                visited.add(fk.child)
                frontier.append(fk.child)
    return edges


def _frequency_groups(relation: Relation, attributes: Tuple[str, ...]) -> Dict:
    groups: Dict = {}
    positions = relation.schema.project_positions(attributes)
    for row, cnt in relation.items():
        key = tuple(row[p] for p in positions)
        groups[key] = groups.get(key, 0) + cnt
    return groups


def _truncate_by_frequency(
    relation: Relation, attributes: Tuple[str, ...], threshold: int
) -> Relation:
    """Drop all tuples of any FK group whose frequency exceeds ``threshold``
    (PrivateSQL's row-dropping semantics)."""
    groups = _frequency_groups(relation, attributes)
    positions = relation.schema.project_positions(attributes)
    kept = {
        row: cnt
        for row, cnt in relation.items()
        if groups[tuple(row[p] for p in positions)] <= threshold
    }
    return type(relation)._from_counts(relation.schema, kept)


def run_privsql(
    query: ConjunctiveQuery,
    db: Database,
    primary: str,
    epsilon: float,
    tree: Optional[DecompositionTree] = None,
    max_threshold: int = 4096,
    rng: Optional[np.random.Generator] = None,
    clamp_nonnegative: bool = True,
) -> PrivSQLOutcome:
    """Run the PrivSQL-style mechanism once.

    Parameters
    ----------
    query, db, primary:
        Counting query, instance (with declared foreign keys), and primary
        private relation.
    epsilon:
        Total budget.  Half learns the per-relation frequency caps (when
        the policy yields truncatable relations); the rest answers.
    tree:
        Decomposition used for counting and for the Flex join plan.
    max_threshold:
        Upper end of the SVT threshold scan per relation.
    """
    if rng is None:
        rng = np.random.default_rng()
    accountant = BudgetAccountant(epsilon)
    fk_edges = affected_relations(db, primary)

    thresholds: Dict[str, int] = {}
    truncated_db = db
    if fk_edges:
        epsilon_learning = epsilon / 2.0
        per_relation_budget = epsilon_learning / len(fk_edges)
        # Policy sensitivity accumulates caps along the FK chain.
        policy_sensitivity: Dict[str, int] = {primary: 1}
        for fk in fk_edges:
            accountant.spend(per_relation_budget, f"svt:{fk.child}")
            relation = truncated_db.relation(fk.child)
            groups = _frequency_groups(relation, fk.child_attributes)
            parent_sensitivity = policy_sensitivity.get(fk.parent, 1)

            def overflow_counts():
                # q_i = −(number of FK groups with frequency > i); SVT stops
                # at the first i where (noisily) no group overflows.
                for i in range(1, max_threshold + 1):
                    yield -sum(1 for freq in groups.values() if freq > i)

            found = above_threshold(
                overflow_counts(),
                threshold=-0.5,
                epsilon=per_relation_budget,
                rng=rng,
                sensitivity=float(parent_sensitivity),
            )
            cap = (found + 1) if found is not None else max_threshold
            thresholds[fk.child] = cap
            policy_sensitivity[fk.child] = parent_sensitivity * cap
            truncated_db = truncated_db.with_relation(
                fk.child,
                _truncate_by_frequency(relation, fk.child_attributes, cap),
            )
        epsilon_answer = epsilon - epsilon_learning
    else:
        epsilon_answer = epsilon

    # Static (Flex-style) global sensitivity bound w.r.t. the primary on
    # the truncated instance; learned caps stand in for truncated
    # relations' key frequencies via the truncated data itself.
    if tree is None:
        from repro.query.ghd import auto_decompose

        tree = auto_decompose(query)
    global_sensitivity = elastic_sensitivity(
        query, truncated_db, plan=plan_from_tree(tree), protected=primary
    )
    global_sensitivity = max(1, global_sensitivity)

    truncated = count_query(query, truncated_db, tree=tree)
    accountant.spend(epsilon_answer, "answer")
    answer = laplace_mechanism(truncated, global_sensitivity, epsilon_answer, rng)
    if clamp_nonnegative and answer < 0:
        answer = 0.0

    true_count = count_query(query, db, tree=tree)
    return PrivSQLOutcome(
        answer=answer,
        global_sensitivity=global_sensitivity,
        thresholds=thresholds,
        true_count=declassified(true_count, reason="debug field for experiments"),
        truncated_count=declassified(truncated, reason="debug field for experiments"),
        epsilon=epsilon,
        ledger=accountant.ledger(),
    )
