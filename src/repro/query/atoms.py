"""Query atoms.

An :class:`Atom` is one relational occurrence in the body of a conjunctive
query: a relation name plus the ordered list of query variables (attribute
names) it binds.  The paper's queries are *full* CQs without self-joins, so
each relation name appears at most once and the head contains every
variable; those restrictions are enforced by
:class:`repro.query.conjunctive.ConjunctiveQuery`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class Atom:
    """One body atom ``relation(variables...)``.

    Parameters
    ----------
    relation:
        Name of the base relation in the database.
    variables:
        Query variables bound positionally to the relation's columns.
        Repeated variables inside one atom (e.g. ``R(x, x)``) are not
        supported, matching the paper's natural-join semantics.
    """

    relation: str
    variables: Tuple[str, ...]

    def __init__(self, relation: str, variables):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "variables", tuple(variables))
        if not self.relation:
            raise SchemaError("atom relation name must be non-empty")
        if len(set(self.variables)) != len(self.variables):
            raise SchemaError(
                f"atom {self.relation}{self.variables} repeats a variable; "
                "repeated variables within one atom are not supported"
            )
        if not self.variables:
            raise SchemaError(f"atom {self.relation} binds no variables")

    @property
    def variable_set(self) -> FrozenSet[str]:
        """The variables as a frozenset (hyperedge of the query hypergraph)."""
        return frozenset(self.variables)

    @property
    def arity(self) -> int:
        return len(self.variables)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"
