"""Unit tests for LSPathJoin (Algorithm 1) — :mod:`repro.core.path`."""

import pytest

from repro.core import ls_path_join, naive_local_sensitivity, tsens
from repro.engine import Database, Relation
from repro.query import parse_query
from repro.exceptions import QueryStructureError


class TestPaperExample:
    """Figure 3 / Examples 4.1–4.2 of the paper."""

    def test_r2_tuple_sensitivity_is_topjoin_times_botjoin(
        self, fig3_query, fig3_db
    ):
        # Figure 3's multiplicity table for R2: J(R2) = {b1: 1, b2: 3} and
        # K(R3) = {c1: 6, c2: 4}, giving δ(b1,c1)=6 and δ(b2,c1)=18 — the
        # exact values printed in the paper's figure.
        result = ls_path_join(fig3_query, fig3_db)
        assert result.tuple_sensitivity("R2", {"B": "b1", "C": "c1"}) == 6
        assert result.tuple_sensitivity("R2", {"B": "b2", "C": "c1"}) == 18

    def test_matches_naive_and_tsens(self, fig3_query, fig3_db):
        path = ls_path_join(fig3_query, fig3_db)
        acyclic = tsens(fig3_query, fig3_db)
        naive = naive_local_sensitivity(fig3_query, fig3_db)
        assert (
            path.local_sensitivity
            == acyclic.local_sensitivity
            == naive.local_sensitivity
        )
        for relation in fig3_query.relation_names:
            assert (
                path.per_relation[relation].sensitivity
                == naive.per_relation[relation].sensitivity
            )

    def test_method_label(self, fig3_query, fig3_db):
        assert ls_path_join(fig3_query, fig3_db).method == "path"


class TestEndpoints:
    def test_first_relation_sensitivity_is_outgoing_only(self):
        q = parse_query("R1(A,B), R2(B,C)")
        db = Database(
            {
                "R1": Relation(["A", "B"], [(1, 10)]),
                "R2": Relation(["B", "C"], [(10, 0), (10, 1), (10, 1)]),
            }
        )
        result = ls_path_join(q, db)
        # Adding R1(x, 10) creates 3 outputs; A is free (exclusive).
        assert result.per_relation["R1"].sensitivity == 3

    def test_last_relation_sensitivity_is_incoming_only(self):
        q = parse_query("R1(A,B), R2(B,C)")
        db = Database(
            {
                "R1": Relation(["A", "B"], [(1, 10), (2, 10), (1, 10)]),
                "R2": Relation(["B", "C"], [(10, 0)]),
            }
        )
        result = ls_path_join(q, db)
        assert result.per_relation["R2"].sensitivity == 3

    def test_unary_endpoints(self):
        # TPC-H q1 shape: Region(RK) is unary.
        q = parse_query("R(RK), N(RK,NK), C(NK,CK)")
        db = Database(
            {
                "R": Relation(["RK"], [(0,), (1,)]),
                "N": Relation(["RK", "NK"], [(0, 5), (0, 6), (1, 5)]),
                "C": Relation(["NK", "CK"], [(5, 100), (5, 101), (6, 102)]),
            }
        )
        result = ls_path_join(q, db)
        naive = naive_local_sensitivity(q, db)
        assert result.local_sensitivity == naive.local_sensitivity

    def test_single_relation(self):
        q = parse_query("R(A,B)")
        db = Database({"R": Relation(["A", "B"], [(1, 2)])})
        result = ls_path_join(q, db)
        assert result.local_sensitivity == 1
        assert result.witness is not None

    def test_two_relations(self):
        q = parse_query("R(A,B), S(B,C)")
        db = Database(
            {
                "R": Relation(["A", "B"], [(1, 2), (3, 2)]),
                "S": Relation(["B", "C"], [(2, 4)]),
            }
        )
        result = ls_path_join(q, db)
        assert result.local_sensitivity == 2
        assert result.witness.relation == "S"


class TestMultiAttributeBoundaries:
    def test_shared_pair_of_attributes(self):
        q = parse_query("R(A,B,C), S(B,C,D)")
        db = Database(
            {
                "R": Relation(["A", "B", "C"], [(1, 2, 3), (9, 2, 3)]),
                "S": Relation(["B", "C", "D"], [(2, 3, 7)]),
            }
        )
        result = ls_path_join(q, db)
        naive = naive_local_sensitivity(q, db)
        assert result.local_sensitivity == naive.local_sensitivity == 2


class TestEmptyCases:
    def test_middle_relation_empty(self, fig3_query, fig3_db):
        db = fig3_db.with_relation("R2", Relation(["B", "C"], ()))
        result = ls_path_join(fig3_query, db)
        naive = naive_local_sensitivity(fig3_query, db)
        assert result.local_sensitivity == naive.local_sensitivity
        # Insertions into R2 can still connect R1 to R3⋈R4.
        assert result.local_sensitivity > 0

    def test_everything_empty(self):
        q = parse_query("R(A,B), S(B,C)")
        db = Database(
            {"R": Relation(["A", "B"], ()), "S": Relation(["B", "C"], ())}
        )
        result = ls_path_join(q, db)
        assert result.local_sensitivity == 0
        assert result.witness is None


class TestErrors:
    def test_non_path_query_rejected(self, fig1_query, fig1_db):
        with pytest.raises(QueryStructureError):
            ls_path_join(fig1_query, fig1_db)


class TestSelections:
    def test_selection_respected(self, fig3_query, fig3_db):
        filtered = fig3_query.with_selection("R3", lambda row: row["D"] == "d1")
        path = ls_path_join(filtered, fig3_db)
        naive = naive_local_sensitivity(filtered, fig3_db)
        assert path.local_sensitivity == naive.local_sensitivity


class TestPathState:
    """Maintained two-sweep state: folds == fresh sweeps."""

    @staticmethod
    def _replay(db, stream):
        for relation, row, insert in stream:
            base = db.relation(relation)
            db = db.with_relation(
                relation, base.add(row) if insert else base.remove(row)
            )
        return db

    def test_maintained_matches_fresh(self, fig3_query, fig3_db):
        from repro.core.path import PathState

        state = PathState(fig3_query, fig3_db)
        stream = [
            ("R1", ("a1", "b2"), True),
            ("R3", ("c1", "d9"), True),
            ("R2", ("b2", "c1"), False),
            ("R1", ("a9", "b9"), True),   # joins nothing downstream
            ("R3", ("c2", "d2"), False),
        ]
        db = fig3_db
        for relation, row, insert in stream:
            plus = {row: 1} if insert else {}
            minus = {} if insert else {row: 1}
            state.apply_relation_delta(relation, plus, minus)
            db = self._replay(db, [(relation, row, insert)])
            maintained = ls_path_join(fig3_query, db, state=state)
            fresh = ls_path_join(fig3_query, db)
            assert maintained.local_sensitivity == fresh.local_sensitivity
            for name in fig3_query.relation_names:
                assert (
                    maintained.per_relation[name].sensitivity
                    == fresh.per_relation[name].sensitivity
                )

    def test_whole_delta_relations_fold(self, fig3_query, fig3_db):
        from repro.core.path import PathState

        state = PathState(fig3_query, fig3_db)
        state.apply_relation_delta(
            "R2", {("b1", "c2"): 3, ("b9", "c9"): 1}, {("b2", "c1"): 1}
        )
        db = fig3_db
        rel = db.relation("R2").remove(("b2", "c1"))
        rel = rel.add(("b1", "c2"), 3).add(("b9", "c9"))
        db = db.with_relation("R2", rel)
        maintained = ls_path_join(fig3_query, db, state=state)
        assert maintained.local_sensitivity == (
            ls_path_join(fig3_query, db).local_sensitivity
        )

    def test_endpoint_updates(self):
        """Updates at both path endpoints: position 0 touches only the
        topjoin sweep, the last position only the botjoin sweep."""
        from repro.core.path import PathState

        query = parse_query("R1(A,B), R2(B,C), R3(C,D)")
        db = Database(
            {
                "R1": Relation(["A", "B"], [("a1", "b1"), ("a2", "b1")]),
                "R2": Relation(["B", "C"], [("b1", "c1")]),
                "R3": Relation(["C", "D"], [("c1", "d1")]),
            }
        )
        state = PathState(query, db)
        for relation, row, insert in [
            ("R1", ("a3", "b1"), True),
            ("R3", ("c1", "d2"), True),
            ("R3", ("c1", "d1"), False),
            ("R1", ("a1", "b1"), False),
        ]:
            plus = {row: 1} if insert else {}
            minus = {} if insert else {row: 1}
            state.apply_relation_delta(relation, plus, minus)
            base = db.relation(relation)
            db = db.with_relation(
                relation, base.add(row) if insert else base.remove(row)
            )
            maintained = ls_path_join(query, db, state=state)
            fresh = ls_path_join(query, db)
            assert maintained.local_sensitivity == fresh.local_sensitivity

    def test_non_path_query_rejected(self, fig1_query, fig1_db):
        from repro.core.path import PathState

        with pytest.raises(QueryStructureError):
            PathState(fig1_query, fig1_db)

    def test_selection_filters_fold(self, fig3_query, fig3_db):
        from repro.core.path import PathState
        from repro.query import parse_predicate

        query = fig3_query.with_selection("R2", parse_predicate("B != 'b2'"))
        state = PathState(query, fig3_db)
        # A filtered-out insert must not change any sweep, but the row
        # still lands in the database.
        state.apply_relation_delta("R2", {("b2", "c1"): 5}, {})
        db = fig3_db.with_relation(
            "R2", fig3_db.relation("R2").add(("b2", "c1"), 5)
        )
        maintained = ls_path_join(query, db, state=state)
        fresh = ls_path_join(query, db)
        assert maintained.local_sensitivity == fresh.local_sensitivity
