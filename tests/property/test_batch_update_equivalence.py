"""Batched apply == one-at-a-time == fresh session, under compaction.

:meth:`PreparedQuery.apply` compacts a stream into per-relation signed
delta relations and folds them into every maintained structure in one
vectorized pass per relation.  Three observable contracts pin that down:

* **Stream equivalence** — one ``apply(stream)`` call commits exactly the
  same session state as replaying the stream element-by-element through
  :meth:`insert`/:meth:`delete`, and both match a session prepared fresh
  on the final database.  Compaction (duplicate inserts coalescing,
  insert-then-delete pairs cancelling, absent-row deletes clamping to
  no-ops) is an execution strategy, never a semantic change — in
  particular :attr:`updates_applied` advances by the raw stream length.
* **Shape coverage** — the contract holds for acyclic queries, cyclic
  (GHD) queries, disconnected queries, selection-filtered atoms and
  sharded (``workers=2``) sessions, on both execution backends.
* **Maintained path reads** — ``method="path"`` reads served from the
  maintained two-sweep :class:`~repro.core.path.PathState` equal fresh
  ``ls_path_join`` runs after every batch.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import prepare
from repro.datasets import (
    random_acyclic_query,
    random_database,
    random_path_query,
    random_update_stream,
)
from repro.query import parse_predicate, parse_query

seeds = st.integers(min_value=0, max_value=10_000)

BACKENDS = ("python", "columnar")


def _compacting_stream(query, db, rng, n_updates):
    """A stream dense in compactable patterns, in shuffled order:
    duplicate inserts, insert-then-delete pairs of the same tuple, and
    deletes of rows that may not exist (clamped no-ops)."""
    stream = list(random_update_stream(query, db, rng, n_updates))
    extra = []
    for op, relation, row in stream:
        roll = rng.random()
        if roll < 0.35:
            extra.append(("insert", relation, row))
            extra.append(("delete", relation, row))
        elif roll < 0.55:
            extra.append((op, relation, row))
        elif roll < 0.70:
            extra.append(("delete", relation, row))
    stream.extend(extra)
    return [stream[i] for i in rng.permutation(len(stream))]


def _assert_sessions_match(batched, sequential, fresh, query):
    assert batched.count() == sequential.count() == fresh.count()
    for relation in query.relation_names:
        bag = batched.db.relation(relation)
        assert bag.same_bag(sequential.db.relation(relation))
        assert bag.same_bag(fresh.db.relation(relation))
    b = batched.sensitivity()
    s = sequential.sensitivity()
    f = fresh.sensitivity()
    assert b.local_sensitivity == s.local_sensitivity == f.local_sensitivity
    for relation in query.relation_names:
        assert (
            b.per_relation[relation].sensitivity
            == s.per_relation[relation].sensitivity
            == f.per_relation[relation].sensitivity
        )


def _run_contract(query, db, stream):
    batched = prepare(query, db)
    sequential = prepare(query, db)
    batched.apply(stream)
    assert batched.updates_applied == len(stream)
    for op, relation, row in stream:
        if op == "insert":
            sequential.insert(relation, row)
        else:
            sequential.delete(relation, row)
    fresh = prepare(query, batched.db)
    _assert_sessions_match(batched, sequential, fresh, query)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchedEqualsSequential:
    @given(seeds, st.integers(min_value=1, max_value=15))
    @settings(max_examples=15, deadline=None)
    def test_acyclic(self, backend, seed, n_updates):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=1 + int(rng.integers(0, 3)))
        db = random_database(query, rng, backend=backend)
        _run_contract(query, db, _compacting_stream(query, db, rng, n_updates))

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_cyclic_ghd(self, backend, seed):
        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db = random_database(query, rng, domain_size=3, max_rows=5, backend=backend)
        _run_contract(query, db, _compacting_stream(query, db, rng, 8))

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_disconnected(self, backend, seed):
        rng = np.random.default_rng(seed)
        query = parse_query("Q(A,B) :- R(A), S(B)")
        db = random_database(query, rng, backend=backend)
        _run_contract(query, db, _compacting_stream(query, db, rng, 10))

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_with_selection(self, backend, seed):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        target = query.relation_names[int(rng.integers(0, 3))]
        first_var = query.atom(target).variables[0]
        filtered = query.with_selection(
            target, parse_predicate(f"{first_var} != {int(rng.integers(0, 3))}")
        )
        db = random_database(query, rng, backend=backend)
        _run_contract(
            filtered, db, _compacting_stream(filtered, db, rng, 10)
        )

    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_maintained_path_reads(self, backend, seed, length):
        rng = np.random.default_rng(seed)
        query = random_path_query(rng, length=length)
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        # First read builds the PathState; later reads fold deltas.
        before = session.sensitivity(method="path")
        assert before.local_sensitivity >= 0
        for _ in range(3):
            stream = _compacting_stream(query, session.db, rng, 5)
            session.apply(stream)
            maintained = session.sensitivity(method="path")
            fresh = prepare(query, session.db).sensitivity(method="path")
            assert maintained.local_sensitivity == fresh.local_sensitivity
            for relation in query.relation_names:
                assert (
                    maintained.per_relation[relation].sensitivity
                    == fresh.per_relation[relation].sensitivity
                )


class TestBatchedSharded:
    @given(seeds)
    @settings(max_examples=4, deadline=None)
    def test_workers_two_matches_serial(self, seed):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        db = random_database(query, rng, backend="columnar")
        stream = _compacting_stream(query, db, rng, 10)
        with prepare(query, db, workers=2) as sharded:
            sharded.apply(stream)
            serial = prepare(query, db)
            serial.apply(stream)
            assert sharded.count() == serial.count()
            assert (
                sharded.sensitivity().local_sensitivity
                == serial.sensitivity().local_sensitivity
            )


class TestBatchAtomicity:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_failed_batch_changes_nothing(self, seed):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=2)
        db = random_database(query, rng)
        session = prepare(query, db)
        before_count = session.count()
        before_ls = session.sensitivity().local_sensitivity
        stream = list(random_update_stream(query, db, rng, 5))
        stream.append(("upsert", query.relation_names[0], stream[0][2]))
        from repro.exceptions import SessionError

        with pytest.raises(SessionError):
            session.apply(stream)
        assert session.updates_applied == 0
        assert session.count() == before_count
        assert session.sensitivity().local_sensitivity == before_ls
        for relation in query.relation_names:
            assert session.db.relation(relation).same_bag(db.relation(relation))
