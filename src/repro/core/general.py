"""TSens for general queries: disconnected hypergraphs and cyclic queries.

Two Sec. 5.4 extensions on top of :func:`repro.core.acyclic.tsens_connected`:

* **Disconnected join trees** — the join of attribute-disjoint components is
  a cross product, so a tuple's sensitivity within one component multiplies
  by the output counts of all the others.  We run Algorithm 2 per component
  and scale each component's multiplicity tables by the product of the
  other components' counts.
* **General (cyclic) joins** — when no join tree exists, a generalized
  hypertree decomposition groups atoms into nodes (Fig. 5's hypertrees for
  q3, q△, q◦); :func:`repro.query.ghd.auto_decompose` finds one
  automatically when none is supplied.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.engine.database import Database
from repro.evaluation.yannakakis import count_bound, bind
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.ghd import auto_decompose
from repro.query.jointree import DecompositionTree
from repro.core.acyclic import tsens_connected
from repro.core.result import SensitiveTuple, SensitivityResult


def tsens(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[DecompositionTree] = None,
    skip_relations: Iterable[str] = (),
    component_trees: Optional[Mapping[str, DecompositionTree]] = None,
    max_width: int = 3,
) -> SensitivityResult:
    """TSens for any full CQ without self-joins.

    Parameters
    ----------
    query, db:
        The query and instance.
    tree:
        Decomposition for a *connected* query.  Ignored when the query is
        disconnected (use ``component_trees`` instead).
    skip_relations:
        Relations certified to have tuple sensitivity ≤ 1 (superkey
        argument); their tables are not computed.
    component_trees:
        For disconnected queries: optional mapping from a component's first
        relation name to the decomposition to use for that component.
    max_width:
        Node-size cap handed to the automatic GHD search for cyclic
        components without an explicit decomposition.
    """
    query.validate_against(db)
    components = query.connected_components()
    if len(components) == 1:
        if tree is None:
            tree = auto_decompose(query, max_width=max_width)
        return tsens_connected(query, db, tree=tree, skip_relations=skip_relations)

    skip = set(skip_relations)
    sub_results = []
    sub_counts = []
    for index, component in enumerate(components):
        sub = query.subquery(component, name=f"{query.name}#c{index}")
        key = component[0].relation
        sub_tree = None
        if component_trees and key in component_trees:
            sub_tree = component_trees[key]
        if sub_tree is None:
            sub_tree = auto_decompose(sub, max_width=max_width)
        sub_skip = skip & set(sub.relation_names)
        sub_results.append(tsens_connected(sub, db, tree=sub_tree, skip_relations=sub_skip))
        sub_counts.append(count_bound(bind(sub, sub_tree, db)))

    # Combine: sensitivities in component i scale by ∏_{j≠i} |Q_j(D)|.
    total_product = 1
    for count in sub_counts:
        total_product *= count
    per_relation: Dict[str, SensitiveTuple] = {}
    tables = {}
    for index, result in enumerate(sub_results):
        own = sub_counts[index]
        multiplier = 1
        for j, count in enumerate(sub_counts):
            if j != index:
                multiplier *= count
        for relation, table in result.tables.items():
            tables[relation] = table.scaled(multiplier)
        for relation, witness in result.per_relation.items():
            per_relation[relation] = SensitiveTuple(
                relation, witness.assignment, witness.sensitivity * multiplier
            )

    local = max((w.sensitivity for w in per_relation.values()), default=0)
    witness: Optional[SensitiveTuple] = None
    if local > 0:
        candidates = [w for w in per_relation.values() if w.sensitivity == local]
        with_assignment = [w for w in candidates if w.assignment]
        witness = (with_assignment or candidates)[0]
    return SensitivityResult(
        query_name=query.name,
        method="tsens",
        local_sensitivity=local,
        witness=witness,
        per_relation=per_relation,
        tables=tables,
    )
