"""Unit tests for :mod:`repro.evaluation.yannakakis`."""

import pytest

from repro.engine import Database, Relation
from repro.evaluation import (
    bind,
    compute_botjoins,
    count_bound,
    count_query,
    evaluate_bound,
    evaluate_query,
    naive_join,
    semijoin_reduce,
)
from repro.query import auto_decompose, gyo_join_tree, parse_query


class TestBinding:
    def test_bind_materialises_nodes(self, fig1_query, fig1_db):
        tree = gyo_join_tree(fig1_query)
        bound = bind(fig1_query, tree, fig1_db)
        for node_id in tree.node_ids:
            assert not bound.relation(node_id).is_empty()

    def test_bind_ghd_node_joins_atoms(self, triangle_query, triangle_db):
        tree = auto_decompose(triangle_query)
        bound = bind(triangle_query, tree, triangle_db)
        wide = [nid for nid in tree.node_ids if len(tree.node(nid).relations) == 2]
        assert wide
        node = bound.relation(wide[0])
        assert set(node.attributes) == {"A", "B", "C"}

    def test_atom_relations_available(self, fig1_query, fig1_db):
        tree = gyo_join_tree(fig1_query)
        bound = bind(fig1_query, tree, fig1_db)
        assert bound.atom_relation("R3").attributes == ("A", "E")


class TestCounting:
    def test_fig1_count_is_one(self, fig1_query, fig1_db):
        assert count_query(fig1_query, fig1_db) == 1

    def test_count_matches_naive_join(self, fig3_query, fig3_db):
        expected = naive_join(fig3_query, fig3_db).total_count()
        assert count_query(fig3_query, fig3_db) == expected

    def test_count_bound_equals_top_level(self, fig1_query, fig1_db):
        tree = gyo_join_tree(fig1_query)
        assert count_bound(bind(fig1_query, tree, fig1_db)) == 1

    def test_botjoin_root_holds_total(self, fig3_query, fig3_db):
        tree = gyo_join_tree(fig3_query)
        bound = bind(fig3_query, tree, fig3_db)
        botjoins = compute_botjoins(bound)
        assert botjoins[tree.root].total_count() == count_query(
            fig3_query, fig3_db
        )

    def test_cyclic_count_via_ghd(self, triangle_query, triangle_db):
        expected = naive_join(triangle_query, triangle_db).total_count()
        assert count_query(triangle_query, triangle_db) == expected

    def test_empty_relation_gives_zero(self, fig1_query, fig1_db):
        empty = fig1_db.with_relation("R3", Relation(["A", "E"], ()))
        assert count_query(fig1_query, empty) == 0

    def test_disconnected_count_multiplies(self):
        q = parse_query("R(A), S(B)")
        db = Database(
            {"R": Relation(["A"], [(1,), (2,)]), "S": Relation(["B"], [(5,)] * 3)}
        )
        assert count_query(q, db) == 6


class TestEvaluation:
    def test_fig1_output(self, fig1_query, fig1_db):
        out = evaluate_query(fig1_query, fig1_db)
        assert out.total_count() == 1
        (row, cnt), = out.items()
        assert cnt == 1
        assignment = dict(zip(out.attributes, row))
        assert assignment == {
            "A": "a1", "B": "b1", "C": "c1", "D": "d1", "E": "e1", "F": "f1"
        }

    def test_matches_naive_join_as_bag(self, fig3_query, fig3_db):
        fast = evaluate_query(fig3_query, fig3_db)
        slow = naive_join(fig3_query, fig3_db)
        assert fast.same_bag(slow)

    def test_cyclic_matches_naive(self, triangle_query, triangle_db):
        fast = evaluate_query(triangle_query, triangle_db)
        slow = naive_join(triangle_query, triangle_db)
        assert fast.same_bag(slow)

    def test_semijoin_reduce_preserves_result(self, fig3_query, fig3_db):
        tree = gyo_join_tree(fig3_query)
        bound = bind(fig3_query, tree, fig3_db)
        reduced = semijoin_reduce(bound)
        # Reduction never increases a relation.
        for node_id in tree.node_ids:
            assert (
                reduced[node_id].total_count()
                <= bound.relation(node_id).total_count()
            )
        assert evaluate_bound(bound).same_bag(naive_join(fig3_query, fig3_db))

    def test_disconnected_evaluation_cross_product(self):
        q = parse_query("R(A), S(B)")
        db = Database(
            {"R": Relation(["A"], [(1,)]), "S": Relation(["B"], [(5,), (6,)])}
        )
        out = evaluate_query(q, db)
        assert out.total_count() == 2
        assert set(out.attributes) == {"A", "B"}


class TestSelections:
    def test_selection_filters_before_join(self, fig3_query, fig3_db):
        filtered = fig3_query.with_selection("R2", lambda row: row["C"] == "c1")
        full = count_query(fig3_query, fig3_db)
        partial = count_query(filtered, fig3_db)
        assert 0 < partial < full
