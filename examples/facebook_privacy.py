#!/usr/bin/env python
"""Differentially private graph-pattern counting on an ego-network.

Reproduces the paper's Facebook scenario end to end: build the circle edge
tables, then answer the triangle / path / cycle / star counting queries
under ε-differential privacy with TSensDP, comparing against the
PrivSQL-style baseline.  R2 is the primary private relation, as in
Sec. 7.3.

Run with::

    python examples/facebook_privacy.py [epsilon]
"""

import sys

import numpy as np

from repro.datasets import generate_ego_network, graph_statistics
from repro.dp import run_privsql, run_tsens_dp
from repro.dp.truncation import TruncationOracle
from repro.experiments.table2 import loose_bound
from repro.workloads import facebook_workloads


def main() -> None:
    epsilon = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    db = generate_ego_network(seed=0)
    print(f"ego-network tables: {graph_statistics(db)}")
    print(f"privacy budget ε = {epsilon} (half for threshold learning)\n")
    rng = np.random.default_rng(2026)

    for workload in facebook_workloads():
        assert workload.primary is not None
        # One sensitivity pass per query; each mechanism run reuses it.
        oracle = TruncationOracle(
            workload.query, db, workload.primary, tree=workload.tree
        )
        ell = loose_bound(oracle.max_primary_sensitivity, floor=workload.ell)
        tsens_out = run_tsens_dp(
            workload.query,
            db,
            primary=workload.primary,
            epsilon=epsilon,
            ell=ell,
            tree=workload.tree,
            oracle=oracle,
            rng=rng,
        )
        privsql_out = run_privsql(
            workload.query,
            db,
            primary=workload.primary,
            epsilon=epsilon,
            tree=workload.tree,
            rng=rng,
        )
        print(f"=== {workload.name}: {workload.description}")
        print(f"  true count          : {tsens_out.true_count:,}")
        print(f"  local sensitivity   : {oracle.local_sensitivity:,}")
        print(
            f"  TSensDP             : answer={tsens_out.answer:,.0f}"
            f"  τ={tsens_out.tau}  GS={tsens_out.global_sensitivity}"
            f"  rel.err={tsens_out.relative_error:.2%}"
        )
        print(
            f"  PrivSQL             : answer={privsql_out.answer:,.0f}"
            f"  GS={privsql_out.global_sensitivity:,}"
            f"  rel.err={privsql_out.relative_error:.2%}"
        )
        print()


if __name__ == "__main__":
    main()
