"""Unit tests for the random query/database generators."""

import numpy as np

from repro.datasets import random_acyclic_query, random_database, random_path_query
from repro.query import is_acyclic, is_path_query


class TestRandomAcyclicQuery:
    def test_always_acyclic_and_connected(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            query = random_acyclic_query(rng, num_atoms=int(rng.integers(1, 6)))
            assert query.is_connected()
            assert is_acyclic(query)

    def test_atom_count(self):
        rng = np.random.default_rng(2)
        assert len(random_acyclic_query(rng, num_atoms=4).atoms) == 4


class TestRandomPathQuery:
    def test_always_path(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            query = random_path_query(rng, length=int(rng.integers(1, 6)))
            assert is_path_query(query)


class TestRandomDatabase:
    def test_valid_for_query(self):
        rng = np.random.default_rng(4)
        query = random_acyclic_query(rng, num_atoms=3)
        db = random_database(query, rng)
        query.validate_against(db)

    def test_row_cap_respected(self):
        rng = np.random.default_rng(5)
        query = random_path_query(rng, length=3)
        db = random_database(query, rng, max_rows=4)
        for name in db.relation_names:
            assert db.relation(name).total_count() <= 4

    def test_allow_empty_false_gives_rows(self):
        rng = np.random.default_rng(6)
        query = random_path_query(rng, length=3)
        db = random_database(query, rng, allow_empty=False)
        for name in db.relation_names:
            assert db.relation(name).total_count() >= 1
