"""Unit tests for the experiment runner plumbing."""

import pytest

from repro.experiments.runner import (
    facebook_database,
    measure_workload,
    timed,
    tpch_database,
)
from repro.workloads import q1_workload, triangle_workload


class TestCaching:
    def test_tpch_database_memoised(self):
        assert tpch_database(0.0001, 3) is tpch_database(0.0001, 3)

    def test_different_scales_differ(self):
        a = tpch_database(0.0001, 3)
        b = tpch_database(0.0002, 3)
        assert a.total_tuples() < b.total_tuples()


class TestTimed:
    def test_returns_value_and_duration(self):
        value, seconds = timed(lambda: 41 + 1)
        assert value == 42
        assert seconds >= 0


class TestMeasureWorkload:
    def test_tpch_measurement(self):
        measurement = measure_workload(q1_workload(), tpch_database(0.0001, 3))
        assert measurement.workload == "q1"
        assert measurement.tsens_ls <= measurement.elastic_ls
        assert measurement.count >= 0
        assert measurement.tsens_seconds > 0
        assert measurement.result.method in ("path", "tsens")

    def test_facebook_measurement(self, tiny_facebook):
        measurement = measure_workload(triangle_workload(), tiny_facebook)
        assert measurement.workload == "q4"
        assert measurement.tsens_ls <= measurement.elastic_ls
