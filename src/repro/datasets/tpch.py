"""Synthetic TPC-H data generator (Sec. 7.1 "TPC-H").

Substitution note (DESIGN.md): the paper generates data with ``dbgen``; we
generate in-process with the same cardinality ratios at every scale factor:

=========  =====================  ==========================
relation   columns                rows at scale ``s``
=========  =====================  ==========================
Region     (RK)                   5
Nation     (RK, NK)               25
Supplier   (NK, SK)               10 000 · s
Customer   (NK, CK)               150 000 · s
Part       (PK)                   200 000 · s
Partsupp   (SK, PK)               4 per part = 800 000 · s
Orders     (CK, OK)               1 500 000 · s
Lineitem   (OK, SK, PK)           1–7 per order (avg 4) ≈ 6 000 000 · s
=========  =====================  ==========================

Foreign keys mirror dbgen's: each nation belongs to a region, customers and
suppliers to nations, orders to customers, partsupp pairs each part with
four suppliers, and every lineitem references an existing order and an
existing partsupp pair.  Join-key fan-outs are uniform, matching dbgen's
uniform key draws — the statistic the sensitivity experiments depend on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.database import Database, ForeignKey
from repro.engine.relation import Relation
from repro.exceptions import MechanismConfigError

#: Base cardinalities at scale factor 1 (Region/Nation are scale-free).
BASE_CARDINALITIES = {
    "Supplier": 10_000,
    "Customer": 150_000,
    "Part": 200_000,
    "Orders": 1_500_000,
}
SUPPLIERS_PER_PART = 4
MAX_LINES_PER_ORDER = 7
NUM_REGIONS = 5
NUM_NATIONS = 25


def _scaled(base: int, scale: float) -> int:
    return max(1, int(round(base * scale)))


def generate_tpch(
    scale: float, seed: int = 0, backend: str = "python"
) -> Database:
    """Generate a TPC-H-shaped database at the given scale factor.

    Parameters
    ----------
    scale:
        Scale factor; the paper sweeps {1e-4, 1e-3, 1e-2, 1e-1, 1, 2, 10}.
        The python backend is comfortable up to ~1e-2 on a laptop; the
        columnar backend pushes roughly an order of magnitude further.
    seed:
        PRNG seed; identical seeds give identical databases.
    backend:
        Execution backend the relations are materialised on
        (``"python"`` or ``"columnar"``); identical logical contents.

    Returns a :class:`~repro.engine.database.Database` with primary and
    foreign keys declared (used by the PrivSQL baseline's policy).
    """
    if scale <= 0:
        raise MechanismConfigError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(seed)

    region_rows = [(rk,) for rk in range(NUM_REGIONS)]
    nation_rows = [(nk % NUM_REGIONS, nk) for nk in range(NUM_NATIONS)]

    n_supplier = _scaled(BASE_CARDINALITIES["Supplier"], scale)
    supplier_nk = rng.integers(0, NUM_NATIONS, size=n_supplier)
    supplier_rows = [(int(nk), sk) for sk, nk in enumerate(supplier_nk)]

    n_customer = _scaled(BASE_CARDINALITIES["Customer"], scale)
    customer_nk = rng.integers(0, NUM_NATIONS, size=n_customer)
    customer_rows = [(int(nk), ck) for ck, nk in enumerate(customer_nk)]

    n_part = _scaled(BASE_CARDINALITIES["Part"], scale)
    part_rows = [(pk,) for pk in range(n_part)]

    # Each part is supplied by SUPPLIERS_PER_PART distinct suppliers.
    partsupp_rows: List[Tuple[int, int]] = []
    part_suppliers: List[np.ndarray] = []
    for pk in range(n_part):
        count = min(SUPPLIERS_PER_PART, n_supplier)
        suppliers = rng.choice(n_supplier, size=count, replace=False)
        part_suppliers.append(suppliers)
        partsupp_rows.extend((int(sk), pk) for sk in suppliers)

    n_orders = _scaled(BASE_CARDINALITIES["Orders"], scale)
    orders_ck = rng.integers(0, n_customer, size=n_orders)
    orders_rows = [(int(ck), ok) for ok, ck in enumerate(orders_ck)]

    lineitem_rows: List[Tuple[int, int, int]] = []
    lines_per_order = rng.integers(1, MAX_LINES_PER_ORDER + 1, size=n_orders)
    for ok in range(n_orders):
        for _ in range(int(lines_per_order[ok])):
            pk = int(rng.integers(0, n_part))
            sk = int(rng.choice(part_suppliers[pk]))
            lineitem_rows.append((ok, sk, pk))

    relations = {
        "Region": Relation(["RK"], region_rows),
        "Nation": Relation(["RK", "NK"], nation_rows),
        "Supplier": Relation(["NK", "SK"], supplier_rows),
        "Customer": Relation(["NK", "CK"], customer_rows),
        "Part": Relation(["PK"], part_rows),
        "Partsupp": Relation(["SK", "PK"], partsupp_rows),
        "Orders": Relation(["CK", "OK"], orders_rows),
        "Lineitem": Relation(["OK", "SK", "PK"], lineitem_rows),
    }
    primary_keys = {
        "Region": ("RK",),
        "Nation": ("NK",),
        "Supplier": ("SK",),
        "Customer": ("CK",),
        "Part": ("PK",),
        "Partsupp": ("SK", "PK"),
        "Orders": ("OK",),
    }
    foreign_keys = [
        ForeignKey("Nation", ("RK",), "Region", ("RK",)),
        ForeignKey("Supplier", ("NK",), "Nation", ("NK",)),
        ForeignKey("Customer", ("NK",), "Nation", ("NK",)),
        ForeignKey("Orders", ("CK",), "Customer", ("CK",)),
        ForeignKey("Partsupp", ("SK",), "Supplier", ("SK",)),
        ForeignKey("Partsupp", ("PK",), "Part", ("PK",)),
        ForeignKey("Lineitem", ("OK",), "Orders", ("OK",)),
        ForeignKey("Lineitem", ("SK", "PK"), "Partsupp", ("SK", "PK")),
    ]
    return Database(
        relations,
        primary_keys=primary_keys,
        foreign_keys=foreign_keys,
        backend=backend,
    )


def table_sizes(db: Database) -> Dict[str, int]:
    """Bag cardinality per relation — handy in reports and tests."""
    return {name: db.relation(name).total_count() for name in db.relation_names}
