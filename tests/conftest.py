"""Shared fixtures: the paper's running examples and small datasets."""

from __future__ import annotations

import pytest

from repro.engine import Database, Relation
from repro.query import parse_query


@pytest.fixture
def fig1_query():
    """The acyclic query of the paper's Figure 1."""
    return parse_query("Q(A,B,C,D,E,F) :- R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)")


@pytest.fixture
def fig1_db():
    """The database instance of the paper's Figure 1 (join output: 1 row;
    local sensitivity 4 with witness (a2, b2, c1) in R1)."""
    return Database(
        {
            "R1": Relation(
                ["A", "B", "C"],
                [("a1", "b1", "c1"), ("a1", "b2", "c1"), ("a2", "b1", "c1")],
            ),
            "R2": Relation(
                ["A", "B", "D"], [("a1", "b1", "d1"), ("a2", "b2", "d2")]
            ),
            "R3": Relation(["A", "E"], [("a1", "e1"), ("a2", "e1"), ("a2", "e2")]),
            "R4": Relation(["B", "F"], [("b1", "f1"), ("b2", "f1"), ("b2", "f2")]),
        }
    )


@pytest.fixture
def fig3_query():
    """The path query of the paper's Figure 3."""
    return parse_query(
        "Qp(A,B,C,D,E) :- R1(A,B), R2(B,C), R3(C,D), R4(D,E)"
    )


@pytest.fixture
def fig3_db():
    """The database of Figure 3 (with R1 containing a duplicate row, as in
    the paper's bag-semantics illustration)."""
    return Database(
        {
            "R1": Relation(
                ["A", "B"],
                [("a1", "b1"), ("a1", "b2"), ("a2", "b2"), ("a2", "b2")],
            ),
            "R2": Relation(
                ["B", "C"],
                [("b1", "c1"), ("b1", "c2"), ("b2", "c1"), ("b2", "c1")],
            ),
            "R3": Relation(
                ["C", "D"],
                [("c1", "d1"), ("c1", "d1"), ("c2", "d1"), ("c2", "d2")],
            ),
            "R4": Relation(
                ["D", "E"],
                [("d1", "e1"), ("d1", "e2"), ("d1", "e3"), ("d2", "e4")],
            ),
        }
    )


@pytest.fixture
def triangle_query():
    """A triangle (cyclic) query."""
    return parse_query("Qt(A,B,C) :- R1(A,B), R2(B,C), R3(C,A)")


@pytest.fixture
def triangle_db():
    """A small triangle instance with one heavy vertex pair."""
    return Database(
        {
            "R1": Relation(["A", "B"], [(0, 1), (0, 2), (3, 1), (0, 1)]),
            "R2": Relation(["B", "C"], [(1, 5), (2, 5), (1, 6)]),
            "R3": Relation(["C", "A"], [(5, 0), (6, 0), (5, 3)]),
        }
    )


@pytest.fixture(scope="session")
def tiny_tpch():
    """A memoised tiny TPC-H instance for integration tests."""
    from repro.datasets import generate_tpch

    return generate_tpch(0.0002, seed=11)


@pytest.fixture(scope="session")
def tiny_facebook():
    """A memoised small ego-network for integration tests."""
    from repro.datasets import generate_ego_network

    return generate_ego_network(
        nodes=60, directed_edges=600, num_circles=80, seed=11
    )
