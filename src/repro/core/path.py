"""LSPathJoin — Algorithm 1, local sensitivity of path join queries.

For a path query ``R1(A0,A1), R2(A1,A2), ..., Rm(Am-1,Am)`` the sensitivity
of a tuple ``(a, b)`` in ``Ri`` factors into (number of incoming join paths
ending at ``a``) × (number of outgoing join paths starting at ``b``) —
Example 4.1.  Algorithm 1 computes, in two linear sweeps:

* topjoins ``J(Ri) = γ_{Ai-1}(r̃join(R1..Ri-1))`` iteratively left-to-right,
* botjoins ``K(Ri) = γ_{Ai-1}(r̃join(Ri..Rm))`` iteratively right-to-left,

then reads off, per relation, the max-count entries of ``J(Ri)`` and
``K(Ri+1)`` whose product is the most sensitive tuple's sensitivity.  Total
time is ``O(n log n)`` irrespective of the join output size (Theorem 4.1).

The implementation generalises the paper's two-attribute form slightly:

* adjacent relations may share several attributes (the paper's "replace
  multiple attributes by a combination" remark, handled natively);
* end relations may be unary (TPC-H ``Region(RK)``) or have exclusive
  attributes anywhere, which take extrapolated values in the witness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.database import Database
from repro.engine.operators import group_by, join
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.query.classify import path_order
from repro.query.conjunctive import ConjunctiveQuery
from repro.core.acyclic import best_witness, extrapolate_assignment
from repro.core.result import MultiplicityTable, SensitiveTuple, SensitivityResult
from repro.exceptions import InternalError, QueryStructureError

_UNIT = Relation(Schema(()), {(): 1})  # zero-arity bag with count 1


def _shared(query: ConjunctiveQuery, left: str, right: str) -> Tuple[str, ...]:
    """Attributes shared by two atoms, in the left atom's variable order."""
    left_vars = query.atom(left).variables
    right_vars = query.atom(right).variable_set
    return tuple(v for v in left_vars if v in right_vars)


def ls_path_join(
    query: ConjunctiveQuery, db: Database
) -> SensitivityResult:
    """Run Algorithm 1 on a path join query.

    Raises :class:`~repro.exceptions.QueryStructureError` when the query is
    not a path query (use :func:`repro.core.api.local_sensitivity`, which
    dispatches automatically).
    """
    order = path_order(query)
    if order is None:
        raise QueryStructureError(f"query {query.name} is not a path join query")
    m = len(order)
    relations = [query.bound_relation(db, name) for name in order]

    if m == 1:
        # Single relation: LS = 1 and any representative tuple witnesses it
        # (the paper's trivial case in Sec. 2.1).
        assignment = extrapolate_assignment(query, db, order[0], {})
        witness = SensitiveTuple(order[0], assignment, 1)
        table = MultiplicityTable(order[0], (_UNIT,))
        return SensitivityResult(
            query_name=query.name,
            method="path",
            local_sensitivity=1,
            witness=witness,
            per_relation={order[0]: witness},
            tables={order[0]: table},
        )

    # Left/right boundary attributes per position.
    left_attrs: List[Tuple[str, ...]] = [()]
    for i in range(1, m):
        left_attrs.append(_shared(query, order[i], order[i - 1]))
    right_attrs: List[Tuple[str, ...]] = []
    for i in range(m - 1):
        right_attrs.append(_shared(query, order[i], order[i + 1]))
    right_attrs.append(())

    # I) topjoins: J[i] groups the join of R1..R_{i-1} on left_attrs[i].
    # J[0] is the unit relation (no incoming paths to the first relation).
    topjoins: List[Relation] = [_UNIT]
    topjoins.append(group_by(relations[0], right_attrs[0]))
    for i in range(2, m):
        expanded = join(topjoins[i - 1], relations[i - 1])
        topjoins.append(group_by(expanded, left_attrs[i]))

    # II) botjoins: K[i] groups the join of R_i..R_m on left_attrs[i].
    # K[m] is the unit relation (no outgoing paths from the last relation).
    botjoins: List[Optional[Relation]] = [None] * (m + 1)
    botjoins[m] = _UNIT
    botjoins[m - 1] = group_by(relations[m - 1], left_attrs[m - 1])
    for i in range(m - 2, 0, -1):
        expanded = join(relations[i], botjoins[i + 1])
        botjoins[i] = group_by(expanded, left_attrs[i])

    # III) per-relation most sensitive tuple: argmax(J[i]) × argmax(K[i+1]).
    tables: Dict[str, MultiplicityTable] = {}
    per_relation: Dict[str, SensitiveTuple] = {}
    for i, name in enumerate(order):
        incoming = topjoins[i]
        outgoing = botjoins[i + 1]
        if outgoing is None:
            raise InternalError(f"missing botjoin for path position {i + 1}")
        table = MultiplicityTable(name, (incoming, outgoing))
        tables[name] = table
        per_relation[name] = best_witness(table, query, db, name)

    local = max(w.sensitivity for w in per_relation.values())
    witness: Optional[SensitiveTuple] = None
    if local > 0:
        witness = next(
            w for w in per_relation.values() if w.sensitivity == local
        )
    return SensitivityResult(
        query_name=query.name,
        method="path",
        local_sensitivity=local,
        witness=witness,
        per_relation=per_relation,
        tables=tables,
    )
