"""TSensDP — the truncation-based DP mechanism of Sec. 6.2 / Theorem 6.1.

Given a query ``Q``, a database ``D`` with primary private relation ``PR``,
a total budget ``ε`` and a public upper bound ``ℓ`` on tuple sensitivity:

1. spend ``ε_tsens = ε/2`` on learning a truncation threshold:

   a. release ``Q̂ = Q(T(D, ℓ)) + Lap(ℓ / (ε_tsens/2))`` — a rough estimate
      of the (nearly untruncated) count;
   b. run SVT with budget ``ε_tsens/2`` over the rescaled queries
      ``q_i = (Q(T(D, i)) − Q̂) / i`` for ``i = 1..ℓ−1`` against threshold
      0.  Each ``q_i`` has global sensitivity 1 because ``Q(T(·, i))`` has
      global sensitivity ``i``.  The first ``i`` whose noisy ``q_i``
      clears the noisy threshold becomes ``τ`` (default ``ℓ``);

2. spend the remaining ``ε − ε_tsens`` answering:
   ``Q(T(D, τ)) + Lap(τ / (ε − ε_tsens))``.

The combination is ε-DP by sequential composition (Theorem 6.1).  The
returned :class:`TSensDPOutcome` carries non-private diagnostics (bias,
error) for experiment reporting only — they are never released by the
mechanism itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.core.result import SensitivityResult
from repro.dp.accountant import BudgetAccountant
from repro.dp.marking import declassified
from repro.dp.primitives import above_threshold, laplace_mechanism
from repro.dp.truncation import TruncationOracle
from repro.exceptions import MechanismConfigError


@dataclass
class TSensDPOutcome:
    """One run of the TSensDP mechanism.

    ``answer`` is the DP release.  Everything else is diagnostic: the
    learned threshold ``tau`` (equals the global sensitivity of the final
    Laplace step), the non-private true and truncated counts, and the
    derived bias/error statistics the paper's Table 2 reports.
    """

    answer: float
    tau: int
    global_sensitivity: int
    noisy_estimate: float
    true_count: int
    truncated_count: int
    epsilon: float
    epsilon_threshold: float
    ledger: Dict[str, float]

    @property
    def bias(self) -> int:
        """Truncation bias ``|Q(D) − Q(T(D, τ))|`` (non-private)."""
        return abs(self.true_count - self.truncated_count)

    @property
    def relative_bias(self) -> float:
        """Bias relative to the true count (0 when the count is 0)."""
        if self.true_count == 0:
            return 0.0
        return self.bias / self.true_count

    @property
    def error(self) -> float:
        """Absolute error ``|answer − Q(D)|`` (non-private)."""
        return abs(self.answer - self.true_count)

    @property
    def relative_error(self) -> float:
        """Error relative to the true count (0 when the count is 0)."""
        if self.true_count == 0:
            return 0.0
        return self.error / self.true_count


def run_tsens_dp(
    query: ConjunctiveQuery,
    db: Database,
    primary: str,
    epsilon: float,
    ell: int,
    tree: Optional[DecompositionTree] = None,
    skip_relations: Tuple[str, ...] = (),
    sensitivity_result: Optional[SensitivityResult] = None,
    oracle: Optional[TruncationOracle] = None,
    rng: Optional[np.random.Generator] = None,
    clamp_nonnegative: bool = True,
) -> TSensDPOutcome:
    """Run TSensDP once and return the release plus diagnostics.

    Parameters
    ----------
    query, db, primary:
        The counting query, instance, and primary private relation.
    epsilon:
        Total privacy budget (split in halves as in the paper's Sec. 7.3).
    ell:
        Public upper bound on tuple sensitivity.  DP holds for any value;
        accuracy degrades when it is far from the true local sensitivity
        (the paper's parameter analysis, reproduced in experiment E6).
    tree, skip_relations, sensitivity_result, oracle:
        Reuse hooks: pass a precomputed TSens result or a whole
        :class:`~repro.dp.truncation.TruncationOracle` when running the
        mechanism repeatedly on the same instance.
    rng:
        Source of randomness (defaults to a fresh nondeterministic one).
    clamp_nonnegative:
        Clamp the released count at 0 (postprocessing, free of charge), as
        the paper does in Table 2.
    """
    if ell < 1:
        raise MechanismConfigError(f"ell must be >= 1, got {ell}")
    if rng is None:
        rng = np.random.default_rng()
    accountant = BudgetAccountant(epsilon)
    epsilon_threshold = epsilon / 2.0
    epsilon_estimate = epsilon_threshold / 2.0
    epsilon_svt = epsilon_threshold - epsilon_estimate
    epsilon_answer = epsilon - epsilon_threshold

    if oracle is None:
        oracle = TruncationOracle(
            query,
            db,
            primary,
            tree=tree,
            result=sensitivity_result,
            skip_relations=skip_relations,
        )

    # Step 1a: rough estimate at the loosest truncation.
    accountant.spend(epsilon_estimate, "estimate")
    noisy_estimate = laplace_mechanism(
        oracle.truncated_count(ell), ell, epsilon_estimate, rng
    )

    # Step 1b: SVT over the rescaled threshold queries.
    accountant.spend(epsilon_svt, "svt")

    def threshold_queries() -> Iterator[float]:
        for i in range(1, ell):
            yield (oracle.truncated_count(i) - noisy_estimate) / i

    found = above_threshold(
        threshold_queries(), threshold=0.0, epsilon=epsilon_svt, rng=rng
    )
    tau = (found + 1) if found is not None else ell

    # Step 2: answer at the learned threshold.
    accountant.spend(epsilon_answer, "answer")
    truncated = oracle.truncated_count(tau)
    answer = laplace_mechanism(truncated, tau, epsilon_answer, rng)
    if clamp_nonnegative and answer < 0:
        answer = 0.0

    true_count = declassified(oracle.base_count, reason="debug field for experiments")
    return TSensDPOutcome(
        answer=answer,
        tau=tau,
        global_sensitivity=tau,
        noisy_estimate=noisy_estimate,
        true_count=true_count,
        truncated_count=declassified(truncated, reason="debug field for experiments"),
        epsilon=epsilon,
        epsilon_threshold=epsilon_threshold,
        ledger=accountant.ledger(),
    )
