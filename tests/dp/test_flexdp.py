"""Unit tests for the FlexDP (smooth elastic sensitivity) mechanism."""

import numpy as np
import pytest

from repro.baselines import elastic_sensitivity, elastic_sensitivity_at_distance
from repro.dp import run_flex_dp, smooth_elastic_sensitivity
from repro.engine import Database, Relation
from repro.query import parse_query
from repro.exceptions import MechanismConfigError, UnknownRelationError


@pytest.fixture
def query():
    return parse_query("R(A,B), S(B,C)")


@pytest.fixture
def db():
    return Database(
        {
            "R": Relation(["A", "B"], [(1, 2), (3, 2), (4, 5)]),
            "S": Relation(["B", "C"], [(2, 9), (2, 8), (5, 7)]),
        }
    )


class TestDistanceElastic:
    def test_distance_zero_matches_protected_bound(self, query, db):
        assert elastic_sensitivity_at_distance(
            query, db, protected="R", distance=0
        ) == elastic_sensitivity(query, db, protected="R")

    def test_monotone_in_distance(self, query, db):
        values = [
            elastic_sensitivity_at_distance(query, db, protected="R", distance=k)
            for k in range(5)
        ]
        assert values == sorted(values)

    def test_flat_without_self_joins(self, query, db):
        # Single protected relation + no self-joins: the series is constant
        # (see the flexdp module docstring).
        values = {
            elastic_sensitivity_at_distance(query, db, protected="S", distance=k)
            for k in (0, 3, 10)
        }
        assert len(values) == 1

    def test_negative_distance_rejected(self, query, db):
        with pytest.raises(MechanismConfigError):
            elastic_sensitivity_at_distance(query, db, protected="R", distance=-1)

    def test_unknown_protected(self, query, db):
        with pytest.raises(UnknownRelationError):
            elastic_sensitivity_at_distance(query, db, protected="Z", distance=0)


class TestSmoothBound:
    def test_at_least_distance_zero_value(self, query, db):
        smooth, peak = smooth_elastic_sensitivity(query, db, "R", beta=0.1)
        assert smooth >= elastic_sensitivity_at_distance(
            query, db, protected="R", distance=0
        )
        assert peak == 0

    def test_invalid_beta(self, query, db):
        with pytest.raises(MechanismConfigError):
            smooth_elastic_sensitivity(query, db, "R", beta=0.0)


class TestMechanism:
    def test_outcome_fields(self, query, db):
        out = run_flex_dp(
            query, db, primary="R", epsilon=1.0, rng=np.random.default_rng(0)
        )
        assert out.true_count == 5
        assert out.smooth_sensitivity > 0
        assert out.beta == pytest.approx(1.0 / (2 * np.log(2e6)))

    def test_deterministic_under_seed(self, query, db):
        a = run_flex_dp(query, db, primary="R", epsilon=1.0,
                        rng=np.random.default_rng(4))
        b = run_flex_dp(query, db, primary="R", epsilon=1.0,
                        rng=np.random.default_rng(4))
        assert a.answer == b.answer

    def test_large_epsilon_accurate(self, query, db):
        errors = [
            run_flex_dp(
                query, db, primary="R", epsilon=500.0,
                rng=np.random.default_rng(seed),
            ).relative_error
            for seed in range(10)
        ]
        assert sorted(errors)[len(errors) // 2] < 0.1

    def test_noisier_than_tsensdp_scale(self, query, db):
        """FlexDP's noise scale 2·ES/ε must dominate TSensDP's τ/ε′ when
        elastic is looser than the learned τ — the paper's core DP story."""
        out = run_flex_dp(
            query, db, primary="R", epsilon=1.0, rng=np.random.default_rng(1)
        )
        from repro.core import local_sensitivity

        exact = local_sensitivity(query, db).local_sensitivity
        assert out.smooth_sensitivity >= exact

    def test_parameter_validation(self, query, db):
        with pytest.raises(MechanismConfigError):
            run_flex_dp(query, db, primary="R", epsilon=0.0)
        with pytest.raises(MechanismConfigError):
            run_flex_dp(query, db, primary="R", epsilon=1.0, delta=2.0)
