"""Result types for the sensitivity algorithms.

The central object is :class:`SensitivityResult`, returned by every
algorithm (naive, path, TSens).  It carries the local sensitivity, the most
sensitive tuple overall and per relation, and — when the algorithm produces
them — per-relation :class:`MultiplicityTable` objects giving the tuple
sensitivity of *every* tuple in the representative domain.  The multiplicity
tables are what the truncation mechanism (Sec. 6.2) consumes.

Two table representations exist because the two algorithms naturally
produce different shapes:

* ``TSens`` (Algorithm 2) materialises a dense table ``T^i`` over the
  relation's effective attributes (Eqn. 6);
* ``LSPathJoin`` (Algorithm 1) keeps the topjoin/botjoin *factors*, whose
  cross product would be the dense table — sensitivities are looked up as
  a product of two factor lookups, never materialising the quadratic table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.engine.relation import Relation, Row
from repro.exceptions import UnknownAttributeError


@dataclass(frozen=True)
class SensitiveTuple:
    """A witness tuple and its sensitivity.

    Attributes
    ----------
    relation:
        The base relation the tuple belongs to (or would be inserted into).
    assignment:
        Variable → value mapping over the relation's query variables.
        Exclusive variables carry extrapolated values (Sec. 5.4 "Other").
    sensitivity:
        The tuple sensitivity ``δ(t, Q, D)``.
    """

    relation: str
    assignment: Mapping[str, object]
    sensitivity: int

    def as_row(self, variables: Tuple[str, ...]) -> Row:
        """The tuple in positional form for the given variable order."""
        return tuple(self.assignment[v] for v in variables)


class MultiplicityTable:
    """Tuple sensitivities over a relation's effective attributes.

    A *dense* table wraps one bag relation whose multiplicity of a value
    combination is the tuple sensitivity of any tuple projecting onto it.
    A *factored* table wraps two attribute-disjoint bag relations whose
    product plays the same role (path queries).  A scalar ``multiplier``
    accounts for disconnected query components (their counts multiply every
    sensitivity in this component, Sec. 5.4).
    """

    def __init__(
        self,
        relation: str,
        factors: Tuple[Relation, ...],
        multiplier: int = 1,
    ):
        if not factors:
            raise ValueError("a multiplicity table needs at least one factor")
        seen = set()
        for factor in factors:
            overlap = seen & set(factor.attributes)
            if overlap:
                raise ValueError(f"factors overlap on attributes {sorted(overlap)}")
            seen |= set(factor.attributes)
        self.relation = relation
        self.factors = factors
        self.multiplier = multiplier

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Effective attributes covered by the table (factor order)."""
        out = []
        for factor in self.factors:
            out.extend(factor.attributes)
        return tuple(out)

    def sensitivity_of(self, assignment: Mapping[str, object]) -> int:
        """Tuple sensitivity of any tuple matching ``assignment``.

        ``assignment`` must cover all effective attributes; extra keys
        (exclusive attributes) are ignored.  Unknown value combinations
        have sensitivity 0.
        """
        product = self.multiplier
        for factor in self.factors:
            try:
                key = tuple(assignment[a] for a in factor.attributes)
            except KeyError as exc:
                raise UnknownAttributeError(str(exc), where=f"table for {self.relation}") from None
            count = factor.multiplicity(key)
            if count == 0:
                return 0
            product *= count
        return product

    def argmax(self) -> Tuple[Optional[Dict[str, object]], int]:
        """The assignment with the largest sensitivity and its value.

        For factored tables the maxima multiply — valid exactly because the
        factors are attribute-disjoint (the paper's cross-product argument
        in Sec. 4.2).  Returns ``(None, 0)`` when any factor is empty.
        """
        assignment: Dict[str, object] = {}
        product = self.multiplier
        for factor in self.factors:
            row, count = factor.argmax_count()
            if row is None:
                return None, 0
            assignment.update(zip(factor.attributes, row))
            product *= count
        return assignment, product

    def max_sensitivity(self) -> int:
        """The largest tuple sensitivity in the table."""
        return self.argmax()[1]

    def iter_descending(self) -> Iterator[Tuple[Dict[str, object], int]]:
        """Yield (assignment, sensitivity) pairs in non-increasing order.

        For factored tables this is a best-first product enumeration over
        the per-factor rankings (a heap of index tuples), so the top
        entries stream out without materialising the cross product.  Used
        by the witness search when a selection predicate must be honoured
        (Sec. 5.4): scan until the first satisfying assignment.
        """
        import heapq

        factor_items = []
        for factor in self.factors:
            items = sorted(factor.items(), key=lambda kv: (-kv[1], kv[0]))
            if not items:
                return
            factor_items.append(items)

        def value_at(index: Tuple[int, ...]) -> int:
            value = self.multiplier
            for items, i in zip(factor_items, index):
                value *= items[i][1]
            return value

        start = (0,) * len(factor_items)
        heap = [(-value_at(start), start)]
        seen = {start}
        while heap:
            negated, index = heapq.heappop(heap)
            assignment: Dict[str, object] = {}
            for factor, items, i in zip(self.factors, factor_items, index):
                assignment.update(zip(factor.attributes, items[i][0]))
            yield assignment, -negated
            for position in range(len(index)):
                bumped = (
                    index[:position]
                    + (index[position] + 1,)
                    + index[position + 1 :]
                )
                if bumped[position] < len(factor_items[position]) and bumped not in seen:
                    seen.add(bumped)
                    heapq.heappush(heap, (-value_at(bumped), bumped))

    def dense(self) -> Relation:
        """Materialise the table as one bag relation (cross product of the
        factors with counts scaled by the multiplier).  Potentially
        quadratic for factored tables — use lookups where possible."""
        from repro.engine.operators import cross_product

        result = self.factors[0]
        for factor in self.factors[1:]:
            result = cross_product(result, factor)
        if self.multiplier == 0:
            return Relation(result.schema, ())
        if self.multiplier != 1:
            result = result.scale_counts(self.multiplier)
        return result

    def scaled(self, extra_multiplier: int) -> "MultiplicityTable":
        """The same table with sensitivities multiplied by a constant."""
        return MultiplicityTable(
            self.relation, self.factors, self.multiplier * extra_multiplier
        )

    def __repr__(self) -> str:
        shapes = " x ".join(str(f.distinct_count()) for f in self.factors)
        return (
            f"MultiplicityTable({self.relation}, attrs={list(self.attributes)}, "
            f"factors={shapes}, multiplier={self.multiplier})"
        )


@dataclass
class SensitivityResult:
    """Output of a local-sensitivity algorithm (Definition 2.3).

    Attributes
    ----------
    query_name:
        Display name of the analysed query.
    method:
        Which algorithm produced the result (``"naive"``, ``"path"``,
        ``"tsens"``, ``"tsens-topk"``, ``"elastic"`` ...).
    local_sensitivity:
        ``LS(Q, D)`` — for approximate methods, an upper bound.
    witness:
        A most sensitive tuple ``t*``, or ``None`` when the local
        sensitivity is 0 and no witness exists.
    per_relation:
        For each relation, its most sensitive tuple (possibly with
        sensitivity 0 and no meaningful assignment).
    tables:
        Per-relation multiplicity tables (absent for methods that do not
        produce them, e.g. Elastic).
    """

    query_name: str
    method: str
    local_sensitivity: int
    witness: Optional[SensitiveTuple]
    per_relation: Dict[str, SensitiveTuple] = field(default_factory=dict)
    tables: Dict[str, MultiplicityTable] = field(default_factory=dict)

    def table(self, relation: str) -> MultiplicityTable:
        """The multiplicity table for ``relation``; raises if absent."""
        try:
            return self.tables[relation]
        except KeyError:
            raise KeyError(
                f"no multiplicity table for {relation!r} (method {self.method})"
            ) from None

    def tuple_sensitivity(self, relation: str, assignment: Mapping[str, object]) -> int:
        """``δ(t, Q, D)`` for a tuple of ``relation`` given as an
        assignment over its query variables."""
        return self.table(relation).sensitivity_of(assignment)

    def __repr__(self) -> str:
        witness = (
            f"{self.witness.relation}:{dict(self.witness.assignment)}"
            if self.witness
            else "none"
        )
        return (
            f"SensitivityResult({self.query_name}, method={self.method}, "
            f"LS={self.local_sensitivity}, witness={witness})"
        )
