"""R003 — invalidate-on-mutate: session mutations must drop cached results.

:class:`repro.session.PreparedQuery` caches evaluation results and
truncation oracles keyed against the *current* database.  Any method
that rebinds the tracked database field must therefore call the
cache-invalidation helper, and call it unconditionally — a call hidden
inside one branch leaves the other branch serving stale counts.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import FrozenSet, Iterator

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    attribute_chain_root,
    terminal_name,
    walk_skipping_nested_functions,
)

#: Session fields whose rebinding invalidates cached state.
TRACKED_FIELDS: FrozenSet[str] = frozenset({"_db"})

#: The helper every mutating method must call.
INVALIDATION_HELPER = "_invalidate_caches"

#: Methods exempt from the contract: construction (no caches exist yet)
#: and the helper itself.
EXEMPT_METHODS = frozenset({"__init__", INVALIDATION_HELPER})


class InvalidateOnMutateRule(Rule):
    rule_id = "R003"
    title = "invalidate-on-mutate: session mutation without cache invalidation"
    rationale = (
        "A method that rebinds the session database must call "
        f"{INVALIDATION_HELPER}() on all paths or cached counts go stale."
    )

    def applies_to(self, path: PurePath) -> bool:
        return path.name == "session.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in EXEMPT_METHODS:
                    continue
                yield from self._check_method(ctx, node.name, item)

    def _check_method(
        self, ctx: FileContext, class_name: str, method: ast.AST
    ) -> Iterator[Finding]:
        mutation = None
        for node in walk_skipping_nested_functions(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    root, attr = attribute_chain_root(target)
                    if root == "self" and attr in TRACKED_FIELDS:
                        mutation = node
                        break
            if mutation is not None:
                break
        if mutation is None:
            return
        if self._calls_helper_unconditionally(method):
            return
        if self._calls_helper_anywhere(method):
            message = (
                f"{class_name}.{method.name} rebinds a tracked session field but "
                f"calls {INVALIDATION_HELPER}() only on some paths"
            )
        else:
            message = (
                f"{class_name}.{method.name} rebinds a tracked session field "
                f"without calling {INVALIDATION_HELPER}()"
            )
        yield ctx.finding(self, mutation, message)

    @staticmethod
    def _is_helper_call(stmt: ast.stmt) -> bool:
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and terminal_name(stmt.value.func) == INVALIDATION_HELPER
        )

    def _calls_helper_unconditionally(self, method: ast.AST) -> bool:
        """The helper call appears as a direct statement of the method body
        (or of a ``try`` body / ``finally`` — executed on every path)."""
        def scan(body) -> bool:
            for stmt in body:
                if self._is_helper_call(stmt):
                    return True
                if isinstance(stmt, ast.Try):
                    if scan(stmt.body) or scan(stmt.finalbody):
                        return True
                if isinstance(stmt, ast.With):
                    if scan(stmt.body):
                        return True
            return False

        return scan(method.body)

    def _calls_helper_anywhere(self, method: ast.AST) -> bool:
        for node in walk_skipping_nested_functions(method):
            if (
                isinstance(node, ast.Call)
                and terminal_name(node.func) == INVALIDATION_HELPER
            ):
                return True
        return False
