"""Elastic sensitivity — the Flex baseline (Johnson, Near, Song 2017/2018).

Elastic sensitivity is a *static* upper bound on the local sensitivity of a
counting query with joins, computed from per-relation maximum frequencies
(``mf``) without evaluating the join.  We implement the distance-0 case
(which upper-bounds the local sensitivity at the given instance), following
the recursive rules of the Flex paper, plus the two extensions the TSens
paper applies in its experiments (Sec. 7.2):

* **cross products**: a join with no shared attributes uses the expression
  *size bound* as the max frequency of the (empty) join key;
* **join plan as input**: the analysis walks a caller-supplied binary join
  plan (post-order), so TSens and Elastic see the same join order.

Recursive state per expression ``E`` and protected relation ``r``:

* ``S(E; r)`` — elastic sensitivity: ``1`` if ``E`` is the base relation
  ``r``, ``0`` for other base relations, and for ``E = E1 ⋈_a E2``::

      S = max(mf(a, E1) * S(E2), mf(a, E2) * S(E1), S(E1) * S(E2))

* ``mf(x, E)`` — max frequency of attribute ``x``: computed from the data
  for base relations; for joins, ``mf(x, E1 ⋈_a E2) = mf(x, E1) * mf(a, E2)``
  when ``x`` comes from ``E1`` (symmetrically from ``E2``).
* ``size(E)`` — an upper bound on ``|E|`` used by the cross-product rule.

Faithful to Flex, selections do **not** change the analysis (max
frequencies come from the unfiltered relations) — this is one source of
looseness the TSens paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.exceptions import MechanismConfigError, UnknownRelationError

# A join plan is a relation name or a pair of sub-plans.
JoinPlan = Union[str, Tuple["JoinPlan", "JoinPlan"]]


@dataclass
class _Expression:
    """Static analysis state for one join-plan subtree."""

    attributes: Tuple[str, ...]
    size: int                      # upper bound on |E|
    max_freq: Dict[str, int]       # attribute -> mf upper bound
    sensitivity: Dict[str, int]    # protected relation -> S(E; r)


def plan_from_tree(tree: DecompositionTree) -> JoinPlan:
    """A left-deep join plan following the tree's post-order traversal.

    This is the "post-traversal of the join plan" order the TSens paper
    fixes for its Elastic runs, so both analyses join in the same order.
    """
    relations: list = []
    for node_id in tree.post_order():
        relations.extend(tree.node(node_id).relations)
    plan: JoinPlan = relations[0]
    for name in relations[1:]:
        plan = (plan, name)
    return plan


def _base_expression(
    query: ConjunctiveQuery, db: Database, relation: str
) -> _Expression:
    atom = query.atom(relation)
    base = db.relation(relation)
    # Rename columns to query variables but do NOT apply selections: Flex's
    # analysis is selection-oblivious by design.
    renamed = base.rename(dict(zip(base.schema.attributes, atom.variables)))
    max_freq = {
        var: renamed.max_frequency((var,)) for var in atom.variables
    }
    sensitivity = {name: 0 for name in query.relation_names}
    sensitivity[relation] = 1
    return _Expression(
        attributes=atom.variables,
        size=renamed.total_count(),
        max_freq=max_freq,
        sensitivity=sensitivity,
    )


def _join_expressions(left: _Expression, right: _Expression) -> _Expression:
    common = tuple(a for a in left.attributes if a in right.attributes)
    # mf of the (possibly empty) join key on each side; the cross-product
    # extension sets mf(∅, E) = size(E).
    left_key_mf = _key_frequency(left, common)
    right_key_mf = _key_frequency(right, common)

    sensitivity = {}
    for relation in left.sensitivity:
        s_left = left.sensitivity[relation]
        s_right = right.sensitivity[relation]
        sensitivity[relation] = max(
            left_key_mf * s_right,
            right_key_mf * s_left,
            s_left * s_right,
        )

    attributes = left.attributes + tuple(
        a for a in right.attributes if a not in set(left.attributes)
    )
    max_freq: Dict[str, int] = {}
    for attr in attributes:
        if attr in left.max_freq and attr in right.max_freq:
            max_freq[attr] = left.max_freq[attr] * right.max_freq[attr]
        elif attr in left.max_freq:
            max_freq[attr] = left.max_freq[attr] * right_key_mf
        else:
            max_freq[attr] = right.max_freq[attr] * left_key_mf
    size = min(left.size * right_key_mf, right.size * left_key_mf)
    return _Expression(
        attributes=attributes, size=size, max_freq=max_freq, sensitivity=sensitivity
    )


def _key_frequency(expression: _Expression, key: Sequence[str]) -> int:
    if not key:
        return expression.size
    # mf of a composite key is at most the min of its attributes' mfs.
    return min(expression.max_freq[a] for a in key)


def _analyse(
    query: ConjunctiveQuery, db: Database, plan: JoinPlan
) -> _Expression:
    if isinstance(plan, str):
        if plan not in query.relation_names:
            raise UnknownRelationError(plan)
        return _base_expression(query, db, plan)
    if not (isinstance(plan, tuple) and len(plan) == 2):
        raise MechanismConfigError(f"malformed join plan node: {plan!r}")
    left = _analyse(query, db, plan[0])
    right = _analyse(query, db, plan[1])
    return _join_expressions(left, right)


def _plan_relations(plan: JoinPlan) -> Tuple[str, ...]:
    if isinstance(plan, str):
        return (plan,)
    return _plan_relations(plan[0]) + _plan_relations(plan[1])


def elastic_sensitivity(
    query: ConjunctiveQuery,
    db: Database,
    plan: Optional[JoinPlan] = None,
    tree: Optional[DecompositionTree] = None,
    protected: Optional[str] = None,
) -> int:
    """Elastic sensitivity upper bound on ``LS(Q, D)``.

    Parameters
    ----------
    query, db:
        The counting query and instance.
    plan:
        Binary join plan.  Defaults to a left-deep plan over ``tree``'s
        post-order (``tree`` defaults to the automatic decomposition).
    tree:
        Used only to derive the default plan.
    protected:
        When given, the bound treats only this relation as sensitive (the
        per-relation comparison of Fig. 6b).  Otherwise the bound is the
        max over all relations — comparable to ``LS`` over all insertions
        and deletions.
    """
    if plan is None:
        if tree is None:
            from repro.query.ghd import auto_decompose

            tree = auto_decompose(query)
        plan = plan_from_tree(tree)
    covered = sorted(_plan_relations(plan))
    unknown = set(covered) - set(query.relation_names)
    if unknown:
        raise UnknownRelationError(sorted(unknown)[0])
    if covered != sorted(query.relation_names):
        raise MechanismConfigError(
            f"join plan covers {covered}, query has {sorted(query.relation_names)}"
        )
    expression = _analyse(query, db, plan)
    if protected is not None:
        if protected not in expression.sensitivity:
            raise UnknownRelationError(protected)
        return expression.sensitivity[protected]
    return max(expression.sensitivity.values())


def elastic_sensitivity_at_distance(
    query: ConjunctiveQuery,
    db: Database,
    protected: str,
    distance: int,
    plan: Optional[JoinPlan] = None,
    tree: Optional[DecompositionTree] = None,
) -> int:
    """Elastic sensitivity at distance ``k`` (Flex's ``Ŝ^(k)``).

    Upper-bounds the local sensitivity of any database at symmetric-
    difference distance ≤ ``k`` from ``D`` when only ``protected`` may
    change: the protected relation's max frequencies and size each grow by
    ``k`` (each added tuple can raise a frequency by at most one).  This is
    the quantity Flex maximises, discounted by ``e^{-βk}``, to obtain a
    smooth upper bound (see :mod:`repro.dp.flexdp`).
    """
    if distance < 0:
        raise MechanismConfigError(f"distance must be >= 0, got {distance}")
    if protected not in query.relation_names:
        raise UnknownRelationError(protected)
    if plan is None:
        if tree is None:
            from repro.query.ghd import auto_decompose

            tree = auto_decompose(query)
        plan = plan_from_tree(tree)

    def analyse(node: JoinPlan) -> _Expression:
        if isinstance(node, str):
            expression = _base_expression(query, db, node)
            if node == protected and distance:
                expression.size += distance
                expression.max_freq = {
                    attr: mf + distance for attr, mf in expression.max_freq.items()
                }
            # Only the protected relation is sensitive in this analysis.
            expression.sensitivity = {
                name: (1 if name == protected and name == node else 0)
                for name in query.relation_names
            }
            if node == protected:
                expression.sensitivity[protected] = 1
            return expression
        left = analyse(node[0])
        right = analyse(node[1])
        return _join_expressions(left, right)

    return analyse(plan).sensitivity[protected]


def elastic_per_relation(
    query: ConjunctiveQuery,
    db: Database,
    plan: Optional[JoinPlan] = None,
    tree: Optional[DecompositionTree] = None,
) -> Dict[str, int]:
    """Elastic sensitivity per protected relation (one analysis pass)."""
    if plan is None:
        if tree is None:
            from repro.query.ghd import auto_decompose

            tree = auto_decompose(query)
        plan = plan_from_tree(tree)
    expression = _analyse(query, db, plan)
    return dict(expression.sensitivity)
