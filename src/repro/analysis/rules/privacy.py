"""R001 — privacy-taint: raw counts must not escape ``dp/`` unnoised.

The DP layer's contract is that anything derived from the private
database — counts, sensitivities, multiplicity tables — leaves a public
``dp/`` function only after passing through a noise mechanism from
:mod:`repro.dp.primitives`, or with an explicit
:func:`repro.dp.marking.declassified` marker recording that the release
is intentional (e.g. the non-private debugging fields of an outcome).

The analysis is a per-function taint fixpoint: source expressions taint
the names they are assigned to, sanitizer calls clear taint, and a
finding is raised when a tainted expression reaches a return statement,
a ``print``, or a logging call.  Attribute reads on bare ``self`` are
*not* sources — an outcome object re-exposing its own declassified
fields is fine; pulling ``oracle.base_count`` out of a live oracle is
not.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator, Set

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    decorator_names,
    terminal_name,
    top_level_functions,
    walk_skipping_nested_functions,
)

#: Calls that produce values derived from the private database.
SOURCE_CALLS = frozenset(
    {
        "count",
        "count_query",
        "evaluate_count",
        "sensitivity",
        "local_sensitivity",
        "tuple_sensitivities",
        "tsens",
        "multiplicity_table",
        "truncated_count",
        "truncated_count_reevaluated",
        "truncated_fraction",
    }
)

#: Attribute reads that expose private-derived state (unless read off ``self``).
SOURCE_ATTRS = frozenset({"base_count", "local_sensitivity", "tuple_sensitivities"})

#: Calls that launder taint: DP mechanisms and the explicit marker.
SANITIZERS = frozenset(
    {
        "laplace_mechanism",
        "laplace_noise",
        "above_threshold",
        "laplace_confidence_radius",
        "declassified",
    }
)

#: Call targets treated as output sinks in addition to ``return``.
SINK_CALLS = frozenset({"print", "log", "debug", "info", "warning", "error", "critical"})


class PrivacyTaintRule(Rule):
    rule_id = "R001"
    title = "privacy-taint: raw counts may not escape dp/ public functions"
    rationale = (
        "Returning or printing a value derived from count()/sensitivity() "
        "without a primitives mechanism or @declassified is a privacy leak."
    )

    def applies_to(self, path: PurePath) -> bool:
        return "dp" in path.parts

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func, _cls in top_level_functions(ctx.tree):
            if func.name.startswith("_"):
                continue
            if "declassified" in decorator_names(func):
                continue
            yield from self._check_function(ctx, func)

    # ------------------------------------------------------------- core
    def _check_function(self, ctx: FileContext, func: ast.AST) -> Iterator[Finding]:
        tainted = self._tainted_names(func)
        for node in walk_skipping_nested_functions(func):
            if isinstance(node, ast.Return) and node.value is not None:
                if self._is_tainted(node.value, tainted):
                    yield ctx.finding(
                        self,
                        node,
                        f"function {func.name} returns a value derived from the "
                        "private database without a primitives mechanism or "
                        "@declassified marker",
                    )
            elif isinstance(node, ast.Call) and terminal_name(node.func) in SINK_CALLS:
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if self._is_tainted(arg, tainted):
                        yield ctx.finding(
                            self,
                            node,
                            f"function {func.name} writes a value derived from "
                            "the private database to an output sink "
                            f"({terminal_name(node.func)})",
                        )
                        break

    def _tainted_names(self, func: ast.AST) -> Set[str]:
        """Fixpoint of taint over the function's simple assignments."""
        tainted: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in walk_skipping_nested_functions(func):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    value = node.value
                    if value is None:
                        continue
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    if self._is_tainted(value, tainted):
                        for target in targets:
                            for name in _target_names(target):
                                if name not in tainted:
                                    tainted.add(name)
                                    changed = True
        return tainted

    def _is_tainted(self, expr: ast.AST, tainted: Set[str]) -> bool:
        if isinstance(expr, ast.Call):
            name = terminal_name(expr.func)
            if name in SANITIZERS:
                return False
            if name in SOURCE_CALLS:
                return True
            parts = list(expr.args) + [kw.value for kw in expr.keywords]
            return any(self._is_tainted(part, tainted) for part in parts)
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Attribute):
            if expr.attr in SOURCE_ATTRS and not _is_bare_self(expr.value):
                return True
            return self._is_tainted(expr.value, tainted)
        if isinstance(expr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return False
        return any(
            self._is_tainted(child, tainted) for child in ast.iter_child_nodes(expr)
        )


def _is_bare_self(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
