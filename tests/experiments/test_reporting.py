"""Unit tests for experiment reporting helpers."""

import pytest

from repro.experiments.reporting import format_table, format_value, median, ratio


class TestFormatValue:
    def test_ints_grouped(self):
        assert format_value(1234567) == "1,234,567"

    def test_small_floats(self):
        assert format_value(0.12345) == "0.1235"

    def test_extreme_floats_compact(self):
        assert format_value(1.5e9) == "1.5e+09"
        assert format_value(0.00001) == "1e-05"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_bool_passthrough(self):
        assert format_value(True) == "True"

    def test_string_passthrough(self):
        assert format_value("q1") == "q1"


class TestFormatTable:
    def test_renders_rows(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="T")

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text  # renders without KeyError


class TestStatistics:
    def test_ratio(self):
        assert ratio(10, 4) == 2.5
        assert ratio(1, 0) == float("inf")

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])
