"""Unit tests for per-tenant budget isolation."""

import pytest

from repro.exceptions import PrivacyBudgetError, TenantError
from repro.serve import TenantRegistry


class TestRegistration:
    def test_register_and_get(self):
        registry = TenantRegistry()
        tenant = registry.register("alice", 2.0)
        assert registry.get("alice") is tenant
        assert "alice" in registry
        assert len(registry) == 1

    def test_duplicate_registration_raises(self):
        registry = TenantRegistry()
        registry.register("alice", 2.0)
        with pytest.raises(TenantError):
            registry.register("alice", 5.0)

    def test_strict_mode_rejects_unknown(self):
        registry = TenantRegistry()
        with pytest.raises(TenantError):
            registry.get("ghost")

    def test_open_door_auto_registers(self):
        registry = TenantRegistry(default_epsilon=1.5)
        tenant = registry.get("walk-in")
        assert tenant.accountant.total_epsilon == 1.5
        assert registry.get("walk-in") is tenant  # stable identity

    @pytest.mark.parametrize("bad_id", ["", None, 7, ("a",)])
    def test_invalid_ids_rejected(self, bad_id):
        registry = TenantRegistry(default_epsilon=1.0)
        with pytest.raises(TenantError):
            registry.get(bad_id)


class TestIsolation:
    def test_budgets_are_independent(self):
        registry = TenantRegistry()
        alice = registry.register("alice", 1.0)
        bob = registry.register("bob", 1.0)
        alice.accountant.spend(1.0, "tsensdp:R")
        with pytest.raises(PrivacyBudgetError):
            alice.accountant.spend(0.1, "tsensdp:R")
        # Alice's exhaustion never touches Bob.
        bob.accountant.spend(0.5, "tsensdp:R")
        assert bob.accountant.remaining == pytest.approx(0.5)

    def test_stats_snapshot(self):
        registry = TenantRegistry()
        registry.register("bob", 2.0).accountant.spend(0.5, "flexdp:R")
        registry.register("alice", 1.0)
        stats = registry.stats()
        assert [s["tenant_id"] for s in stats] == ["alice", "bob"]
        bob = stats[1]
        assert bob["spent_epsilon"] == pytest.approx(0.5)
        assert bob["remaining_epsilon"] == pytest.approx(1.5)
        assert bob["ledger"] == {"flexdp:R": pytest.approx(0.5)}
