"""Unit tests for the TPC-H workload definitions (Fig. 5a)."""

import pytest

from repro.query import classify, is_acyclic, is_path_query
from repro.workloads import q1_workload, q2_workload, q3_workload, tpch_workloads


class TestQ1:
    def test_is_path_query(self):
        assert is_path_query(q1_workload().query)

    def test_prepared_views(self, tiny_tpch):
        workload = q1_workload()
        db = workload.prepared(tiny_tpch)
        workload.query.validate_against(db)
        # L is the bag projection of Lineitem onto OK.
        assert db.relation("L").attributes == ("OK",)
        assert (
            db.relation("L").total_count()
            == tiny_tpch.relation("Lineitem").total_count()
        )

    def test_policy(self):
        workload = q1_workload()
        assert workload.primary == "C"
        assert workload.ell == 100

    def test_fk_chain_for_privsql(self, tiny_tpch):
        db = q1_workload().prepared(tiny_tpch)
        children = {fk.child for fk in db.foreign_keys}
        assert {"N", "C", "O", "L"} <= children


class TestQ2:
    def test_acyclic_not_path(self):
        query = q2_workload().query
        assert is_acyclic(query)
        assert not is_path_query(query)

    def test_tree_covers(self):
        workload = q2_workload()
        assert workload.tree.covers_query(workload.query)
        assert workload.tree.width() == 1

    def test_prepared_views(self, tiny_tpch):
        workload = q2_workload()
        db = workload.prepared(tiny_tpch)
        workload.query.validate_against(db)
        assert db.relation("S").attributes == ("SK",)


class TestQ3:
    def test_cyclic(self):
        assert classify(q3_workload().query) == "cyclic"

    def test_hypertree_matches_fig5a(self):
        tree = q3_workload().tree
        assert tree.root == "gRNL"
        assert set(tree.node("gRNL").relations) == {"R", "N", "L"}
        assert set(tree.node("gOC").relations) == {"O", "C"}
        assert set(tree.node("gSP").relations) == {"S", "P"}
        assert tree.node("gPS").relations == ("PS",)
        assert tree.width() == 3

    def test_tree_valid_for_query(self):
        workload = q3_workload()
        assert workload.tree.covers_query(workload.query)

    def test_lineitem_skipped(self):
        # (OK, SK, PK) is a superkey of the join output, so δ(L) ≤ 1.
        assert q3_workload().skip_relations == ("L",)

    def test_prepared_views(self, tiny_tpch):
        workload = q3_workload()
        db = workload.prepared(tiny_tpch)
        workload.query.validate_against(db)


class TestCollection:
    def test_order_and_names(self):
        assert [w.name for w in tpch_workloads()] == ["q1", "q2", "q3"]

    def test_all_have_primaries(self):
        assert all(w.primary for w in tpch_workloads())
