"""Unit tests for the predicate DSL."""

import pytest

from repro.query.predicates import (
    And,
    Compare,
    Member,
    Not,
    Or,
    TruePredicate,
    parse_predicate,
)
from repro.exceptions import ParseError


class TestCompare:
    def test_equality(self):
        assert Compare("A", "=", 5)({"A": 5})
        assert not Compare("A", "=", 5)({"A": 6})

    def test_ordering(self):
        assert Compare("A", "<", 5)({"A": 4})
        assert Compare("A", ">=", 5)({"A": 5})
        assert not Compare("A", ">", 5)({"A": 5})

    def test_numeric_coercion_of_row_value(self):
        assert Compare("A", "=", 5)({"A": "5"})
        assert not Compare("A", "<", 5)({"A": "not a number"})

    def test_string_comparison(self):
        assert Compare("A", "=", "x")({"A": "x"})

    def test_unknown_operator(self):
        with pytest.raises(ParseError):
            Compare("A", "~", 5)

    def test_incomparable_types_false(self):
        assert not Compare("A", "<", "x")({"A": (1, 2)})


class TestCombinators:
    def test_and_or_not(self):
        p = (Compare("A", "=", 1) & Compare("B", "=", 2)) | ~Compare("C", "=", 3)
        assert p({"A": 1, "B": 2, "C": 3})
        assert p({"A": 0, "B": 0, "C": 4})
        assert not p({"A": 0, "B": 2, "C": 3})

    def test_member(self):
        p = Member("A", frozenset({1, 2}))
        assert p({"A": 1}) and not p({"A": 3})

    def test_true_predicate(self):
        assert TruePredicate()({"anything": 0})

    def test_str_round_trips_through_parser(self):
        p = parse_predicate("A = 1 and not B in {2, 3}")
        again = parse_predicate(str(p))
        for row in ({"A": 1, "B": 2}, {"A": 1, "B": 9}, {"A": 0, "B": 9}):
            assert p(row) == again(row)


class TestParser:
    def test_simple_comparison(self):
        assert parse_predicate("A >= 3")({"A": 3})

    def test_precedence_and_over_or(self):
        p = parse_predicate("A = 1 or A = 2 and B = 9")
        assert p({"A": 1, "B": 0})       # or-branch
        assert p({"A": 2, "B": 9})
        assert not p({"A": 2, "B": 0})

    def test_parentheses(self):
        p = parse_predicate("(A = 1 or A = 2) and B = 9")
        assert not p({"A": 1, "B": 0})

    def test_membership_with_strings(self):
        p = parse_predicate("C in {'x', 'y'}")
        assert p({"C": "x"}) and not p({"C": "z"})

    def test_membership_with_bare_words(self):
        p = parse_predicate("C in {xx, yy}")
        assert p({"C": "xx"})

    def test_floats_and_negatives(self):
        p = parse_predicate("A > -1.5")
        assert p({"A": 0}) and not p({"A": -2})

    def test_double_equals(self):
        assert parse_predicate("A == 1")({"A": 1})

    @pytest.mark.parametrize(
        "text", ["", "A", "A =", "= 1", "A in {1", "A in {}", "A = 1 garbage", "(A = 1"]
    )
    def test_errors(self, text):
        with pytest.raises(ParseError):
            parse_predicate(text)


class TestIntegrationWithSelections:
    def test_predicate_in_query(self, fig3_query, fig3_db):
        from repro.core import local_sensitivity, naive_local_sensitivity

        predicate = parse_predicate("D = 'd1'")
        filtered = fig3_query.with_selection("R3", predicate)
        fast = local_sensitivity(filtered, fig3_db)
        slow = naive_local_sensitivity(filtered, fig3_db)
        assert fast.local_sensitivity == slow.local_sensitivity
