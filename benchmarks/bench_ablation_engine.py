"""Ablation — engine microbenchmarks backing the near-linear claims.

Times the primitive operators (hash join, group-by, semijoin) on TPC-H
sized inputs; these are the inner loops whose ``O(n log n)``-ish behaviour
Theorems 4.1/5.1 assume of the substrate.
"""

import pytest

from repro.engine import group_by, join, semijoin
from repro.evaluation import count_query, evaluate_query, naive_join
from repro.workloads import q1_workload


@pytest.fixture(scope="module")
def joined_tables(tpch_base):
    workload = q1_workload()
    db = workload.prepared(tpch_base)
    orders = workload.query.bound_relation(db, "O")
    lineitem = workload.query.bound_relation(db, "L")
    return orders, lineitem


def test_engine_hash_join(benchmark, joined_tables):
    orders, lineitem = joined_tables
    out = benchmark(lambda: join(orders, lineitem))
    assert out.total_count() == lineitem.total_count()


def test_engine_group_by(benchmark, joined_tables):
    orders, _ = joined_tables
    out = benchmark(lambda: group_by(orders, ("CK",)))
    assert out.total_count() == orders.total_count()


def test_engine_semijoin(benchmark, joined_tables):
    orders, lineitem = joined_tables
    out = benchmark(lambda: semijoin(orders, lineitem))
    assert out.total_count() <= orders.total_count()


def test_engine_yannakakis_count(benchmark, tpch_base):
    workload = q1_workload()
    db = workload.prepared(tpch_base)
    count = benchmark(lambda: count_query(workload.query, db))
    assert count > 0


def test_engine_full_evaluation_matches_naive(benchmark, tpch_small):
    workload = q1_workload()
    db = workload.prepared(tpch_small)
    out = benchmark.pedantic(
        lambda: evaluate_query(workload.query, db), rounds=2, iterations=1
    )
    assert out.total_count() == naive_join(workload.query, db).total_count()
