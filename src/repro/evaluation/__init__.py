"""Query evaluation over decomposition trees (Yannakakis-style)."""

from repro.evaluation.incremental import PROBE_ATTRIBUTE, IncrementalEvaluator
from repro.evaluation.joinstate import AppliedUpdate, JoinState
from repro.evaluation.yannakakis import (
    BoundTree,
    ChainUnsupported,
    ResidentFoldPipeline,
    ResidentMapping,
    bind,
    compile_botjoin_chain,
    compile_topjoin_chain,
    compute_botjoins,
    compute_topjoins,
    count_bound,
    count_query,
    default_tree,
    evaluate_bound,
    evaluate_query,
    naive_join,
    semijoin_reduce,
)

__all__ = [
    "AppliedUpdate",
    "BoundTree",
    "ChainUnsupported",
    "IncrementalEvaluator",
    "JoinState",
    "PROBE_ATTRIBUTE",
    "ResidentFoldPipeline",
    "ResidentMapping",
    "bind",
    "compile_botjoin_chain",
    "compile_topjoin_chain",
    "compute_botjoins",
    "compute_topjoins",
    "count_bound",
    "count_query",
    "default_tree",
    "evaluate_bound",
    "evaluate_query",
    "naive_join",
    "semijoin_reduce",
]
