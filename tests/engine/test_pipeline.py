"""Unit tests for worker-resident fold pipelines.

Covers segment splitting at exchange barriers, the cross-process stable
hash, chain partitioning, the peer-to-peer exchange round trip, the chain
compiler's co-partitioning decisions, :class:`WorkerState` execution and
maintenance (run_plan / fetch / fold_delta / drop / epoch invalidation),
and the fetch-through :class:`ResidentMapping`.
"""

import os
import subprocess
import sys

import pytest

from repro.engine import (
    ColumnarRelation,
    ParallelContext,
    PipelinePlan,
    Relation,
    WorkerState,
    group_by,
    join,
    symmetric_difference_size,
    union_all,
)
from repro.engine.columnar import current_vocabulary
from repro.engine.parallel import _split_segments
from repro.engine.sharding import (
    chain_partition,
    export_exchange,
    gather_exchange,
    partition_by_attribute,
    release_exchange,
    stable_hash,
)
from repro.evaluation import bind, default_tree
from repro.evaluation.yannakakis import (
    ChainUnsupported,
    ResidentMapping,
    _ChainCompiler,
    compile_botjoin_chain,
    compile_topjoin_chain,
)
from repro.exceptions import InternalError
from repro.query import parse_query


def _vocab_for(generation):
    return current_vocabulary()


def _bag(relation):
    return dict(relation.items())


# =========================================================== segment splitting
class TestSplitSegments:
    def test_no_exchange_is_one_segment(self):
        steps = (("load", "a"), ("join", "t1", "a", "b"), ("emit", "out", "t1"))
        assert _split_segments(steps) == [steps]

    def test_collect_of_same_segment_scatter_cuts(self):
        steps = (
            ("load", "a"),
            ("scatter", "x", "a", "A"),
            ("collect", "x"),
            ("emit", "out", "x"),
        )
        segments = _split_segments(steps)
        assert len(segments) == 2
        assert segments[0][-1][0] == "scatter"
        assert segments[1][0] == ("collect", "x")

    def test_collect_of_earlier_segment_scatter_does_not_cut(self):
        steps = (
            ("scatter", "x", "a", "A"),
            ("scatter", "y", "a", "B"),
            ("collect", "x"),  # cut here: x scattered in this segment
            ("collect", "y"),  # no new cut: y's descriptors already known
            ("emit", "out", "y"),
        )
        segments = _split_segments(steps)
        assert len(segments) == 2
        assert segments[1][0] == ("collect", "x")
        assert ("collect", "y") in segments[1]

    def test_empty_steps(self):
        assert _split_segments(()) == []


# =============================================================== stable hashing
class TestStableHash:
    def test_ints_and_bools_are_masked_identity(self):
        assert stable_hash(5) == 5
        assert stable_hash(True) == 1
        assert stable_hash(-1) == stable_hash(-1)

    def test_deterministic_across_hash_seeds(self):
        """Placement cannot depend on PYTHONHASHSEED: two processes with
        different seeds must agree on every string's hash."""
        code = (
            "from repro.engine.sharding import stable_hash;"
            "print([stable_hash(v) % 4 for v in"
            " ('alpha', 'beta', b'gamma', 3.5, 42)])"
        )
        outputs = set()
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), "src") if p
            )
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1


class TestChainPartition:
    @pytest.mark.parametrize("cls", [Relation, ColumnarRelation])
    def test_exact_and_disjoint(self, cls):
        relation = cls(["A", "B"], [(f"k{i % 7}", i) for i in range(60)])
        parts = chain_partition(relation, "A", 3)
        merged = {}
        for part in parts:
            for row, count in part.items():
                assert row not in merged
                merged[row] = count
        assert merged == _bag(relation)

    def test_columnar_matches_per_op_partitioning(self):
        """Chain loads and per-op shards must co-locate rows (codes % N)."""
        relation = ColumnarRelation(["A", "B"], [(i % 5, i) for i in range(50)])
        chain = chain_partition(relation, "A", 4)
        per_op = partition_by_attribute(relation, "A", 4)
        for a, b in zip(chain, per_op):
            assert _bag(a) == _bag(b)

    def test_python_partitioning_uses_stable_hash(self):
        relation = Relation(["A", "B"], [(f"v{i}", i) for i in range(20)])
        parts = chain_partition(relation, "A", 3)
        for shard, part in enumerate(parts):
            for row, _ in part.items():
                assert stable_hash(row[0]) % 3 == shard


# ============================================================ exchange protocol
class TestExchange:
    def test_columnar_exchange_round_trip(self):
        """N producers scatter, each consumer's gather is exactly the
        union of its slice of every producer — the repartitioned bag."""
        relation = ColumnarRelation(["A", "B"], [(i % 5, i % 11) for i in range(100)])
        producers = partition_by_attribute(relation, "A", 3)
        descriptors = [export_exchange(part, "B", 3) for part in producers]
        try:
            gathered = [
                gather_exchange(descriptors, shard, _vocab_for) for shard in range(3)
            ]
        finally:
            for descriptor in descriptors:
                release_exchange(descriptor)
        expected = partition_by_attribute(relation, "B", 3)
        for got, want in zip(gathered, expected):
            assert symmetric_difference_size(got, want) == 0

    def test_empty_columnar_descriptor_is_inline(self):
        empty = ColumnarRelation(["A", "B"], [])
        descriptor = export_exchange(empty, "A", 2)
        assert descriptor[0] == "xcol0"
        gathered = gather_exchange([descriptor], 0, _vocab_for)
        assert gathered.is_empty()

    def test_python_exchange_merges_buckets(self):
        left = Relation(["A", "B"], {("x", 1): 2})
        right = Relation(["A", "B"], {("x", 1): 3, ("y", 2): 1})
        descriptors = [
            export_exchange(left, "A", 2),
            export_exchange(right, "A", 2),
        ]
        merged = {}
        for shard in range(2):
            for row, count in gather_exchange(descriptors, shard, _vocab_for).items():
                assert row not in merged
                merged[row] = count
        assert merged == {("x", 1): 5, ("y", 2): 1}

    def test_gather_without_descriptors_raises(self):
        with pytest.raises(InternalError, match="no descriptors"):
            gather_exchange([], 0, _vocab_for)

    def test_release_exchange_is_idempotent(self):
        relation = ColumnarRelation(["A"], [(i,) for i in range(10)])
        descriptor = export_exchange(relation, "A", 2)
        assert descriptor[0] == "xseg"
        release_exchange(descriptor)
        release_exchange(descriptor)  # second unlink is a no-op


# ============================================================== chain compiler
class TestChainCompiler:
    def test_copartitioned_join_needs_no_exchange(self):
        compiler = _ChainCompiler()
        compiler.load("r", ("A", "B"), "A")
        compiler.load("s", ("A", "C"), "A")
        compiler.join("r", "s")
        assert not any(step[0] == "scatter" for step in compiler.steps)

    def test_misaligned_join_inserts_exchange(self):
        compiler = _ChainCompiler()
        compiler.load("r", ("A", "B"), "A")
        compiler.load("s", ("B", "C"), "C")
        compiler.join("r", "s")
        ops = [step[0] for step in compiler.steps]
        assert "scatter" in ops and "collect" in ops

    def test_group_keeping_partition_attribute_is_direct(self):
        compiler = _ChainCompiler()
        compiler.load("r", ("A", "B"), "A")
        compiler.group("r", ("A",))
        assert [s[0] for s in compiler.steps].count("group") == 1

    def test_group_dropping_partition_attribute_is_combiner(self):
        """Local partial group, exchange on the group key, final group."""
        compiler = _ChainCompiler()
        compiler.load("r", ("A", "B"), "A")
        compiler.group("r", ("B",))
        ops = [s[0] for s in compiler.steps]
        assert ops.count("group") == 2
        assert "scatter" in ops

    def test_root_grouping_on_empty_attrs_stays_local(self):
        compiler = _ChainCompiler()
        compiler.load("r", ("A",), "A")
        out = compiler.group("r", ())
        compiler.emit("root", out)
        assert not any(s[0] == "scatter" for s in compiler.steps)

    def test_cross_product_join_unsupported(self):
        compiler = _ChainCompiler()
        compiler.load("r", ("A",), "A")
        compiler.load("s", ("B",), "B")
        with pytest.raises(ChainUnsupported, match="cross-product"):
            compiler.join("r", "s")

    def test_load_on_foreign_attribute_unsupported(self):
        compiler = _ChainCompiler()
        with pytest.raises(ChainUnsupported):
            compiler.load("r", ("A", "B"), "Z")

    def test_named_registers_exclude_temporaries(self):
        compiler = _ChainCompiler()
        compiler.load("node:1", ("A", "B"), "A")
        joined = compiler.join("node:1", "node:1")
        compiler.keep("bot:1", joined)
        names = compiler.named_registers()
        assert set(names) == {"node:1", "bot:1"}


class TestCompileChains:
    def _bound(self, backend):
        query = parse_query("R(A,B), S(B,C), T(C,D)")
        rows = {
            "R": [(i % 3, i % 4) for i in range(12)],
            "S": [(i % 4, i % 5) for i in range(12)],
            "T": [(i % 5, i % 2) for i in range(12)],
        }
        cls = ColumnarRelation if backend == "columnar" else Relation
        db = {name: cls(query.atom(name).variables, rows[name]) for name in rows}
        from repro.engine import Database

        tree = default_tree(query)
        return bind(query, tree, Database(db))

    @pytest.mark.parametrize("backend", ["python", "columnar"])
    def test_bot_plan_keeps_non_root_emits_root(self, backend):
        bound = self._bound(backend)
        plan, registers = compile_botjoin_chain(bound)
        assert plan.emits == ("root",)
        non_root = [n for n in bound.tree.node_ids if n != bound.tree.root]
        assert set(plan.keeps) == {f"bot:{n}" for n in non_root}
        assert set(plan.loads) == {f"node:{n}" for n in bound.tree.node_ids}
        # Everything that outlives the plan is in the register map.
        for name in list(plan.keeps) + list(plan.loads):
            assert name in registers

    @pytest.mark.parametrize("backend", ["python", "columnar"])
    def test_top_plan_reads_residents_keeps_tops(self, backend):
        bound = self._bound(backend)
        _, registers = compile_botjoin_chain(bound)
        top = compile_topjoin_chain(bound, registers)
        assert top.emits == ()
        assert set(top.reads) == set(registers)
        non_root = [n for n in bound.tree.node_ids if n != bound.tree.root]
        assert set(top.keeps) == {f"top:{n}" for n in non_root}

    def test_single_node_tree_unsupported(self):
        query = parse_query("R(A,B)")
        db_rows = {"R": Relation(["A", "B"], [(1, 2)])}
        from repro.engine import Database

        tree = default_tree(query)
        bound = bind(query, tree, Database(db_rows))
        with pytest.raises(ChainUnsupported, match="single-node"):
            compile_botjoin_chain(bound)


# ================================================================ worker state
@pytest.fixture(scope="module")
def context():
    with ParallelContext(2, min_shard_rows=0) as ctx:
        yield ctx


class TestWorkerState:
    @pytest.mark.parametrize("cls", [Relation, ColumnarRelation])
    def test_run_plan_emit_matches_serial(self, context, cls):
        left = cls(["A", "B"], [(i % 5, i) for i in range(60)])
        right = cls(["A", "C"], [(i % 5, -i) for i in range(60)])
        compiler = _ChainCompiler()
        compiler.load("r", ("A", "B"), "A")
        compiler.load("s", ("A", "C"), "A")
        joined = compiler.join("r", "s")
        grouped = compiler.group(joined, ("B",))  # combiner: drops "A"
        compiler.emit("out", grouped)
        state = context.chain_state()
        try:
            emits = state.run_plan(compiler.plan(), {"r": left, "s": right})
            expected = group_by(join(left, right), ["B"])
            assert symmetric_difference_size(emits["out"], expected) == 0
        finally:
            state.close()

    @pytest.mark.parametrize("cls", [Relation, ColumnarRelation])
    def test_keep_then_fetch_round_trip(self, context, cls):
        left = cls(["A", "B"], [(i % 3, i) for i in range(30)])
        right = cls(["A", "C"], [(i % 3, -i) for i in range(30)])
        compiler = _ChainCompiler()
        compiler.load("r", ("A", "B"), "A")
        compiler.load("s", ("A", "C"), "A")
        joined = compiler.join("r", "s")
        grouped = compiler.group(joined, ("A",))
        compiler.keep("kept", grouped)
        state = context.chain_state()
        try:
            state.run_plan(compiler.plan(), {"r": left, "s": right})
            expected = group_by(join(left, right), ["A"])
            assert state.total("kept") == expected.total_count()
            fetched = state.fetch("kept")
            assert symmetric_difference_size(fetched, expected) == 0
        finally:
            state.close()

    @pytest.mark.parametrize("cls", [Relation, ColumnarRelation])
    def test_registers_persist_across_plans(self, context, cls):
        """The point of residency: a later plan reads what an earlier
        plan kept, without reloading."""
        base = cls(["A", "B"], [(i % 4, i % 6) for i in range(40)])
        first = _ChainCompiler()
        first.load("r", ("A", "B"), "A")
        grouped = first.group("r", ("A", "B"))
        first.keep("kept", grouped)
        second = _ChainCompiler()
        second.read("kept", ("A", "B"), "A")
        second.read("r", ("A", "B"), "A")
        joined = second.join("kept", "r")
        out = second.group(joined, ("A",))
        second.emit("out", out)
        state = context.chain_state()
        try:
            state.run_plan(first.plan(), {"r": base})
            emits = state.run_plan(second.plan(), {})
            expected = group_by(
                join(group_by(base, ["A", "B"]), base), ["A"]
            )
            assert symmetric_difference_size(emits["out"], expected) == 0
        finally:
            state.close()

    def test_missing_read_raises(self, context):
        compiler = _ChainCompiler()
        compiler.read("ghost", ("A",), "A")
        out = compiler.group("ghost", ("A",))
        compiler.emit("out", out)
        state = context.chain_state()
        try:
            with pytest.raises(InternalError, match="non-resident"):
                state.run_plan(compiler.plan(), {})
        finally:
            state.close()

    @pytest.mark.parametrize("cls", [Relation, ColumnarRelation])
    def test_fold_delta_insert_and_delete(self, context, cls):
        base = cls(["A", "B"], {(i % 4, i): 2 for i in range(40)})
        compiler = _ChainCompiler()
        compiler.load("r", ("A", "B"), "A")
        grouped = compiler.group("r", ("A", "B"))
        compiler.keep("kept", grouped)
        state = context.chain_state()
        try:
            state.run_plan(compiler.plan(), {"r": base})
            plus = cls(["A", "B"], {(1, 999): 3})
            minus = cls(["A", "B"], {(0, 0): 1})
            from repro.engine import difference

            expected = difference(union_all([base, plus]), minus)
            assert state.fold_delta(
                "kept",
                [(plus, True), (minus, False)],
                expected_total=expected.total_count(),
            )
            assert symmetric_difference_size(state.fetch("kept"), expected) == 0
        finally:
            state.close()

    def test_fold_delta_schema_permutation_aligns(self, context):
        """Delta column order follows its own join chain, not the
        register's — the worker re-orders before the bag fold."""
        base = Relation(["A", "B"], {(1, 2): 1, (3, 4): 2})
        compiler = _ChainCompiler()
        compiler.load("r", ("A", "B"), "A")
        grouped = compiler.group("r", ("A", "B"))
        compiler.keep("kept", grouped)
        state = context.chain_state()
        try:
            state.run_plan(compiler.plan(), {"r": base})
            delta = Relation(["B", "A"], {(2, 1): 5})
            assert state.fold_delta("kept", [(delta, True)], expected_total=8)
            fetched = state.fetch("kept")
            assert fetched.multiplicity((1, 2)) == 6
        finally:
            state.close()

    def test_fold_delta_total_mismatch_drops_register(self, context):
        base = Relation(["A", "B"], {(1, 2): 1})
        compiler = _ChainCompiler()
        compiler.load("r", ("A", "B"), "A")
        grouped = compiler.group("r", ("A", "B"))
        compiler.keep("kept", grouped)
        state = context.chain_state()
        try:
            state.run_plan(compiler.plan(), {"r": base})
            delta = Relation(["A", "B"], {(9, 9): 1})
            assert not state.fold_delta("kept", [(delta, True)], expected_total=777)
            assert "kept" not in state.registers
            with pytest.raises(InternalError):
                state.fetch("kept")
        finally:
            state.close()

    def test_fold_into_unknown_register_returns_false(self, context):
        state = context.chain_state()
        try:
            delta = Relation(["A"], {(1,): 1})
            assert state.fold_delta("never-kept", [(delta, True)]) is False
        finally:
            state.close()

    def test_drop_clears_worker_arenas(self, context):
        base = Relation(["A", "B"], {(1, 2): 1})
        compiler = _ChainCompiler()
        compiler.load("r", ("A", "B"), "A")
        grouped = compiler.group("r", ("A", "B"))
        compiler.keep("kept", grouped)
        state = context.chain_state()
        try:
            state.run_plan(compiler.plan(), {"r": base})
            state.drop()
            assert state.registers == {}
            with pytest.raises(InternalError):
                state.fetch("kept")
        finally:
            state.close()

    def test_closed_state_refuses_use(self, context):
        state = context.chain_state()
        state.close()
        state.close()  # idempotent
        with pytest.raises(InternalError, match="close"):
            state.sync_registers()

    def test_serial_context_has_no_chain_state(self):
        with ParallelContext(1) as serial:
            assert serial.chain_state() is None

    def test_chains_false_disables_chain_state(self):
        with ParallelContext(2, min_shard_rows=0, chains=False) as ctx:
            assert ctx.chain_state() is None


class TestEpochInvalidation:
    def test_worker_death_invalidates_registers(self):
        """A crashed worker respawns the whole set; the epoch bump tells
        the state its arenas evaporated (sync clears, fetch fails)."""
        with ParallelContext(2, min_shard_rows=0) as ctx:
            base = Relation(["A", "B"], {(i % 3, i): 1 for i in range(12)})
            compiler = _ChainCompiler()
            compiler.load("r", ("A", "B"), "A")
            grouped = compiler.group("r", ("A", "B"))
            compiler.keep("kept", grouped)
            state = ctx.chain_state()
            state.run_plan(compiler.plan(), {"r": base})
            assert "kept" in state.registers
            pool = ctx._pool
            old_epoch = pool.epoch
            os.kill(pool._handles[0].process.pid, 9)
            pool._handles[0].process.join(timeout=5)
            state.sync_registers()  # restarts the set, clears registers
            assert pool.epoch > old_epoch
            assert state.registers == {}
            with pytest.raises(InternalError):
                state.fetch("kept")


# ============================================================ resident mapping
class _StubState:
    def __init__(self, values, fail=()):
        self._values = values
        self._fail = set(fail)
        self.fetches = []

    def fetch(self, register):
        self.fetches.append(register)
        if register in self._fail:
            raise InternalError(f"register {register!r} gone")
        return self._values[register]


class TestResidentMapping:
    def test_local_overlay_wins_and_fetch_caches(self):
        state = _StubState({"bot:1": "fetched"})
        mapping = ResidentMapping(
            state, {"n1": "bot:1", "root": None}, {"root": "local"}, dict
        )
        assert mapping["root"] == "local"
        assert mapping.peek("n1") is None  # peek never fetches
        assert mapping["n1"] == "fetched"
        assert mapping["n1"] == "fetched"
        assert state.fetches == ["bot:1"]  # cached after the first fetch
        assert mapping.materialized("n1")

    def test_setitem_overrides_register(self):
        state = _StubState({"bot:1": "stale"})
        mapping = ResidentMapping(state, {"n1": "bot:1"}, {}, dict)
        mapping["n1"] = "committed"
        assert mapping["n1"] == "committed"
        assert state.fetches == []

    def test_failed_fetch_recovers_whole_dict(self):
        state = _StubState({}, fail={"bot:1"})
        recovered = {"n1": "recomputed", "n2": "also"}
        mapping = ResidentMapping(
            state, {"n1": "bot:1", "n2": "bot:2"}, {}, lambda: recovered
        )
        assert mapping["n1"] == "recomputed"
        assert mapping.peek("n2") == "also"  # recover() filled everything

    def test_none_register_is_keyerror(self):
        mapping = ResidentMapping(_StubState({}), {"root": None}, {}, dict)
        with pytest.raises(KeyError):
            mapping["root"]

    def test_iteration_and_len_cover_both_sources(self):
        mapping = ResidentMapping(
            _StubState({}), {"a": "bot:a", "b": "bot:b"}, {"b": 1, "c": 2}, dict
        )
        assert set(mapping) == {"a", "b", "c"}
        assert len(mapping) == 3
        del mapping["a"]
        assert set(mapping) == {"b", "c"}
