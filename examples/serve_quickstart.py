#!/usr/bin/env python
"""Serving quickstart: one prepared session shared by many clients.

Boots the NDJSON session server on an ephemeral port over the paper's
running join, then drives it like a deployment would: epoch-pinned
reads, a hypothetical-insert probe, an atomic update batch that moves
the epoch head, a budget-accounted DP release, and finally a burst of
concurrent probes that the admission queue coalesces into a handful of
vectorized passes.

Run with::

    python examples/serve_quickstart.py
"""

import threading

from repro import prepare
from repro.engine import Database, Relation
from repro.query import parse_query
from repro.serve import ServeClient, serve


def main() -> None:
    query = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
    db = Database(
        {
            "R": Relation(["A", "B"], [(1, 2), (3, 2), (4, 7)]),
            "S": Relation(["B", "C"], [(2, 9), (7, 5)]),
        }
    )
    session = prepare(query, db)
    server = serve(session, default_epsilon=2.0).start_background()
    print(f"serving {query.name} on {server.host}:{server.port}")

    with ServeClient(server.host, server.port, tenant="alice") as client:
        # Reads carry the epoch they executed at.
        print(f"|Q(D)| = {client.count()}  (epoch {client.last_epoch})")
        sens = client.sensitivity()
        print(
            f"local sensitivity = {sens['local_sensitivity']}"
            f"  witness in {sens['witness']['relation']}"
        )
        # "What would this insert cost?" without committing anything.
        for row, w in zip([(2, 0), (9, 9)], client.probe("S", [(2, 0), (9, 9)])):
            print(f"probe S{row}: inserting it changes the count by {w}")

        # One atomic batch; the head moves to a fresh immutable epoch.
        applied = client.apply(
            [("insert", "R", (5, 2)), ("delete", "S", (7, 5))]
        )
        print(
            f"after batch: |Q(D)| = {applied['count']}"
            f"  (epoch {client.last_epoch})"
        )

        # A noisy release, charged to alice's server-side budget.
        outcome = client.release(1.0, mechanism="tsensdp", primary="R", ell=10)
        print(
            f"TSensDP release: answer = {outcome['answer']:.2f}"
            f"  (true count {outcome['true_count']}, epsilon 1.0)"
        )

    # A burst of concurrent clients: probes admitted at the same epoch
    # ride one probe-id-tagged pass instead of one pass per request.
    def probe_once() -> None:
        with ServeClient(server.host, server.port) as c:
            c.probe("S", [(2, 41), (2, 42)])

    burst = [threading.Thread(target=probe_once) for _ in range(8)]
    for t in burst:
        t.start()
    for t in burst:
        t.join()

    with ServeClient(server.host, server.port) as client:
        admission = client.stats()["admission"]
        print(
            f"coalescing: {admission['probe_requests']} probe requests"
            f" -> {admission['probe_passes']} vectorized passes"
        )

    server.stop()
    session.close()
    print("server drained and stopped")


if __name__ == "__main__":
    main()
