"""Property tests for the upper-bound methods (Elastic, top-k TSens)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import elastic_sensitivity
from repro.core import naive_local_sensitivity, tsens, tsens_topk
from repro.datasets import random_acyclic_query, random_database

seeds = st.integers(min_value=0, max_value=10_000)


class TestElasticBound:
    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_elastic_upper_bounds_naive(self, seed, num_atoms):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng)
        exact = naive_local_sensitivity(query, db).local_sensitivity
        assert elastic_sensitivity(query, db) >= exact


class TestTopKBound:
    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_topk_upper_bounds_exact(self, seed, k):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        db = random_database(query, rng)
        exact = tsens(query, db).local_sensitivity
        assert tsens_topk(query, db, k=k).local_sensitivity >= exact

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_topk_converges(self, seed):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        db = random_database(query, rng)
        exact = tsens(query, db).local_sensitivity
        assert tsens_topk(query, db, k=10_000).local_sensitivity == exact
