"""Baseline sensitivity estimators the paper compares against."""

from repro.baselines.elastic import (
    JoinPlan,
    elastic_per_relation,
    elastic_sensitivity_at_distance,
    elastic_sensitivity,
    plan_from_tree,
)
from repro.baselines.reeval import reevaluation_sensitivity

__all__ = [
    "JoinPlan",
    "elastic_per_relation",
    "elastic_sensitivity_at_distance",
    "elastic_sensitivity",
    "plan_from_tree",
    "reevaluation_sensitivity",
]
