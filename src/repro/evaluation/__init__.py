"""Query evaluation over decomposition trees (Yannakakis-style)."""

from repro.evaluation.incremental import PROBE_ATTRIBUTE, IncrementalEvaluator
from repro.evaluation.yannakakis import (
    BoundTree,
    bind,
    compute_botjoins,
    count_bound,
    count_query,
    default_tree,
    evaluate_bound,
    evaluate_query,
    naive_join,
    semijoin_reduce,
)

__all__ = [
    "BoundTree",
    "IncrementalEvaluator",
    "PROBE_ATTRIBUTE",
    "bind",
    "compute_botjoins",
    "count_bound",
    "count_query",
    "default_tree",
    "evaluate_bound",
    "evaluate_query",
    "naive_join",
    "semijoin_reduce",
]
