"""The paper's four Facebook ego-network queries (Fig. 5b).

All run over the tables built by
:func:`repro.datasets.facebook.generate_ego_network`:

* **q4 / q△** — triangle query ``R1(A,B), R2(B,C), R3(C,A)``; cyclic, with
  the paper's hypertree ``{R1,R2} / {R3}``;
* **qw** — path query ``R1(A,B), R2(B,C), R3(C,D), R4(D,E)``;
* **q◦** — 4-cycle ``R1(A,B), R2(B,C), R3(C,D), R4(D,A)``; hypertree
  ``{R1,R2} / {R3,R4}``;
* **q★** — star join ``q★(A,B,C)``.  The figure in the paper's source is
  garbled; we reconstruct it as ``R1(A,B), R2(B,C), TRI(A,B,C)`` over the
  triangle table the dataset section defines — acyclic (consistent with
  the paper naming only q4 and q◦ as non-acyclic) and with a small true
  local sensitivity, matching the parameter-analysis section.

The DP experiments use ``R2`` as the primary private relation, as in
Sec. 7.3, with the paper's ℓ values per query.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.ghd import ghd_from_groups
from repro.workloads.base import Workload


def _identity(base: Database) -> Database:
    return base


def triangle_workload() -> Workload:
    """q4 (q△): the triangle query with hypertree {R1,R2} / {R3}."""
    query = ConjunctiveQuery(
        [Atom("R1", ("A", "B")), Atom("R2", ("B", "C")), Atom("R3", ("C", "A"))],
        name="q4",
    )
    tree = ghd_from_groups(
        query,
        groups={"g12": ["R1", "R2"], "g3": ["R3"]},
        root="g12",
        parent={"g3": "g12"},
    )
    return Workload(
        name="q4",
        query=query,
        prepare=_identity,
        tree=tree,
        primary="R2",
        ell=70,
        description="triangle query over circle edge tables",
    )


def path_workload() -> Workload:
    """qw: the 4-hop path query."""
    query = ConjunctiveQuery(
        [
            Atom("R1", ("A", "B")),
            Atom("R2", ("B", "C")),
            Atom("R3", ("C", "D")),
            Atom("R4", ("D", "E")),
        ],
        name="qw",
    )
    return Workload(
        name="qw",
        query=query,
        prepare=_identity,
        tree=None,  # path algorithm applies
        primary="R2",
        ell=25_000,
        description="length-4 path join over circle edge tables",
    )


def cycle_workload() -> Workload:
    """q◦: the 4-cycle query with hypertree {R1,R2} / {R3,R4}."""
    query = ConjunctiveQuery(
        [
            Atom("R1", ("A", "B")),
            Atom("R2", ("B", "C")),
            Atom("R3", ("C", "D")),
            Atom("R4", ("D", "A")),
        ],
        name="q_cycle",
    )
    tree = ghd_from_groups(
        query,
        groups={"g12": ["R1", "R2"], "g34": ["R3", "R4"]},
        root="g12",
        parent={"g34": "g12"},
    )
    return Workload(
        name="q_cycle",
        query=query,
        prepare=_identity,
        tree=tree,
        primary="R2",
        ell=200,
        description="4-cycle query over circle edge tables",
    )


def star_workload() -> Workload:
    """q★: the star join against the triangle table (see module docstring
    for the reconstruction note)."""
    query = ConjunctiveQuery(
        [
            Atom("R1", ("A", "B")),
            Atom("R2", ("B", "C")),
            Atom("TRI", ("A", "B", "C")),
        ],
        name="q_star",
    )
    return Workload(
        name="q_star",
        query=query,
        prepare=_identity,
        tree=None,  # acyclic: R1 and R2 are ears of TRI
        primary="R2",
        ell=15,
        description="star join of edge tables with the triangle table",
    )


def facebook_workloads() -> list:
    """All four Facebook workloads in paper order (q4, qw, q◦, q★)."""
    return [triangle_workload(), path_workload(), cycle_workload(), star_workload()]
