"""The central correctness property: TSens ≡ brute force (Theorem 5.1).

Hypothesis drives random acyclic queries and random instances through both
the TSens join-tree algorithm and the Theorem 3.1 brute-force oracle, and
demands identical local sensitivities *and* identical per-relation most
sensitive values.  A second property does the same for the path algorithm
(Theorem 4.1) and for cyclic queries via GHDs.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    local_sensitivity,
    ls_path_join,
    naive_local_sensitivity,
    tsens,
)
from repro.datasets import random_acyclic_query, random_database, random_path_query
from repro.engine import Database, Relation
from repro.query import parse_query

seeds = st.integers(min_value=0, max_value=10_000)


class TestAcyclicEquivalence:
    @given(seeds, st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_tsens_equals_naive(self, seed, num_atoms):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng)
        fast = tsens(query, db)
        slow = naive_local_sensitivity(query, db)
        assert fast.local_sensitivity == slow.local_sensitivity
        for relation in query.relation_names:
            assert (
                fast.per_relation[relation].sensitivity
                == slow.per_relation[relation].sensitivity
            )

    @given(seeds, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_witness_sensitivity_is_attained(self, seed, num_atoms):
        """The reported witness must actually have the reported sensitivity
        when re-measured by direct evaluation."""
        from repro.core import naive_tuple_sensitivity

        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng)
        result = tsens(query, db)
        if result.witness is None:
            return
        atom = query.atom(result.witness.relation)
        row = result.witness.as_row(atom.variables)
        measured = naive_tuple_sensitivity(
            query, db, result.witness.relation, row
        )
        assert measured == result.witness.sensitivity


class TestPathEquivalence:
    @given(seeds, st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_path_equals_naive_and_tsens(self, seed, length):
        rng = np.random.default_rng(seed)
        query = random_path_query(rng, length=length)
        db = random_database(query, rng)
        path = ls_path_join(query, db)
        slow = naive_local_sensitivity(query, db)
        tree_based = tsens(query, db)
        assert (
            path.local_sensitivity
            == slow.local_sensitivity
            == tree_based.local_sensitivity
        )
        for relation in query.relation_names:
            assert (
                path.per_relation[relation].sensitivity
                == slow.per_relation[relation].sensitivity
            )


class TestCyclicEquivalence:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_triangle_ghd_equals_naive(self, seed):
        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db = random_database(query, rng, domain_size=3, max_rows=5)
        fast = local_sensitivity(query, db)
        slow = naive_local_sensitivity(query, db)
        assert fast.local_sensitivity == slow.local_sensitivity

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_four_cycle_ghd_equals_naive(self, seed):
        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,D), R4(D,A)")
        db = random_database(query, rng, domain_size=2, max_rows=4)
        fast = local_sensitivity(query, db)
        slow = naive_local_sensitivity(query, db)
        assert fast.local_sensitivity == slow.local_sensitivity


class TestSelectionsEquivalence:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_selection_pushdown_is_exact(self, seed):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        db = random_database(query, rng)
        target = query.relation_names[int(rng.integers(0, 3))]
        pivot = int(rng.integers(0, 3))
        first_var = query.atom(target).variables[0]
        filtered = query.with_selection(
            target, lambda row: row[first_var] != pivot
        )
        fast = tsens(filtered, db)
        slow = naive_local_sensitivity(filtered, db)
        assert fast.local_sensitivity == slow.local_sensitivity
