"""Shared experiment plumbing: timing, caching, and workload execution.

Experiments repeatedly need the same three measurements for a workload on a
database — TSens local sensitivity, Elastic sensitivity, and the query
evaluation count — each with wall-clock timings.  :func:`measure_workload`
bundles them; dataset construction is memoised per (kind, scale, seed) so a
sweep does not regenerate data per query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

from repro.engine.database import Database
from repro.evaluation.yannakakis import count_query
from repro.query.ghd import auto_decompose
from repro.baselines.elastic import elastic_sensitivity, plan_from_tree
from repro.core.result import SensitivityResult
from repro.session import prepare
from repro.datasets.facebook import generate_ego_network
from repro.datasets.tpch import generate_tpch
from repro.workloads.base import Workload


@dataclass
class WorkloadMeasurement:
    """One workload's sensitivity/runtime measurements on one database."""

    workload: str
    tsens_ls: int
    elastic_ls: int
    count: int
    tsens_seconds: float
    elastic_seconds: float
    evaluation_seconds: float
    result: SensitivityResult


@lru_cache(maxsize=16)
def tpch_database(scale: float, seed: int = 0) -> Database:
    """Memoised TPC-H instance."""
    return generate_tpch(scale, seed=seed)


@lru_cache(maxsize=4)
def facebook_database(seed: int = 0) -> Database:
    """Memoised Facebook ego-network instance."""
    return generate_ego_network(seed=seed)


def timed(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` and return (value, elapsed wall-clock seconds)."""
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def measure_workload(
    workload: Workload, base: Database
) -> WorkloadMeasurement:
    """TSens vs Elastic vs query evaluation for one workload.

    Matches the paper's measurement protocol: Elastic pre-processing (max
    frequencies) is *included* in its timing, both analyses use the same
    join order (post-order of the workload's decomposition), and query
    evaluation uses the count-only Yannakakis pass.  TSens runs through
    the session surface — one prepare step whose planning time counts
    towards the TSens measurement, exactly like the one-shot call it
    replaces.
    """
    db = workload.prepared(base)
    session, prepare_seconds = timed(
        lambda: prepare(workload.query, db, tree=workload.tree)
    )
    tree = session.tree if session.tree is not None else auto_decompose(workload.query)

    result, sensitivity_seconds = timed(
        lambda: session.sensitivity(skip_relations=workload.skip_relations)
    )
    tsens_seconds = prepare_seconds + sensitivity_seconds
    elastic_ls, elastic_seconds = timed(
        lambda: elastic_sensitivity(workload.query, db, plan=plan_from_tree(tree))
    )
    count, evaluation_seconds = timed(
        lambda: count_query(workload.query, db, tree=workload.tree)
    )
    return WorkloadMeasurement(
        workload=workload.name,
        tsens_ls=result.local_sensitivity,
        elastic_ls=int(elastic_ls),
        count=int(count),
        tsens_seconds=tsens_seconds,
        elastic_seconds=elastic_seconds,
        evaluation_seconds=evaluation_seconds,
        result=result,
    )
