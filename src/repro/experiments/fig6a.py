"""Experiment E1 — Figure 6a: local sensitivity, TSens vs Elastic, by scale.

Reproduces the paper's Fig. 6a series: for q1, q2, q3 over TPC-H at a sweep
of scale factors, the local sensitivity reported by TSens and the upper
bound reported by Elastic.  The paper's headline shape — Elastic ~6–7×
looser on q1/q2 and orders of magnitude looser on the cyclic q3, with the
gap growing with scale — is asserted in the integration tests.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.experiments.reporting import format_table, ratio
from repro.experiments.runner import measure_workload, tpch_database
from repro.workloads.tpch_queries import tpch_workloads

#: Scales runnable in seconds on this pure-Python engine.  The paper sweeps
#: up to 10; pass larger scales explicitly when you have the time budget.
DEFAULT_SCALES = (0.0001, 0.0003, 0.001, 0.003)

#: q3's GHD node {R,N,L} materialises Nation × Lineitem, which grows 25×
#: faster than the other queries' intermediates — cap its default scale
#: (the paper similarly stops q3 early "due to the memory limit issue").
Q3_MAX_SCALE = 0.003


def run(
    scales: Sequence[float] = DEFAULT_SCALES,
    seed: int = 0,
    queries: Optional[Sequence[str]] = None,
) -> List[Mapping[str, object]]:
    """Run the Fig. 6a sweep; returns one row per (scale, query)."""
    rows: List[Mapping[str, object]] = []
    for scale in scales:
        base = tpch_database(scale, seed)
        for workload in tpch_workloads():
            if queries is not None and workload.name not in queries:
                continue
            if workload.name == "q3" and scale > Q3_MAX_SCALE:
                continue
            m = measure_workload(workload, base)
            rows.append(
                {
                    "scale": scale,
                    "query": workload.name,
                    "tsens_ls": m.tsens_ls,
                    "elastic_ls": m.elastic_ls,
                    "elastic_over_tsens": ratio(m.elastic_ls, m.tsens_ls),
                    "output_count": m.count,
                }
            )
    return rows


def report(rows: Sequence[Mapping[str, object]]) -> str:
    """Text rendering of the Fig. 6a series."""
    return format_table(
        rows,
        columns=[
            "scale",
            "query",
            "tsens_ls",
            "elastic_ls",
            "elastic_over_tsens",
            "output_count",
        ],
        title="Figure 6a — local sensitivity: TSens vs Elastic (TPC-H)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
