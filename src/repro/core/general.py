"""TSens for general queries: disconnected hypergraphs and cyclic queries.

Two Sec. 5.4 extensions on top of :func:`repro.core.acyclic.tsens_connected`:

* **Disconnected join trees** — the join of attribute-disjoint components is
  a cross product, so a tuple's sensitivity within one component multiplies
  by the output counts of all the others.  We run Algorithm 2 per component
  and scale each component's multiplicity tables by the product of the
  other components' counts.
* **General (cyclic) joins** — when no join tree exists, a generalized
  hypertree decomposition groups atoms into nodes (Fig. 5's hypertrees for
  q3, q△, q◦); :func:`repro.query.ghd.auto_decompose` finds one
  automatically when none is supplied.

Both paths run over per-component
:class:`~repro.evaluation.joinstate.JoinState` objects.
:func:`tsens` builds throwaway states (the historical one-shot
behaviour); :func:`tsens_from_states` accepts *maintained* states — the
session layer's, folded under committed updates — so a sensitivity read
after an update reuses every untouched botjoin, topjoin, table factor
and witness instead of recomputing the pipeline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.evaluation.joinstate import JoinState
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.ghd import auto_decompose
from repro.query.jointree import DecompositionTree
from repro.core.acyclic import select_overall_witness, tsens_connected
from repro.core.result import SensitiveTuple, SensitivityResult


def tsens(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[DecompositionTree] = None,
    skip_relations: Iterable[str] = (),
    component_trees: Optional[Mapping[str, DecompositionTree]] = None,
    max_width: int = 3,
) -> SensitivityResult:
    """TSens for any full CQ without self-joins.

    Parameters
    ----------
    query, db:
        The query and instance.
    tree:
        Decomposition for a *connected* query.  Ignored when the query is
        disconnected (use ``component_trees`` instead).
    skip_relations:
        Relations certified to have tuple sensitivity ≤ 1 (superkey
        argument); their tables are not computed.
    component_trees:
        For disconnected queries: optional mapping from a component's first
        relation name to the decomposition to use for that component.
    max_width:
        Node-size cap handed to the automatic GHD search for cyclic
        components without an explicit decomposition.
    """
    query.validate_against(db)
    components = query.connected_components()
    if len(components) == 1:
        if tree is None:
            tree = auto_decompose(query, max_width=max_width)
        return tsens_connected(query, db, tree=tree, skip_relations=skip_relations)

    states: List[JoinState] = []
    for index, component in enumerate(components):
        sub = query.subquery(component, name=f"{query.name}#c{index}")
        key = component[0].relation
        sub_tree = None
        if component_trees and key in component_trees:
            sub_tree = component_trees[key]
        if sub_tree is None:
            sub_tree = auto_decompose(sub, max_width=max_width)
        states.append(JoinState(sub, sub_tree, db))
    return tsens_from_states(query, db, states, skip_relations=skip_relations)


def tsens_from_states(
    query: ConjunctiveQuery,
    db: Database,
    states: Sequence[JoinState],
    skip_relations: Iterable[str] = (),
) -> SensitivityResult:
    """TSens over prebuilt (usually *maintained*) per-component states.

    ``states`` holds one :class:`JoinState` per connected component of
    ``query``, in component order, each bound to ``db`` — exactly what
    :attr:`repro.evaluation.incremental.IncrementalEvaluator.component_states`
    provides.  Component counts come off the maintained root botjoins, so
    the cross-component multipliers cost nothing extra.
    """
    skip = set(skip_relations)
    if len(states) == 1:
        return tsens_connected(
            query, db, skip_relations=skip & set(query.relation_names),
            state=states[0],
        )
    sub_results: List[SensitivityResult] = []
    sub_counts: List[int] = []
    for state in states:
        sub = state.query
        sub_skip = skip & set(sub.relation_names)
        sub_results.append(
            tsens_connected(sub, db, skip_relations=sub_skip, state=state)
        )
        sub_counts.append(state.count)
    return _combine_component_results(query, sub_results, sub_counts)


def _combine_component_results(
    query: ConjunctiveQuery,
    sub_results: Sequence[SensitivityResult],
    sub_counts: Sequence[int],
) -> SensitivityResult:
    """Combine per-component results: sensitivities in component ``i``
    scale by ``∏_{j≠i} |Q_j(D)|`` (the cross-product argument)."""
    per_relation: Dict[str, SensitiveTuple] = {}
    tables = {}
    for index, result in enumerate(sub_results):
        multiplier = 1
        for j, count in enumerate(sub_counts):
            if j != index:
                multiplier *= count
        for relation, table in result.tables.items():
            tables[relation] = table.scaled(multiplier)
        for relation, witness in result.per_relation.items():
            per_relation[relation] = SensitiveTuple(
                relation, witness.assignment, witness.sensitivity * multiplier
            )

    local, witness = select_overall_witness(per_relation)
    return SensitivityResult(
        query_name=query.name,
        method="tsens",
        local_sensitivity=local,
        witness=witness,
        per_relation=per_relation,
        tables=tables,
    )
