"""Known-bad for R006: a bare assert guards a library invariant.

Fixture only — parsed by the analyzer, never imported or executed.
"""


def pick_parent(tree, node_id):
    parent = tree.parent(node_id)
    assert parent is not None  # vanishes under python -O
    return parent
