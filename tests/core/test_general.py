"""Unit tests for :mod:`repro.core.general` — disconnected & cyclic TSens."""

import numpy as np
import pytest

from repro.core import naive_local_sensitivity, tsens
from repro.datasets import random_acyclic_query, random_database
from repro.engine import Database, Relation
from repro.query import Atom, ConjunctiveQuery, ghd_from_groups, parse_query


def union_query(*texts):
    """Glue independent (variable-disjoint) queries into one body."""
    atoms = []
    for text in texts:
        atoms.extend(parse_query(text).atoms)
    return ConjunctiveQuery(atoms, name="Qunion")


class TestDisconnected:
    def test_three_components(self):
        q = union_query("R(A,B), S(B,C)", "T(D)", "U(E)")
        db = Database(
            {
                "R": Relation(["A", "B"], [(1, 2)]),
                "S": Relation(["B", "C"], [(2, 3), (2, 4)]),
                "T": Relation(["D"], [(0,)] * 3),
                "U": Relation(["E"], [(0,), (1,)]),
            }
        )
        fast = tsens(q, db)
        slow = naive_local_sensitivity(q, db)
        assert fast.local_sensitivity == slow.local_sensitivity
        # Adding R(x, 2): 2 (S partners) × 3 (T) × 2 (U) = 12 — the max;
        # S contributes 1×3×2 = 6, T 2×2 = 4, U 2×3 = 6.
        assert fast.local_sensitivity == 12
        assert fast.per_relation["S"].sensitivity == 6
        assert fast.per_relation["T"].sensitivity == 4

    def test_tables_are_scaled(self):
        q = union_query("R(A)", "S(B)")
        db = Database(
            {
                "R": Relation(["A"], [(1,), (1,)]),
                "S": Relation(["B"], [(7,)] * 5),
            }
        )
        result = tsens(q, db)
        # δ of inserting R(1): 5 outputs per copy... table for R must say
        # that any A value has sensitivity |S| = 5 (scaled multiplier).
        assert result.tuple_sensitivity("R", {"A": 1}) == 5
        assert result.tuple_sensitivity("S", {"B": 7}) == 2

    def test_component_trees_override(self, triangle_db):
        # Triangle component + isolated unary component.
        atoms = list(parse_query("R1(A,B), R2(B,C), R3(C,A)").atoms)
        atoms.append(Atom("Z", ("W",)))
        q = ConjunctiveQuery(atoms, name="Qmix")
        db = Database(
            {
                "R1": triangle_db.relation("R1"),
                "R2": triangle_db.relation("R2"),
                "R3": triangle_db.relation("R3"),
                "Z": Relation(["W"], [(0,), (1,)]),
            }
        )
        triangle = q.subquery(tuple(atoms[:3]), name="tri")
        tree = ghd_from_groups(
            triangle,
            groups={"g12": ["R1", "R2"], "g3": ["R3"]},
            root="g12",
            parent={"g3": "g12"},
        )
        fast = tsens(q, db, component_trees={"R1": tree})
        slow = naive_local_sensitivity(q, db)
        assert fast.local_sensitivity == slow.local_sensitivity

    def test_random_disconnected_vs_naive(self):
        rng = np.random.default_rng(17)
        for _ in range(10):
            left = random_acyclic_query(rng, num_atoms=2)
            right_atoms = [
                Atom(f"X{i}", tuple(f"W{i}_{j}" for j in range(2)))
                for i in range(2)
            ]
            # Make the second component connected via one shared variable.
            right_atoms[1] = Atom("X1", (right_atoms[0].variables[1], "W9"))
            atoms = list(left.atoms) + right_atoms
            q = ConjunctiveQuery(atoms, name="Qdis")
            db = random_database(q, rng, max_rows=4)
            fast = tsens(q, db)
            slow = naive_local_sensitivity(q, db)
            assert fast.local_sensitivity == slow.local_sensitivity

    def test_witness_prefers_assigned(self):
        q = union_query("R(A)", "S(B)")
        db = Database(
            {
                "R": Relation(["A"], [(1,)]),
                "S": Relation(["B"], [(7,)]),
            }
        )
        result = tsens(q, db)
        assert result.local_sensitivity == 1
        assert result.witness is not None
        assert result.witness.assignment
