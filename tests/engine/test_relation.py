"""Unit tests for :mod:`repro.engine.relation` — bag semantics throughout."""

import pytest

from repro.engine.relation import Relation, empty_like
from repro.engine.schema import Schema
from repro.exceptions import SchemaError


@pytest.fixture
def bag():
    return Relation(["A", "B"], [(1, 2), (1, 2), (3, 4)])


class TestConstruction:
    def test_from_rows_counts_duplicates(self, bag):
        assert bag.multiplicity((1, 2)) == 2
        assert bag.multiplicity((3, 4)) == 1

    def test_from_mapping(self):
        rel = Relation(["A"], {(1,): 5, (2,): 0})
        assert rel.multiplicity((1,)) == 5
        assert (2,) not in rel  # zero-count entries dropped

    def test_from_schema_object(self):
        rel = Relation(Schema(["A"]), [(1,)])
        assert rel.attributes == ("A",)

    def test_arity_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Relation(["A", "B"], [(1,)])

    def test_negative_multiplicity_raises(self):
        with pytest.raises(SchemaError):
            Relation(["A"], {(1,): -1})

    def test_zero_arity_relation(self):
        unit = Relation(Schema(()), {(): 3})
        assert unit.total_count() == 3
        assert unit.distinct_count() == 1


class TestCounts:
    def test_totals(self, bag):
        assert bag.total_count() == 3
        assert bag.distinct_count() == 2
        assert len(bag) == 2

    def test_is_empty(self, bag):
        assert not bag.is_empty()
        assert Relation(["A"], ()).is_empty()

    def test_iteration_over_distinct(self, bag):
        assert sorted(bag) == [(1, 2), (3, 4)]

    def test_items(self, bag):
        assert dict(bag.items()) == {(1, 2): 2, (3, 4): 1}


class TestColumnStatistics:
    def test_column_values(self, bag):
        assert bag.column_values("A") == frozenset({1, 3})

    def test_max_frequency_single_attribute(self, bag):
        assert bag.max_frequency(("A",)) == 2

    def test_max_frequency_counts_bag_multiplicity(self):
        rel = Relation(["A", "B"], [(1, 2), (1, 3), (1, 2)])
        assert rel.max_frequency(("A",)) == 3

    def test_max_frequency_empty_attributes_is_total(self, bag):
        # The cross-product extension: mf(∅, R) = |R|.
        assert bag.max_frequency(()) == 3

    def test_max_frequency_empty_relation(self):
        assert Relation(["A"], ()).max_frequency(("A",)) == 0

    def test_argmax_count(self, bag):
        row, count = bag.argmax_count()
        assert (row, count) == ((1, 2), 2)

    def test_argmax_deterministic_tie_break(self):
        rel = Relation(["A"], [(2,), (1,)])
        assert rel.argmax_count() == ((1,), 1)

    def test_argmax_empty(self):
        assert Relation(["A"], ()).argmax_count() == (None, 0)


class TestUpdates:
    def test_add_returns_copy(self, bag):
        grown = bag.add((1, 2))
        assert grown.multiplicity((1, 2)) == 3
        assert bag.multiplicity((1, 2)) == 2  # original untouched

    def test_remove_one_copy(self, bag):
        shrunk = bag.remove((1, 2))
        assert shrunk.multiplicity((1, 2)) == 1

    def test_remove_absent_is_noop(self, bag):
        assert bag.remove((9, 9)) is bag

    def test_remove_all_copies(self, bag):
        gone = bag.remove((1, 2), multiplicity=10)
        assert (1, 2) not in gone

    def test_filter(self, bag):
        kept = bag.filter(lambda row: row["A"] == 1)
        assert dict(kept.items()) == {(1, 2): 2}

    def test_rename(self, bag):
        renamed = bag.rename({"A": "X"})
        assert renamed.attributes == ("X", "B")
        assert renamed.multiplicity((1, 2)) == 2

    def test_scale_counts(self, bag):
        scaled = bag.scale_counts(3)
        assert scaled.multiplicity((1, 2)) == 6

    def test_scale_counts_rejects_nonpositive(self, bag):
        with pytest.raises(SchemaError):
            bag.scale_counts(0)


class TestComparison:
    def test_equality(self):
        assert Relation(["A"], [(1,), (1,)]) == Relation(["A"], {(1,): 2})

    def test_not_hashable(self, bag):
        with pytest.raises(TypeError):
            hash(bag)

    def test_same_bag_reorders_columns(self):
        left = Relation(["A", "B"], [(1, 2)])
        right = Relation(["B", "A"], [(2, 1)])
        assert left.same_bag(right)
        assert not left.same_bag(Relation(["B", "A"], [(1, 2)]))

    def test_empty_like(self, bag):
        fresh = empty_like(bag)
        assert fresh.is_empty()
        assert fresh.schema == bag.schema
