"""Blocking NDJSON client for :class:`~repro.serve.server.SessionServer`.

A thin, dependency-free request/response wrapper over one TCP
connection: each call writes a frame, reads the matching response line,
and either returns the ``result`` object or re-raises the server-side
error as the library exception class it names
(:func:`repro.serve.protocol.raise_remote`).  One client is safe to
share between threads (calls serialise on an internal lock), but
concurrency *across the server's coalescing window* is better driven
with one client per thread — separate connections let the event loop
interleave requests, which is what the admission queue batches.

The :attr:`ServeClient.last_epoch` attribute records the epoch id of
the most recent answer, so callers (and the property tests) can check
which committed database version a response was pinned to.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exceptions import ProtocolError, ServeError
from repro.serve.protocol import decode_frame, encode_frame, raise_remote


class ServeClient:
    """One connection to a serving endpoint.

    Parameters
    ----------
    host, port:
        The server's bound address (see
        :attr:`~repro.serve.server.SessionServer.port`).
    tenant:
        Default tenant id for :meth:`release` calls.
    timeout:
        Socket timeout in seconds for connect and each response read.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: Optional[str] = None,
        timeout: float = 60.0,
    ):
        self.tenant = tenant
        self.last_epoch: Optional[int] = None
        self._mutex = threading.Lock()
        self._next_id = 0
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServeError(
                f"could not connect to {host}:{port}: {exc}"
            ) from exc
        self._reader = self._sock.makefile("rb")

    # ---------------------------------------------------------------- core
    def call(self, op: str, **params) -> Dict[str, object]:
        """Send one request and return the full response frame.

        Raises the server-reported exception on ``ok: false`` responses;
        convenience methods below unwrap ``result`` for the common ops.
        """
        with self._mutex:
            self._next_id += 1
            request_id = self._next_id
            frame = encode_frame({"id": request_id, "op": op, **params})
            try:
                self._sock.sendall(frame)
                line = self._reader.readline()
            except (ConnectionError, OSError) as exc:
                raise ServeError(f"connection to server lost: {exc}") from exc
        if not line:
            raise ServeError("server closed the connection")
        payload = decode_frame(line)
        if payload.get("id") != request_id:
            raise ProtocolError(
                f"response id {payload.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if not payload.get("ok"):
            error = payload.get("error")
            if not isinstance(error, dict):
                raise ProtocolError("error response carries no error object")
            raise_remote(error)
        if isinstance(payload.get("epoch"), int):
            self.last_epoch = payload["epoch"]
        return payload

    # -------------------------------------------------------- conveniences
    def count(self) -> int:
        """``|Q(D)|`` at the server's head epoch."""
        return self.call("count")["result"]["count"]

    def probe(
        self, relation: str, rows: Sequence[Sequence[object]]
    ) -> List[int]:
        """``w(t)`` per probe row (see :meth:`PreparedQuery.probe`)."""
        return self.call("probe", relation=relation, rows=[list(r) for r in rows])[
            "result"
        ]["weights"]

    def sensitivity(
        self,
        method: str = "auto",
        skip_relations: Iterable[str] = (),
        top_k: Optional[int] = None,
    ) -> Dict[str, object]:
        """The wire view of ``LS(Q, D)`` (dict; tables never serialised)."""
        return self.call(
            "sensitivity",
            method=method,
            skip_relations=list(skip_relations),
            top_k=top_k,
        )["result"]

    def top_k(
        self, k: int, skip_relations: Iterable[str] = ()
    ) -> Dict[str, object]:
        return self.call("top_k", k=k, skip_relations=list(skip_relations))[
            "result"
        ]

    def explain(self, skip_relations: Iterable[str] = ()) -> Dict[str, object]:
        return self.call("explain", skip_relations=list(skip_relations))[
            "result"
        ]

    def release(
        self, epsilon: float, tenant: Optional[str] = None, **params
    ) -> Dict[str, object]:
        """A per-tenant DP release; ``tenant`` falls back to the client
        default.  Mechanism parameters pass through (``mechanism``,
        ``primary``, ``ell``, ``delta``, ...)."""
        tenant_id = tenant if tenant is not None else self.tenant
        if tenant_id is None:
            raise ServeError(
                "release needs a tenant (per call or as the client default)"
            )
        return self.call(
            "release", epsilon=epsilon, tenant=tenant_id, **params
        )["result"]

    def apply(self, batch: Iterable[Sequence[object]]) -> Dict[str, object]:
        """Commit one update batch; returns ``{"count", "applied"}`` with
        the new epoch id recorded on :attr:`last_epoch`."""
        encoded = [[op, relation, list(row)] for op, relation, row in batch]
        return self.call("apply", batch=encoded)["result"]

    def insert(self, relation: str, row: Sequence[object]) -> int:
        return int(self.apply([("insert", relation, row)])["count"])

    def delete(self, relation: str, row: Sequence[object]) -> int:
        return int(self.apply([("delete", relation, row)])["count"])

    def stats(self) -> Dict[str, object]:
        return self.call("stats")["result"]

    def epoch(self) -> Dict[str, object]:
        return self.call("epoch")["result"]

    def shutdown(self) -> Dict[str, object]:
        """Ask the server to drain and exit."""
        return self.call("shutdown")["result"]

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        with self._mutex:
            try:
                self._reader.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        peer = self._sock.getpeername() if self._sock.fileno() >= 0 else "closed"
        return f"ServeClient({peer}, tenant={self.tenant!r})"


def connect(
    host: str, port: int, tenant: Optional[str] = None, timeout: float = 60.0
) -> ServeClient:
    """Open a client connection (alias for the constructor)."""
    return ServeClient(host, port, tenant=tenant, timeout=timeout)
