"""Unit tests for :mod:`repro.engine.schema`."""

import pytest

from repro.engine.schema import Schema
from repro.exceptions import SchemaError, UnknownAttributeError


class TestConstruction:
    def test_preserves_order(self):
        schema = Schema(["B", "A", "C"])
        assert schema.attributes == ("B", "A", "C")

    def test_arity_and_len(self):
        schema = Schema(["A", "B"])
        assert schema.arity == 2
        assert len(schema) == 2

    def test_empty_schema_allowed(self):
        assert Schema(()).arity == 0

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Schema(["A", "A"])

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Schema(["A", ""])

    def test_rejects_non_string(self):
        with pytest.raises(SchemaError):
            Schema(["A", 3])


class TestLookups:
    def test_index_of(self):
        schema = Schema(["A", "B", "C"])
        assert schema.index_of("B") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            Schema(["A"]).index_of("Z")

    def test_contains(self):
        schema = Schema(["A", "B"])
        assert "A" in schema
        assert "Z" not in schema

    def test_project_positions_follows_argument_order(self):
        schema = Schema(["A", "B", "C"])
        assert schema.project_positions(["C", "A"]) == (2, 0)


class TestCombinators:
    def test_common_in_self_order(self):
        left = Schema(["A", "B", "C"])
        right = Schema(["C", "B", "Z"])
        assert left.common(right) == ("B", "C")

    def test_union_appends_new_attributes(self):
        left = Schema(["A", "B"])
        right = Schema(["B", "C"])
        assert left.union(right).attributes == ("A", "B", "C")

    def test_restricted_to(self):
        schema = Schema(["A", "B", "C"])
        assert schema.restricted_to(["C", "A"]).attributes == ("A", "C")

    def test_restricted_to_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            Schema(["A"]).restricted_to(["B"])


class TestEquality:
    def test_equal_schemas(self):
        assert Schema(["A", "B"]) == Schema(["A", "B"])

    def test_order_matters(self):
        assert Schema(["A", "B"]) != Schema(["B", "A"])

    def test_hashable(self):
        assert {Schema(["A"]): 1}[Schema(["A"])] == 1

    def test_iteration(self):
        assert list(Schema(["X", "Y"])) == ["X", "Y"]
