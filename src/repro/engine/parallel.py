"""Persistent worker pool fanning columnar kernels across hash shards.

:class:`ParallelContext` is the sharded-execution front end the evaluation
layer talks to.  With ``workers=1`` (the default everywhere) every method
falls through to the serial operators in :mod:`repro.engine.operators`, so
the context is free and behavior is bit-identical to a build without this
module.  With ``workers=N`` it keeps ``N`` long-lived worker processes and
implements:

* ``join`` / ``join_group`` — co-partition both operands on a shared join
  attribute (:mod:`repro.engine.sharding`), run the vectorized join (with
  the final group-by fused into the worker) per shard, and reduce the
  partials on the coordinator.  When the grouping drops the partition
  attribute the shard outputs are *partial* group sums and are regrouped
  with the overflow-checked union kernel; otherwise they are disjoint and
  simply concatenate.
* ``group_by`` — partition on a grouping attribute; disjoint partials.
* ``semijoin`` — co-partition on a shared attribute; disjoint survivors.
* ``filter`` — row-block partition; workers need real dictionary values
  for selection predicates, so the vocabulary is incrementally replicated
  to workers first (append-only, so replication is a suffix send).

Exactness: hash co-partitioning sends every joinable pair of rows to the
same shard, every output row retains the partition attribute (so shard
outputs are disjoint), and regrouped partials go through the same
overflow-checked ``union_all`` kernel the serial fold uses.  Order may
differ from the serial plan, but relations are bags — every consumer above
the engine is order-independent — so counts, sensitivities and tie-breaks
agree exactly.  The property suite
``tests/property/test_sharded_equivalence.py`` pins this.

Vocabulary discipline: workers receive *read-only* vocabulary replicas —
``encode`` raises :class:`~repro.exceptions.InternalError`, so no worker
can mutate the shared dictionary — and
:func:`~repro.engine.columnar.reset_vocabulary` is vetoed while any live
context has pinned a vocabulary, because shard codes already exported to
workers would silently decode against the wrong dictionary.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine import columnar as _columnar
from repro.engine import operators as _operators
from repro.engine.columnar import ColumnarRelation, _Vocabulary
from repro.engine.relation import Relation
from repro.engine.sharding import (
    ShardMap,
    ShardedRelation,
    chain_partition,
    decode_relation,
    encode_relation,
    encode_result,
    export_exchange,
    gather_exchange,
    import_result,
    release_exchange,
    release_result,
)
from repro.exceptions import InternalError, SessionError

#: Below this many distinct rows (larger operand) a fan-out costs more in
#: partitioning + IPC than the kernel itself; run serial instead.
DEFAULT_MIN_SHARD_ROWS = 8192


def default_worker_count() -> int:
    """Worker count matching the cores this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without affinity (macOS)
        return max(1, os.cpu_count() or 1)


# ================================================================ worker side
class _FrozenVocabulary(_Vocabulary):
    """A worker's read-only vocabulary replica.

    Decoding (``values``/``lookup``) works on whatever prefix has been
    replicated; ``encode`` always raises — workers must never mint codes,
    or the same value could get different codes in different processes and
    joins would silently drop rows.
    """

    __slots__ = ()

    def encode(self, value: object) -> int:
        raise InternalError(
            "sharded worker attempted to encode a new value into the shared "
            "vocabulary; all encoding must happen on the coordinator"
        )


#: Per-worker-process vocabulary replicas, keyed by coordinator generation.
_WORKER_VOCABS: Dict[int, _FrozenVocabulary] = {}


def _worker_vocab(generation: int) -> _FrozenVocabulary:
    vocab = _WORKER_VOCABS.get(generation)
    if vocab is None:
        vocab = _FrozenVocabulary(generation=generation)
        _WORKER_VOCABS[generation] = vocab
    return vocab


def _extend_worker_vocab(generation: int, start: int, values: Sequence[object]) -> None:
    vocab = _worker_vocab(generation)
    if len(vocab.values) != start:
        raise InternalError(
            f"vocabulary replica out of sync: worker has {len(vocab.values)} "
            f"values, coordinator sent suffix starting at {start}"
        )
    for value in values:
        vocab.code_of[value] = len(vocab.values)
        vocab.values.append(value)


def _silence_shm_resource_tracking() -> None:
    """Detach shared-memory segments from this process's resource tracker.

    Workers only *attach* segments the coordinator owns; letting the
    tracker register them makes it unlink blocks still in use and spam
    leak warnings at exit (the well-known attach-side tracker problem,
    fixed upstream only in 3.13's ``track=False``).
    """
    from multiprocessing import resource_tracker

    register = resource_tracker.register
    unregister = resource_tracker.unregister

    def _register(name, rtype):
        if rtype != "shared_memory":
            register(name, rtype)

    def _unregister(name, rtype):
        if rtype != "shared_memory":
            unregister(name, rtype)

    resource_tracker.register = _register
    resource_tracker.unregister = _unregister


def _kernel_join(payload, resolve):
    left = resolve(payload["left"])
    right = resolve(payload["right"])
    out = _operators.join(left, right)
    group = payload.get("group")
    if group is not None:
        out = _operators.group_by(out, group)
    return out


def _kernel_group_by(payload, resolve):
    return _operators.group_by(resolve(payload["relation"]), payload["attrs"])


def _kernel_semijoin(payload, resolve):
    return _operators.semijoin(resolve(payload["left"]), resolve(payload["right"]))


def _kernel_filter(payload, resolve):
    return resolve(payload["relation"]).filter(payload["predicate"])


_KERNELS = {
    "join": _kernel_join,
    "group_by": _kernel_group_by,
    "semijoin": _kernel_semijoin,
    "filter": _kernel_filter,
}


# ------------------------------------------------- worker-resident pipelines
#: Per-worker register arenas, keyed by ``(state_id, shard_id)``.  Each
#: arena holds this shard's slice of the resident relations a
#: :class:`WorkerState` tracks on the coordinator; it lives until the
#: coordinator drops the state (or the worker process dies, which bumps
#: the pool epoch and invalidates every coordinator handle).
_WORKER_RESIDENT: Dict[Tuple[str, int], Dict[str, object]] = {}


def _chain_segment(payload, resolve):
    """Execute one pipeline-plan segment against this worker's arena.

    Steps operate on named registers in the arena directly, so registers
    written by one segment (or a previous plan of the same state) are
    readable by every later one.  Only emitted aggregates, scatter
    descriptors and kept-register totals return to the coordinator — the
    intermediates themselves never leave the worker.
    """
    shard_id = payload["shard"]
    n_shards = payload["n_shards"]
    arena = _WORKER_RESIDENT.setdefault((payload["state"], shard_id), {})
    inputs = payload.get("inputs", {})
    exchanges = payload.get("exchanges", {})
    out = {"emits": {}, "scatters": {}, "kept": {}}
    for step in payload["steps"]:
        op = step[0]
        if op == "load":
            # Loads must own their arrays: the register outlives this
            # task, so a zero-copy view into the transfer segment would
            # dangle.  import_result copies out and unlinks the segment
            # (the coordinator disowned it); inline payloads already own
            # their data.
            relation_payload = inputs[step[1]]
            if relation_payload[0] == "shm":
                arena[step[1]] = import_result(
                    relation_payload, _worker_vocab(relation_payload[4])
                )
            else:
                arena[step[1]] = resolve(relation_payload)
        elif op == "join":
            _, target, left, right = step
            arena[target] = _operators.join(arena[left], arena[right])
        elif op == "group":
            _, target, source, attrs = step
            arena[target] = _operators.group_by(arena[source], attrs)
        elif op == "scatter":
            _, target, source, attribute = step
            out["scatters"][target] = export_exchange(
                arena[source], attribute, n_shards
            )
        elif op == "collect":
            arena[step[1]] = gather_exchange(
                exchanges[step[1]], shard_id, _worker_vocab
            )
        elif op == "emit":
            _, name, source = step
            out["emits"][name] = encode_result(arena[source])
        elif op == "keep":
            _, name, source = step
            relation = arena[source]
            arena[name] = relation
            out["kept"][name] = relation.total_count()
        elif op == "free":
            arena.pop(step[1], None)
        else:
            raise InternalError(f"unknown pipeline step {op!r}")
    return out


def _chain_state(payload, resolve):
    """Resident-register maintenance ops: fetch / fold / drop."""
    op = payload["op"]
    key = (payload["state"], payload["shard"])
    arena = _WORKER_RESIDENT.get(key)
    if op == "drop":
        names = payload["names"]
        if arena is not None:
            if names is None:
                _WORKER_RESIDENT.pop(key, None)
            else:
                for name in names:
                    arena.pop(name, None)
        return True
    name = payload["name"]
    if arena is None or name not in arena:
        raise InternalError(
            f"resident register {name!r} missing from worker arena "
            f"{key!r}; the coordinator handle is stale"
        )
    if op == "fetch":
        return encode_result(arena[name])
    if op == "fold":
        relation = arena[name]
        attrs = relation.schema.attributes
        for relation_payload, insert in payload["folds"]:
            delta = resolve(relation_payload)
            if delta.is_empty():
                continue
            if delta.schema.attributes != attrs:
                # The staged delta's column order follows its own join
                # chain, not the resident register's; re-grouping on the
                # full attribute list is a pure column permutation of the
                # same bag.
                if set(delta.schema.attributes) != set(attrs):
                    raise InternalError(
                        f"fold delta schema {delta.schema.attributes!r} is "
                        f"not a permutation of register {name!r} schema "
                        f"{attrs!r}"
                    )
                delta = _operators.group_by(delta, attrs)
            relation = (
                _operators.union_all([relation, delta])
                if insert
                else _operators.difference(relation, delta)
            )
        arena[name] = relation
        return relation.total_count()
    raise InternalError(f"unknown state op {op!r}")


#: Chain kernels return their own (already encoded / scalar) payloads —
#: they are dispatched alongside ``_KERNELS`` but skip ``encode_result``.
_CHAIN_KERNELS = {
    "chain": _chain_segment,
    "state": _chain_state,
}


def _execute_task(kind: str, payload) -> Tuple:
    """Run one kernel, attaching/closing shared-memory shards around it.

    Large columnar results go back through a worker-created shared-memory
    segment (:func:`~repro.engine.sharding.encode_result`) — the
    coordinator unlinks it after the copy-out; small results ride the
    pipe inline.
    """
    segments = []

    def resolve(relation_payload):
        relation, segment = decode_relation(relation_payload, _worker_vocab)
        if segment is not None:
            segments.append(segment)
        return relation

    try:
        if kind in _CHAIN_KERNELS:
            return _CHAIN_KERNELS[kind](payload, resolve)
        return encode_result(_KERNELS[kind](payload, resolve))
    finally:
        # Kernel outputs are fresh arrays and the shard views died with the
        # kernel frame, so the mappings can be dropped; if an exception
        # traceback still pins a view, leave the mapping to the OS.
        for segment in segments:
            with contextlib.suppress(BufferError, OSError):
                segment.close()


def _worker_main(conn) -> None:
    """Worker loop: ``(task_id, kind, payload)`` in, ``(task_id, ok, value)``
    out, in order.  ``kind="vocab"`` extends the local replica without a
    reply; ``None`` shuts down."""
    _silence_shm_resource_tracking()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, kind, payload = message
        if kind == "vocab":
            generation, start, values = payload
            _extend_worker_vocab(generation, start, values)
            continue
        try:
            result = (task_id, True, _execute_task(kind, payload))
        except BaseException as exc:  # propagated to the coordinator
            result = (task_id, False, exc)
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            break
        except Exception as exc:  # unpicklable kernel error
            conn.send((task_id, False, InternalError(f"worker error: {exc!r}")))


# ============================================================ coordinator side
class _WorkerHandle:
    __slots__ = ("process", "conn", "synced")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        #: vocabulary generation -> number of values already replicated.
        self.synced: Dict[int, int] = {}


def _shutdown_workers(handles: List[_WorkerHandle]) -> None:
    for handle in handles:
        with contextlib.suppress(OSError, ValueError, BrokenPipeError):
            handle.conn.send(None)
    for handle in handles:
        handle.process.join(timeout=2)
        if handle.process.is_alive():
            handle.process.terminate()
        with contextlib.suppress(OSError):
            handle.conn.close()
    handles.clear()


def _release_task_output(value) -> None:
    """Unlink whatever shared memory a successful task reply owns.

    Per-op kernels reply with one encoded relation payload; chain
    segments reply with a dict whose ``emits`` are encoded payloads and
    whose ``scatters`` are disowned exchange descriptors.  Error paths
    must walk both shapes or a failed sibling task strands segments.
    """
    if isinstance(value, dict):
        for payload in value.get("emits", {}).values():
            release_result(payload)
        for descriptor in value.get("scatters", {}).values():
            release_exchange(descriptor)
        return
    release_result(value)


class WorkerPool:
    """``n`` persistent worker processes fed over one pipe each.

    Workers are started lazily on the first :meth:`run` (fork where
    available — shard payloads are tiny either way, the data rides in
    shared memory).  Tasks are round-robined; each worker answers its
    tasks in order, so collection is deterministic.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None):
        if workers < 1:
            raise SessionError(f"worker pool needs at least 1 worker, got {workers}")
        self.workers = workers
        method = start_method or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._mp = multiprocessing.get_context(method)
        self._handles: List[_WorkerHandle] = []
        self._closed = False
        self._epoch = 0
        self._finalizer = weakref.finalize(self, _shutdown_workers, self._handles)

    @property
    def epoch(self) -> int:
        """Incarnation counter: bumps every (re)spawn of the worker set.

        Worker-resident state (:class:`WorkerState` arenas, vocabulary
        replicas) lives in the worker processes, so a handle created
        against one epoch is worthless after a restart; holders compare
        epochs instead of guessing.
        """
        return self._epoch

    def _ensure_started(self) -> None:
        if self._closed:
            raise SessionError("worker pool is closed")
        if self._handles and any(
            not handle.process.is_alive() for handle in self._handles
        ):
            # A worker died (crash, OOM kill): the survivors hold arenas
            # whose peer shards are gone, so the whole set restarts and
            # the epoch bump tells every holder of resident state that
            # its registers evaporated.
            _shutdown_workers(self._handles)
        if self._handles:
            return
        self._epoch += 1
        for _ in range(self.workers):
            parent_conn, child_conn = self._mp.Pipe()
            process = self._mp.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            self._handles.append(_WorkerHandle(process, parent_conn))

    def sync_vocabulary(self, vocab: _Vocabulary) -> None:
        """Replicate the vocabulary suffix workers have not seen yet."""
        self._ensure_started()
        size = len(vocab.values)
        for handle in self._handles:
            done = handle.synced.get(vocab.generation, 0)
            if done < size:
                handle.conn.send(
                    (-1, "vocab", (vocab.generation, done, vocab.values[done:size]))
                )
                handle.synced[vocab.generation] = size

    def run(self, tasks: Sequence[Tuple[str, dict]]) -> List:
        """Run ``(kind, payload)`` tasks across the pool; results in order.

        A worker exception is re-raised here (real exception objects
        travel back over the pipe, so ``MultiplicityOverflowError`` from a
        shard behaves exactly like the serial overflow).
        """
        self._ensure_started()
        conns = []
        pipe_failure: Optional[BaseException] = None
        for index, (kind, payload) in enumerate(tasks):
            conn = self._handles[index % len(self._handles)].conn
            try:
                conn.send((index, kind, payload))
            except (BrokenPipeError, OSError) as exc:
                pipe_failure = exc
                break
            conns.append(conn)
        results: List = [None] * len(tasks)
        failure: Optional[BaseException] = None
        for index, conn in enumerate(conns):
            if pipe_failure is not None:
                # A pipe already failed.  The surviving workers still owe
                # one reply each for tasks already sent; drain those so
                # their disowned result segments unlink instead of
                # stranding until interpreter exit.
                with contextlib.suppress(EOFError, OSError):
                    if conn.poll(1.0):
                        _, ok, value = conn.recv()
                        if ok:
                            _release_task_output(value)
                continue
            try:
                task_id, ok, value = conn.recv()
            except (EOFError, OSError) as exc:
                pipe_failure = exc
                continue
            if task_id != index:
                if ok:
                    _release_task_output(value)
                pipe_failure = InternalError(
                    f"worker reply out of order: expected task {index}, "
                    f"got {task_id}"
                )
                continue
            if ok:
                results[index] = value
            elif failure is None:
                failure = value
        if pipe_failure is not None:
            for value in results:
                if value is not None:
                    _release_task_output(value)
            raise InternalError(
                "sharded worker died mid-task; coordinator state is "
                f"unchanged (pipe error: {pipe_failure!r})"
            ) from pipe_failure
        if failure is not None:
            for value in results:
                if value is not None:
                    _release_task_output(value)
            raise failure
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._finalizer()


# ------------------------------------------------------------- combination
def _combine(parts: List, regroup: bool):
    """Reduce per-shard kernel outputs into one relation.

    ``regroup=False``: shard outputs are disjoint (each row carries the
    partition attribute), so they concatenate without deduplication.
    ``regroup=True``: shard outputs are partial group sums over the same
    keys, reduced with the overflow-checked union kernel.
    """
    first = parts[0]
    if isinstance(first, ColumnarRelation):
        if regroup:
            return _columnar.union_all(parts)
        vocab = first._vocab
        codes = [
            np.concatenate([part._codes[j] for part in parts])
            for j in range(first.schema.arity)
        ]
        mult = np.concatenate([part._mult for part in parts])
        return ColumnarRelation._from_parts(first.schema, codes, mult, vocab=vocab)
    merged: Dict = {}
    for part in parts:
        for row, count in part.counts.items():
            merged[row] = merged.get(row, 0) + count
    return Relation._from_counts(first.schema, merged)


# ------------------------------------------------- pipeline plans (resident)
def _split_segments(steps: Sequence[Tuple]) -> List[Tuple[Tuple, ...]]:
    """Cut a step list into dispatchable segments at exchange barriers.

    A ``collect`` needs the scatter descriptors from *every* shard, so a
    collect whose exchange was scattered inside the current segment forces
    a barrier: the segment ends, the coordinator gathers the descriptors
    from all workers' replies, and the collect opens the next segment.
    Collects of exchanges scattered in an *earlier* segment already have
    their descriptors and need no new cut.
    """
    segments: List[List[Tuple]] = [[]]
    scattered: set = set()
    for step in steps:
        if step[0] == "collect" and step[1] in scattered:
            segments.append([])
            scattered = set()
        segments[-1].append(step)
        if step[0] == "scatter":
            scattered.add(step[1])
    return [tuple(segment) for segment in segments if segment]


@dataclass(frozen=True)
class PipelinePlan:
    """A compiled per-shard program over named worker-resident registers.

    ``steps`` is the straight-line program every shard runs (see
    :func:`_chain_segment` for the step vocabulary).  ``loads`` maps each
    coordinator-supplied input register to the attribute it is partitioned
    on; ``reads`` names registers that must already be resident from an
    earlier plan of the same :class:`WorkerState`; ``keeps`` maps
    registers left resident after the plan to their partition attribute
    (the attribute later delta folds co-partition on); ``emits`` names the
    per-shard aggregates returned to the coordinator.
    """

    steps: Tuple[Tuple, ...]
    loads: Mapping[str, str] = field(default_factory=dict)
    reads: Tuple[str, ...] = ()
    keeps: Mapping[str, str] = field(default_factory=dict)
    emits: Tuple[str, ...] = ()

    def segments(self) -> List[Tuple[Tuple, ...]]:
        return _split_segments(self.steps)


class WorkerState:
    """Coordinator handle over one family of worker-resident registers.

    Each worker process holds shard ``i`` of every register in its own
    arena (:data:`_WORKER_RESIDENT`), keyed by this state's id; the
    coordinator tracks only each register's partition attribute and total
    count.  Registers survive across :meth:`run_plan` calls — that is the
    point: botjoin partials stay put between the bottom-up and top-down
    sweeps, and maintained update deltas fold in without re-sharding.

    A pool restart (crashed worker) bumps the pool epoch; this handle
    notices on the next call and reports its registers gone rather than
    reading another incarnation's arenas.
    """

    def __init__(self, context: "ParallelContext", state_id: str):
        if context._pool is None:
            raise InternalError("WorkerState needs a multi-worker context")
        self._context = context
        self._pool = context._pool
        self.state_id = state_id
        self.workers = context.workers
        #: resident register name -> partition attribute.
        self.registers: Dict[str, str] = {}
        self._totals: Dict[str, int] = {}
        self._epoch: Optional[int] = None
        self._closed = False

    # ----------------------------------------------------------- liveness
    def sync_registers(self) -> None:
        """Reconcile with the pool incarnation; must precede any dispatch.

        Starts (or restarts) the pool, and if the epoch moved — a worker
        died and the set respawned — forgets every register: the arenas
        they named died with the old processes.
        """
        if self._closed:
            raise InternalError("WorkerState used after close()")
        self._pool._ensure_started()
        if self._epoch != self._pool.epoch:
            self.registers.clear()
            self._totals.clear()
            self._epoch = self._pool.epoch

    def total(self, name: str) -> Optional[int]:
        return self._totals.get(name)

    # ---------------------------------------------------------- execution
    def run_plan(self, plan: PipelinePlan, inputs: Mapping[str, object]) -> Dict:
        """Run one compiled chain across all shards; return reduced emits.

        Inputs are chain-partitioned once on the coordinator; everything
        after that stays worker-side except exchange descriptors, emitted
        aggregates and kept-register totals.  On any failure the state's
        registers are dropped (the arenas may be half-written) and all
        in-flight shared memory is released before re-raising.
        """
        self.sync_registers()
        missing = [name for name in plan.reads if name not in self.registers]
        if missing:
            raise InternalError(
                f"pipeline plan reads non-resident registers {missing!r} "
                f"of state {self.state_id!r}"
            )
        load_payloads: Dict[str, List] = {}
        try:
            for name, attribute in plan.loads.items():
                relation = inputs[name]
                if isinstance(relation, ColumnarRelation):
                    self._context._pin_vocabulary(relation)
                parts = chain_partition(relation, attribute, self.workers)
                # encode_result, not encode_relation: big shards ride
                # shared memory to the workers, which copy out and unlink.
                load_payloads[name] = [encode_result(part) for part in parts]
        except BaseException:
            for payloads in load_payloads.values():
                for payload in payloads:
                    release_result(payload)
            raise
        emit_parts: Dict[str, List] = {name: [] for name in plan.emits}
        kept_totals: Dict[str, int] = {}
        pending: Dict[str, List] = {}
        consumed_loads: set = set()
        try:
            for segment in plan.segments():
                loads = [step[1] for step in segment if step[0] == "load"]
                collects = [step[1] for step in segment if step[0] == "collect"]
                tasks = [
                    (
                        "chain",
                        {
                            "state": self.state_id,
                            "shard": shard,
                            "n_shards": self.workers,
                            "steps": segment,
                            "inputs": {
                                name: load_payloads[name][shard] for name in loads
                            },
                            "exchanges": {
                                name: pending[name] for name in collects
                            },
                        },
                    )
                    for shard in range(self.workers)
                ]
                results = self._pool.run(tasks)
                consumed_loads.update(loads)
                for name in collects:
                    for descriptor in pending.pop(name):
                        release_exchange(descriptor)
                for result in results:
                    for name, payload in result["emits"].items():
                        emit_parts[name].append(payload)
                    for name, descriptor in result["scatters"].items():
                        pending.setdefault(name, []).append(descriptor)
                    for name, total in result["kept"].items():
                        kept_totals[name] = kept_totals.get(name, 0) + total
        except BaseException:
            for name, payloads in load_payloads.items():
                if name not in consumed_loads:
                    for payload in payloads:
                        release_result(payload)
            for descriptors in pending.values():
                for descriptor in descriptors:
                    release_exchange(descriptor)
            for payloads in emit_parts.values():
                for payload in payloads:
                    release_result(payload)
            self.drop()
            raise
        # Loaded registers stay in the arenas too (nothing frees a named
        # register), so later plans may read them; totals are only known
        # for kept registers.
        for name, attribute in plan.loads.items():
            self.registers[name] = attribute
        for name, attribute in plan.keeps.items():
            self.registers[name] = attribute
            self._totals[name] = kept_totals.get(name, 0)
        return self._reduce_emits(emit_parts)

    def _reduce_emits(self, emit_parts: Dict[str, List]) -> Dict:
        """Import per-shard emit payloads and reduce each to one relation.

        The overflow-checked regrouping union is always used: disjoint
        shard outputs union trivially, partial group sums reduce exactly,
        and nothing depends on the compiler proving disjointness.  This
        (with :meth:`fetch`) is the *only* place chain execution is
        allowed to materialise worker output coordinator-side.
        """
        reduced: Dict = {}
        names = list(emit_parts)
        for position, name in enumerate(names):
            payloads = emit_parts[name]
            parts = []
            for index, payload in enumerate(payloads):
                try:
                    parts.append(import_result(payload, self._context._vocab))
                except BaseException:
                    for leftover in payloads[index + 1:]:
                        release_result(leftover)
                    for later in names[position + 1:]:
                        for leftover in emit_parts[later]:
                            release_result(leftover)
                    raise
            reduced[name] = _combine(parts, regroup=True) if parts else None
        return reduced

    # --------------------------------------------------------- maintenance
    def fetch(self, name: str):
        """Materialise one resident register on the coordinator.

        Raises :class:`~repro.exceptions.InternalError` when the register
        is not resident (never seen, dropped, or lost to a pool restart);
        callers recover by recomputing from source relations.
        """
        self.sync_registers()
        if name not in self.registers:
            raise InternalError(
                f"register {name!r} is not resident in state {self.state_id!r}"
            )
        payloads = self._pool.run(
            [
                (
                    "state",
                    {
                        "op": "fetch",
                        "state": self.state_id,
                        "shard": shard,
                        "name": name,
                    },
                )
                for shard in range(self.workers)
            ]
        )
        return self._reduce_emits({name: payloads})[name]

    def fold_delta(
        self,
        name: str,
        folds: Sequence[Tuple[object, bool]],
        expected_total: Optional[int] = None,
    ) -> bool:
        """Fold a batch's ``(delta, insert)`` list into a resident register.

        Deltas are chain-partitioned on the register's own attribute, so
        every shard folds exactly its slice — untouched shards receive an
        empty delta and do no work.  Commit-path semantics: never raises;
        any failure (or a total-count mismatch against the committed
        relation) drops the register and returns ``False`` so the next
        read recomputes.
        """
        try:
            self.sync_registers()
            attribute = self.registers.get(name)
            if attribute is None:
                return False
            shard_folds: List[List] = [[] for _ in range(self.workers)]
            for delta, insert in folds:
                parts = chain_partition(delta, attribute, self.workers)
                for shard, part in enumerate(parts):
                    shard_folds[shard].append((encode_relation(part), insert))
            totals = self._pool.run(
                [
                    (
                        "state",
                        {
                            "op": "fold",
                            "state": self.state_id,
                            "shard": shard,
                            "name": name,
                            "folds": shard_folds[shard],
                        },
                    )
                    for shard in range(self.workers)
                ]
            )
            total = sum(totals)
            self._totals[name] = total
            if expected_total is not None and total != expected_total:
                self.drop([name])
                return False
            return True
        except Exception:
            self.drop([name])
            return False

    def drop(self, names: Optional[Sequence[str]] = None) -> None:
        """Forget registers (all of them by default), worker-side too.

        Never raises — it runs on error paths; if the pool is gone or
        restarted the arenas are already dead and local bookkeeping is
        all there is to clear.
        """
        if names is None:
            dropped: Optional[List[str]] = None
            self.registers.clear()
            self._totals.clear()
        else:
            dropped = [name for name in names if name in self.registers]
            for name in dropped:
                self.registers.pop(name, None)
                self._totals.pop(name, None)
            if not dropped:
                return
        with contextlib.suppress(Exception):
            pool = self._pool
            if pool._closed or not pool._handles or pool.epoch != self._epoch:
                return
            pool.run(
                [
                    (
                        "state",
                        {
                            "op": "drop",
                            "state": self.state_id,
                            "shard": shard,
                            "names": dropped,
                        },
                    )
                    for shard in range(self.workers)
                ]
            )

    def close(self) -> None:
        """Drop every register and retire the handle.  Idempotent."""
        if self._closed:
            return
        self.drop()
        self._closed = True


#: Live contexts consulted by the vocabulary reset guard.
_LIVE_CONTEXTS: "weakref.WeakSet[ParallelContext]" = weakref.WeakSet()


def _vocabulary_reset_guard() -> None:
    for context in list(_LIVE_CONTEXTS):
        if context.active and context.pinned_vocabulary is not None:
            raise InternalError(
                "reset_vocabulary() while a sharded ParallelContext holds "
                "exported code arrays; close() sharded sessions first — "
                "workers would decode stale codes against a fresh dictionary"
            )


_columnar.register_reset_guard(_vocabulary_reset_guard)


class ParallelContext:
    """Sharded execution context: a worker pool plus fan-out operators.

    ``workers=1`` (the default) never starts processes and every operator
    delegates straight to the serial kernels — callers can thread a
    context unconditionally.  ``min_shard_rows`` gates fan-out by operand
    size (tests set it to 0 to force sharding on tiny inputs).

    The context pins the first columnar vocabulary it exports and refuses
    operands from any other vocabulary: codes crossing process boundaries
    must all mean the same values.
    """

    def __init__(
        self,
        workers: int = 1,
        min_shard_rows: int = DEFAULT_MIN_SHARD_ROWS,
        start_method: Optional[str] = None,
        chains: bool = True,
    ):
        if workers < 1:
            raise SessionError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.min_shard_rows = min_shard_rows
        #: whether whole fold chains may run worker-resident
        #: (:meth:`chain_state`); ``False`` pins the PR 7 per-op path,
        #: which the equivalence suites use as a comparison baseline.
        self.chains = chains
        self._pool = WorkerPool(workers, start_method) if workers > 1 else None
        self._vocab: Optional[_Vocabulary] = None
        self._state_counter = 0
        self._closed = False
        if workers > 1:
            _LIVE_CONTEXTS.add(self)

    # ---------------------------------------------------------- lifecycle
    @property
    def active(self) -> bool:
        """Whether operators fan out (more than one worker, not closed)."""
        return self.workers > 1 and not self._closed

    @property
    def pinned_vocabulary(self) -> Optional[_Vocabulary]:
        return self._vocab

    def close(self) -> None:
        """Shut the worker processes down.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._vocab = None
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ParallelContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------ plumbing
    def _pin_vocabulary(self, relation) -> None:
        if not isinstance(relation, ColumnarRelation):
            return
        vocab = relation._vocab
        if self._vocab is None:
            if vocab is not _columnar.current_vocabulary():
                raise InternalError(
                    "sharded execution over a relation from a retired "
                    "vocabulary (reset_vocabulary() was called after it was "
                    "built); rebuild the relation or the session"
                )
            self._vocab = vocab
        elif self._vocab is not vocab:
            raise InternalError(
                "sharded execution across vocabularies: reset_vocabulary() "
                "split this session's relations over two dictionaries; "
                "close() and re-prepare the session"
            )

    def _worth_sharding(self, *relations) -> bool:
        if not self.active:
            return False
        kinds = {type(relation) for relation in relations}
        if len(kinds) != 1:
            return False
        return max(relation.distinct_count() for relation in relations) >= max(
            1, self.min_shard_rows
        )

    def _shard(
        self,
        relation,
        attribute: Optional[str],
        cache: Optional[ShardMap],
        key: Optional[str],
    ) -> Tuple[ShardedRelation, bool]:
        """Partition (or fetch the cached partitioning of) one operand.

        Returns ``(sharded, ephemeral)`` — ephemeral partitionings are
        closed by the caller right after the fan-out.
        """
        self._pin_vocabulary(relation)
        if cache is not None and key is not None:
            return cache.get(key, relation, attribute, self.workers, share=True), False
        return ShardedRelation(relation, attribute, self.workers, share=True), True

    def _run(self, kind: str, payloads: Sequence[dict]) -> List:
        if self._pool is None:
            raise InternalError("fan-out attempted on a serial ParallelContext")
        outputs = self._pool.run([(kind, payload) for payload in payloads])
        return [import_result(output, self._vocab) for output in outputs]

    @staticmethod
    def _partition_attribute(
        common: Sequence[str], group: Optional[Sequence[str]]
    ) -> str:
        if group:
            for attribute in common:
                if attribute in group:
                    return attribute
        return common[0]

    # ----------------------------------------------------------- operators
    def join(
        self,
        left,
        right,
        group: Optional[Sequence[str]] = None,
        cache: Optional[ShardMap] = None,
        left_key: Optional[str] = None,
        right_key: Optional[str] = None,
    ):
        """``r̃join`` (optionally fused with a trailing ``γ_group``).

        Serial fallback when the context is inactive, the operands are
        small or mixed-backend, or the join is a cross product of two
        tiny sides.
        """
        common = left.schema.common(right.schema)
        if not common or not self._worth_sharding(left, right):
            out = _operators.join(left, right)
            return _operators.group_by(out, group) if group is not None else out
        attribute = self._partition_attribute(common, group)
        sharded_left, left_ephemeral = self._shard(left, attribute, cache, left_key)
        sharded_right, right_ephemeral = self._shard(right, attribute, cache, right_key)
        group_payload = tuple(group) if group is not None else None
        try:
            parts = self._run(
                "join",
                [
                    {
                        "left": sharded_left.payloads[i],
                        "right": sharded_right.payloads[i],
                        "group": group_payload,
                    }
                    for i in range(self.workers)
                ],
            )
        finally:
            if left_ephemeral:
                sharded_left.close()
            if right_ephemeral:
                sharded_right.close()
        regroup = group is not None and attribute not in group
        return _combine(parts, regroup)

    def group_by(
        self,
        relation,
        attributes: Sequence[str],
        cache: Optional[ShardMap] = None,
        key: Optional[str] = None,
    ):
        """``γ_A`` with disjoint per-shard partials."""
        if not attributes or not self._worth_sharding(relation):
            return _operators.group_by(relation, attributes)
        attribute = attributes[0]
        sharded, ephemeral = self._shard(relation, attribute, cache, key)
        try:
            parts = self._run(
                "group_by",
                [
                    {"relation": payload, "attrs": tuple(attributes)}
                    for payload in sharded.payloads
                ],
            )
        finally:
            if ephemeral:
                sharded.close()
        return _combine(parts, regroup=False)

    def semijoin(self, left, right):
        """Yannakakis reducer, co-partitioned on a shared attribute."""
        common = left.schema.common(right.schema)
        if not common or not self._worth_sharding(left, right):
            return _operators.semijoin(left, right)
        attribute = common[0]
        sharded_left, _ = self._shard(left, attribute, None, None)
        sharded_right, _ = self._shard(right, attribute, None, None)
        try:
            parts = self._run(
                "semijoin",
                [
                    {
                        "left": sharded_left.payloads[i],
                        "right": sharded_right.payloads[i],
                    }
                    for i in range(self.workers)
                ],
            )
        finally:
            sharded_left.close()
            sharded_right.close()
        return _combine(parts, regroup=False)

    def filter(self, relation, predicate):
        """Selection over row blocks; replicates the vocabulary first."""
        if not self._worth_sharding(relation) or not _picklable_predicate(predicate):
            return relation.filter(predicate)
        if isinstance(relation, ColumnarRelation):
            self._pin_vocabulary(relation)
            self._pool.sync_vocabulary(relation._vocab)
        sharded = ShardedRelation(relation, None, self.workers, share=True)
        try:
            parts = self._run(
                "filter",
                [
                    {"relation": payload, "predicate": predicate}
                    for payload in sharded.payloads
                ],
            )
        finally:
            sharded.close()
        return _combine(parts, regroup=False)

    def join_group(
        self,
        parts: Sequence,
        group: Optional[Sequence[str]],
        cache: Optional[ShardMap] = None,
        keys: Optional[Sequence[Optional[str]]] = None,
    ):
        """Left-deep ``r̃join`` fold of ``parts`` ending in ``γ_group``.

        The bag-identical sharded counterpart of
        ``group_by(join_all(parts), group)`` — the grouping is fused into
        the last join's shard kernels.  ``keys`` (aligned with ``parts``)
        names cacheable operands in ``cache``.
        """
        if keys is None:
            keys = [None] * len(parts)
        if len(parts) == 1:
            if group is None:
                return parts[0]
            return self.group_by(parts[0], group, cache=cache, key=keys[0])
        accumulator = parts[0]
        accumulator_key: Optional[str] = keys[0]
        for index in range(1, len(parts)):
            last = index == len(parts) - 1
            accumulator = self.join(
                accumulator,
                parts[index],
                group=group if last else None,
                cache=cache,
                left_key=accumulator_key,
                right_key=keys[index],
            )
            accumulator_key = None
        return accumulator

    def join_all(self, parts: Sequence, cache=None, keys=None):
        """Left-deep ``r̃join`` fold without a trailing group-by."""
        return self.join_group(parts, None, cache=cache, keys=keys)

    # ------------------------------------------------------ resident chains
    def chain_state(self) -> Optional[WorkerState]:
        """A fresh worker-resident register family, or ``None``.

        ``None`` when the context is serial or chains are disabled —
        callers then stay on the per-op sharded (or serial) path.
        """
        if not (self.active and self.chains):
            return None
        self._state_counter += 1
        return WorkerState(self, f"s{id(self)}-{self._state_counter}")


def _picklable_predicate(predicate) -> bool:
    """Only structural DSL predicates travel to workers; arbitrary
    callables (lambdas, closures) stay on the coordinator."""
    from repro.query.predicates import Predicate

    return isinstance(predicate, Predicate)


def fan_out(parallel: Optional[ParallelContext]) -> bool:
    """True when ``parallel`` is a live multi-worker context."""
    return parallel is not None and parallel.active
