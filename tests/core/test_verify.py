"""Unit tests for the independent result verifier."""

import numpy as np

from repro.core import local_sensitivity, tsens
from repro.core.result import SensitiveTuple
from repro.core.verify import verify_result
from repro.datasets import random_acyclic_query, random_database


class TestVerifyResult:
    def test_fig1_result_verifies(self, fig1_query, fig1_db):
        result = tsens(fig1_query, fig1_db)
        report = verify_result(result, fig1_query, fig1_db, check_tables=True)
        assert report.ok, str(report)
        assert report.checked > 5

    def test_path_result_verifies(self, fig3_query, fig3_db):
        result = local_sensitivity(fig3_query, fig3_db)
        report = verify_result(result, fig3_query, fig3_db, check_tables=True)
        assert report.ok, str(report)

    def test_detects_tampered_witness(self, fig1_query, fig1_db):
        result = tsens(fig1_query, fig1_db)
        result.witness = SensitiveTuple(
            "R1", {"A": "a2", "B": "b2", "C": "c1"}, 999
        )
        report = verify_result(result, fig1_query, fig1_db)
        assert not report.ok
        assert any("claimed 999" in m for m in report.mismatches)

    def test_random_results_verify(self):
        rng = np.random.default_rng(31)
        for _ in range(8):
            query = random_acyclic_query(rng, num_atoms=3)
            db = random_database(query, rng)
            result = tsens(query, db)
            report = verify_result(result, query, db, check_tables=True)
            assert report.ok, str(report)

    def test_selection_tables_verify(self, fig3_query, fig3_db):
        filtered = fig3_query.with_selection("R2", lambda row: row["C"] == "c1")
        result = tsens(filtered, fig3_db)
        report = verify_result(result, filtered, fig3_db, check_tables=True)
        assert report.ok, str(report)

    def test_str_rendering(self, fig1_query, fig1_db):
        result = tsens(fig1_query, fig1_db)
        text = str(verify_result(result, fig1_query, fig1_db))
        assert "verification OK" in text
