"""Unit tests for the TSens explanation/profiling module."""

import pytest

from repro.core import local_sensitivity
from repro.core.explain import explain
from repro.engine import Database, Relation
from repro.query import parse_query
from repro.exceptions import QueryStructureError


class TestExplain:
    def test_local_sensitivity_matches(self, fig1_query, fig1_db):
        report = explain(fig1_query, fig1_db)
        expected = local_sensitivity(fig1_query, fig1_db).local_sensitivity
        assert report.local_sensitivity == expected

    def test_node_profiles_cover_tree(self, fig1_query, fig1_db):
        report = explain(fig1_query, fig1_db)
        assert {n.node_id for n in report.nodes} == {"R1", "R2", "R3", "R4"}
        roots = [n for n in report.nodes if n.topjoin_rows is None]
        assert len(roots) == 1

    def test_table_profiles(self, fig3_query, fig3_db):
        report = explain(fig3_query, fig3_db)
        assert len(report.tables) == 4
        # Path query: every multiplicity table stays factored into two
        # boundary tables (incoming × outgoing) — the doubly-acyclic win.
        for table in report.tables:
            assert len(table.factor_sizes) >= 1
            assert table.dense_size_if_materialised >= max(table.factor_sizes)

    def test_skip_relations(self, fig1_query, fig1_db):
        report = explain(fig1_query, fig1_db, skip_relations=("R1",))
        assert "R1" not in [t.relation for t in report.tables]

    def test_largest_intermediate(self, fig1_query, fig1_db):
        report = explain(fig1_query, fig1_db)
        assert report.largest_intermediate() >= 1

    def test_str_rendering(self, fig1_query, fig1_db):
        text = str(explain(fig1_query, fig1_db))
        assert "TSens explanation" in text
        assert "multiplicity tables:" in text
        assert "LS=4" in text

    def test_ghd_width_reported(self, triangle_query, triangle_db):
        report = explain(triangle_query, triangle_db)
        assert report.tree_width == 2
        assert report.query_class == "cyclic"

    def test_disconnected_rejected(self):
        q = parse_query("R(A), S(B)")
        db = Database(
            {"R": Relation(["A"], [(1,)]), "S": Relation(["B"], [(2,)])}
        )
        with pytest.raises(QueryStructureError):
            explain(q, db)

    def test_timing_recorded(self, fig1_query, fig1_db):
        assert explain(fig1_query, fig1_db).seconds > 0
