"""Sharded execution (workers > 1) is bag-identical to serial execution.

Sharding is a pure execution strategy: hash co-partitioning sends every
joinable pair of rows to the same shard, shard outputs either stay
disjoint (they carry the partition attribute) or are regrouped through
the same overflow-checked union kernel the serial fold uses.  The
contract pinned here:

* ``count()``, ``sensitivity()`` (including per-relation witnesses) and
  ``top_k()`` on a session prepared with a multi-worker
  :class:`~repro.engine.parallel.ParallelContext` equal the serial
  session, on both execution backends, across acyclic / cyclic-GHD /
  disconnected / selection query shapes.
* The same holds for *maintained* sharded sessions under random
  insert/delete streams interleaved with reads — the sharded botjoin,
  topjoin and table rebuilds fold updates exactly like the serial ones.

The worker pools are module-scoped (spawning processes per hypothesis
example would dominate the suite); ``min_shard_rows=0`` forces fan-out
on the tiny random instances so the sharded code paths actually run.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import prepare
from repro.datasets import (
    random_acyclic_query,
    random_database,
    random_update_stream,
)
from repro.engine.parallel import ParallelContext
from repro.query import parse_predicate, parse_query

seeds = st.integers(min_value=0, max_value=10_000)

BACKENDS = ("python", "columnar")
WORKER_COUNTS = (2, 4)


@pytest.fixture(scope="module")
def contexts():
    pools = {n: ParallelContext(n, min_shard_rows=0) for n in WORKER_COUNTS}
    yield pools
    for context in pools.values():
        context.close()


def _assert_same_result(sharded, serial, query):
    assert sharded.local_sensitivity == serial.local_sensitivity
    for relation in query.relation_names:
        a = sharded.per_relation[relation]
        b = serial.per_relation[relation]
        assert a.sensitivity == b.sensitivity, relation
        assert dict(a.assignment) == dict(b.assignment), relation
    if serial.witness is None:
        assert sharded.witness is None
    else:
        assert sharded.witness is not None
        assert sharded.witness.sensitivity == serial.witness.sensitivity


def _assert_sessions_agree(query, db, contexts, top_k=True):
    serial = prepare(query, db)
    count = serial.count()
    result = serial.sensitivity(method="tsens")
    k_result = serial.top_k(2) if top_k else None
    for context in contexts.values():
        session = prepare(query, db, parallel=context)
        assert session.count() == count
        _assert_same_result(session.sensitivity(method="tsens"), result, query)
        if top_k:
            _assert_same_result(session.top_k(2), k_result, query)


@pytest.mark.parametrize("backend", BACKENDS)
class TestShardedEqualsSerial:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_acyclic(self, backend, seed, contexts):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=1 + int(rng.integers(0, 5)))
        db = random_database(query, rng, backend=backend)
        _assert_sessions_agree(query, db, contexts)

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_cyclic_ghd(self, backend, seed, contexts):
        rng = np.random.default_rng(seed)
        query = parse_query("R1(A,B), R2(B,C), R3(C,A)")
        db = random_database(query, rng, domain_size=3, max_rows=5, backend=backend)
        _assert_sessions_agree(query, db, contexts, top_k=False)

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_disconnected(self, backend, seed, contexts):
        rng = np.random.default_rng(seed)
        query = parse_query("R(A,B), S(B,C), T(X,Y)")
        db = random_database(query, rng, domain_size=4, max_rows=6, backend=backend)
        _assert_sessions_agree(query, db, contexts, top_k=False)

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_selection(self, backend, seed, contexts):
        """DSL predicates travel to the workers (sharded filter path)."""
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=3)
        target = query.relation_names[int(rng.integers(0, 3))]
        pivot = int(rng.integers(0, 3))
        first_var = query.atom(target).variables[0]
        filtered = query.with_selection(
            target, parse_predicate(f"{first_var} != {pivot}")
        )
        db = random_database(query, rng, backend=backend)
        _assert_sessions_agree(filtered, db, contexts)

    @given(seed=seeds, n_updates=st.integers(min_value=1, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_interleaved_stream(self, backend, seed, n_updates, contexts):
        """Maintained sharded state under updates == fresh serial state."""
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=1 + int(rng.integers(0, 4)))
        db = random_database(query, rng, backend=backend)
        sessions = {
            workers: prepare(query, db, parallel=context)
            for workers, context in contexts.items()
        }
        for session in sessions.values():
            session.count()
            session.sensitivity()  # materialise state before the stream
        stream = random_update_stream(query, db, rng, n_updates)
        mutated = None
        for index, (op, relation, row) in enumerate(stream):
            for session in sessions.values():
                if op == "insert":
                    session.insert(relation, row)
                else:
                    session.delete(relation, row)
                mutated = session.db
                if index % 3 == 0:
                    session.count()
                    session.sensitivity()
        if mutated is None:
            mutated = db
        fresh = prepare(query, mutated)
        count = fresh.count()
        result = fresh.sensitivity(method="tsens")
        for session in sessions.values():
            assert session.count() == count
            _assert_same_result(session.sensitivity(method="tsens"), result, query)
