"""Rule registry for ``repro lint``.

:func:`builtin_rules` returns the rules shipped with the repo;
:func:`load_rules` adds any third-party rules advertised through the
``repro.lint_rules`` setuptools entry-point group (each entry point is a
callable returning an iterable of :class:`~repro.analysis.framework.Rule`
instances), so downstream forks can plug in their own contracts without
patching this package.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.framework import LintConfigError, Rule
from repro.analysis.rules.asserts import NoBareAssertRule
from repro.analysis.rules.dispatch import DispatchCompletenessRule
from repro.analysis.rules.invalidation import InvalidateOnMutateRule
from repro.analysis.rules.overflow import CheckedOverflowRule
from repro.analysis.rules.pipeline import ResidentChainMaterialisationRule
from repro.analysis.rules.privacy import PrivacyTaintRule
from repro.analysis.rules.serving import EpochLeaseBoundaryRule
from repro.analysis.rules.staging import StagedCommitRule

_ENTRY_POINT_GROUP = "repro.lint_rules"


def builtin_rules() -> List[Rule]:
    return [
        PrivacyTaintRule(),
        StagedCommitRule(),
        InvalidateOnMutateRule(),
        DispatchCompletenessRule(),
        CheckedOverflowRule(),
        NoBareAssertRule(),
        EpochLeaseBoundaryRule(),
        ResidentChainMaterialisationRule(),
    ]


def _entry_point_rules() -> List[Rule]:
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py<3.8 has no importlib.metadata
        return []
    try:
        eps = entry_points()
        if hasattr(eps, "select"):  # py3.10+
            group = eps.select(group=_ENTRY_POINT_GROUP)
        else:  # pragma: no cover - py3.8/3.9 dict API
            group = eps.get(_ENTRY_POINT_GROUP, [])
    except Exception:  # pragma: no cover - metadata backends vary
        return []
    rules: List[Rule] = []
    builtin_ids = {rule.rule_id for rule in builtin_rules()}
    for entry_point in group:
        try:
            factory = entry_point.load()
        except Exception:  # pragma: no cover - broken third-party plugin
            continue
        if factory is builtin_rules:
            continue  # our own entry point; already included
        for rule in factory():
            if rule.rule_id not in builtin_ids:
                rules.append(rule)
    return rules


def load_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """All available rules, optionally filtered to the ids in ``only``."""
    rules = builtin_rules() + _entry_point_rules()
    if only is None:
        return rules
    by_id: Dict[str, Rule] = {rule.rule_id: rule for rule in rules}
    selected: List[Rule] = []
    for rule_id in only:
        if rule_id not in by_id:
            known = ", ".join(sorted(by_id))
            raise LintConfigError(f"unknown rule {rule_id!r} (known: {known})")
        selected.append(by_id[rule_id])
    return selected
