"""Text and JSON reporters for ``repro lint`` results."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.framework import LintResult, Rule


def render_text(result: LintResult) -> str:
    """Human-oriented report: one ``path:line:col RULE message`` per finding."""
    lines = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.column + 1}: "
            f"{finding.rule} {finding.message}"
        )
    summary = (
        f"{len(result.findings)} finding(s) in {result.checked_files} file(s)"
        f" ({result.suppressed} suppressed, {result.baselined} baselined)"
    )
    if result.stale_baseline:
        summary += (
            f"; {result.stale_baseline} stale baseline entr"
            f"{'y' if result.stale_baseline == 1 else 'ies'}"
            " — run with --update-baseline to age out"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-oriented report (consumed by the CI lint job)."""
    payload = {
        "findings": [finding.as_dict() for finding in result.findings],
        "summary": {
            "findings": len(result.findings),
            "checked_files": result.checked_files,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline": result.stale_baseline,
        },
    }
    return json.dumps(payload, indent=2)


def render_rule_list(rules: Sequence[Rule]) -> str:
    """The ``repro lint --list-rules`` catalog."""
    lines = []
    for rule in sorted(rules, key=lambda r: r.rule_id):
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"      {rule.rationale}")
    return "\n".join(lines)
