"""Shared fixtures for the benchmark suite.

Scales are chosen so the whole suite finishes in minutes on a laptop while
preserving every shape claim; pass larger scales through the experiment
modules (``python -m repro.experiments.fig6a``) for paper-sized runs.

The suite is backend-parametrised: ``pytest benchmarks/ --backend columnar``
runs every benchmark on the vectorized columnar engine.  Each run emits a
machine-readable ``benchmarks/BENCH_<backend>.json`` with per-test wall
times so the performance trajectory of both backends is tracked over time
(compare the two files for the python-vs-columnar picture).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.datasets import generate_ego_network, generate_tpch

#: Default TPC-H scale for the ``tpch_base`` fixture — raised 10× (0.0005 →
#: 0.005) when sharded execution landed, so the heavy joins are big enough
#: for fan-out to bite.  Override per run with ``--tpch-scale`` or the
#: ``REPRO_TPCH_SCALE`` environment variable.
TPCH_SCALE = float(os.environ.get("REPRO_TPCH_SCALE", "0.005"))
SEED = 0


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        action="store",
        default="python",
        choices=("python", "columnar"),
        help="execution backend the benchmark fixtures materialise data on",
    )
    parser.addoption(
        "--tpch-scale",
        action="store",
        type=float,
        default=TPCH_SCALE,
        dest="tpch_scale",
        help="TPC-H scale factor for the tpch_base fixture "
             "(default: %(default)s, or REPRO_TPCH_SCALE)",
    )


def pytest_configure(config):
    config._bench_wall_times = {}


@pytest.fixture(scope="session")
def backend(request):
    return request.config.getoption("--backend")


@pytest.fixture(scope="session")
def tpch_scale(request):
    return request.config.getoption("tpch_scale")


@pytest.fixture(scope="session")
def tpch_base(backend, tpch_scale):
    return generate_tpch(tpch_scale, seed=SEED, backend=backend)


@pytest.fixture(scope="session")
def tpch_small(backend):
    return generate_tpch(0.0001, seed=SEED, backend=backend)


@pytest.fixture(scope="session")
def facebook_base(backend):
    return generate_ego_network(
        nodes=120, directed_edges=2000, num_circles=250, seed=SEED,
        backend=backend,
    )


def _normalized_nodeid(nodeid: str) -> str:
    """Node id relative to this directory, whatever the invocation rootdir.

    ``pytest benchmarks/bench_x.py`` from the repo root and ``pytest
    bench_x.py`` from inside ``benchmarks/`` must key the same timing
    entry, or the merged BENCH_<backend>.json accumulates diverging
    duplicates."""
    prefix = Path(__file__).resolve().parent.name + "/"
    return nodeid[len(prefix):] if nodeid.startswith(prefix) else nodeid


@pytest.fixture(autouse=True)
def _record_wall_time(request):
    """Record per-test wall time for the BENCH_<backend>.json report."""
    start = time.perf_counter()
    yield
    request.config._bench_wall_times[_normalized_nodeid(request.node.nodeid)] = (
        time.perf_counter() - start
    )


def pytest_sessionfinish(session, exitstatus):
    config = session.config
    times = getattr(config, "_bench_wall_times", None)
    if not times or exitstatus != 0:
        # A failed/interrupted run must not clobber good trajectory data.
        return
    backend = config.getoption("--backend")
    out = Path(__file__).resolve().parent / f"BENCH_{backend}.json"
    # Merge into any existing report so filtered runs (-k, single file)
    # update only the tests they actually ran.
    timings = {}
    if out.exists():
        try:
            timings = json.loads(out.read_text()).get("timings_seconds", {})
        except (ValueError, OSError):
            timings = {}
    timings.update({node: round(t, 6) for node, t in times.items()})
    payload = {
        "backend": backend,
        "tpch_scale": config.getoption("tpch_scale"),
        "seed": SEED,
        "timings_seconds": dict(sorted(timings.items())),
    }
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
