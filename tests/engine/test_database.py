"""Unit tests for :mod:`repro.engine.database` — instances, keys, domains."""

import pytest

from repro.engine.database import Database, ForeignKey
from repro.engine.relation import Relation
from repro.exceptions import SchemaError, UnknownRelationError


@pytest.fixture
def db():
    return Database(
        {
            "R": Relation(["A", "B"], [(1, 10), (2, 20)]),
            "S": Relation(["B", "C"], [(10, 5), (10, 6), (30, 7)]),
        }
    )


class TestAccessors:
    def test_relation_lookup(self, db):
        assert db.relation("R").total_count() == 2
        assert db["S"].total_count() == 3

    def test_unknown_relation(self, db):
        with pytest.raises(UnknownRelationError):
            db.relation("T")

    def test_contains_and_iter(self, db):
        assert "R" in db and "T" not in db
        assert list(db) == ["R", "S"]

    def test_total_tuples(self, db):
        assert db.total_tuples() == 5

    def test_attribute_names_in_first_seen_order(self, db):
        assert db.attribute_names() == ("A", "B", "C")

    def test_empty_database_rejected(self):
        with pytest.raises(SchemaError):
            Database({})


class TestModification:
    def test_add_tuple_copies(self, db):
        grown = db.add_tuple("R", (3, 30))
        assert grown.relation("R").total_count() == 3
        assert db.relation("R").total_count() == 2

    def test_remove_tuple(self, db):
        shrunk = db.remove_tuple("S", (10, 5))
        assert shrunk.relation("S").total_count() == 2

    def test_with_relation_replaces(self, db):
        swapped = db.with_relation("R", Relation(["A", "B"], ()))
        assert swapped.relation("R").is_empty()


class TestKeys:
    def test_primary_key_declared(self):
        db = Database(
            {"R": Relation(["A"], [(1,)])}, primary_keys={"R": ("A",)}
        )
        assert db.primary_key("R") == ("A",)

    def test_primary_key_undeclared_is_none(self, db):
        assert db.primary_key("R") is None

    def test_primary_key_unknown_attribute(self):
        with pytest.raises(Exception):
            Database(
                {"R": Relation(["A"], [(1,)])}, primary_keys={"R": ("Z",)}
            )

    def test_foreign_key_arity_mismatch(self):
        with pytest.raises(SchemaError):
            ForeignKey("S", ("B",), "R", ("A", "B"))

    def test_foreign_key_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            Database(
                {"R": Relation(["A"], [(1,)])},
                foreign_keys=[ForeignKey("S", ("B",), "R", ("A",))],
            )


class TestCascadeDelete:
    @pytest.fixture
    def keyed_db(self):
        return Database(
            {
                "Cust": Relation(["CK"], [(1,), (2,)]),
                "Ord": Relation(["CK", "OK"], [(1, 100), (1, 101), (2, 200)]),
                "Line": Relation(["OK", "N"], [(100, 0), (100, 1), (200, 0)]),
            },
            foreign_keys=[
                ForeignKey("Ord", ("CK",), "Cust", ("CK",)),
                ForeignKey("Line", ("OK",), "Ord", ("OK",)),
            ],
        )

    def test_cascade_removes_transitively(self, keyed_db):
        out = keyed_db.cascade_delete("Cust", (1,))
        assert out.relation("Cust").total_count() == 1
        assert dict(out.relation("Ord").items()) == {(2, 200): 1}
        assert dict(out.relation("Line").items()) == {(200, 0): 1}

    def test_cascade_leaf_deletion(self, keyed_db):
        out = keyed_db.cascade_delete("Line", (100, 0))
        assert out.relation("Ord").total_count() == 3  # no upward cascade

    def test_original_untouched(self, keyed_db):
        keyed_db.cascade_delete("Cust", (1,))
        assert keyed_db.relation("Ord").total_count() == 3


class TestDomains:
    def test_active_domain(self, db):
        assert db.active_domain("B", "S") == frozenset({10, 30})

    def test_representative_domain_intersects_other_relations(self, db):
        # B appears in R {10, 20} and S {10, 30}; w.r.t. R the domain is
        # the active domain of B in the *other* relation S... intersected
        # over all others, here just S.
        assert db.representative_domain("B", "R") == frozenset({10, 30})

    def test_representative_domain_example_3_1(self, fig1_db):
        # Example 3.1: representative domain of A w.r.t. R1 is
        # Σ_act(A,R2) ∩ Σ_act(A,R3) = {a1, a2}.
        assert fig1_db.representative_domain("A", "R1") == frozenset(
            {"a1", "a2"}
        )

    def test_exclusive_attribute_single_value(self, db):
        # A appears only in R: the paper picks one arbitrary active value.
        domain = db.representative_domain("A", "R")
        assert len(domain) == 1
        assert domain <= db.active_domain("A", "R")

    def test_exclusive_attribute_empty_relation(self):
        db = Database({"R": Relation(["A"], ())})
        assert len(db.representative_domain("A", "R")) == 1

    def test_representative_tuples_product(self, db):
        tuples = list(db.representative_tuples("S"))
        # B domain w.r.t. S: from R = {10, 20}; C exclusive: 1 value.
        assert len(tuples) == 2
