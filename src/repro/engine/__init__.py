"""Bag-semantics relational engine: the substrate the paper's algorithms run on."""

from repro.engine.database import Database, ForeignKey
from repro.engine.operators import (
    cross_product,
    difference,
    group_by,
    join,
    join_all,
    project,
    select,
    semijoin,
    symmetric_difference_size,
    union_all,
)
from repro.engine.relation import Relation, empty_like
from repro.engine.schema import Schema

__all__ = [
    "Database",
    "ForeignKey",
    "Relation",
    "Schema",
    "cross_product",
    "difference",
    "empty_like",
    "group_by",
    "join",
    "join_all",
    "project",
    "select",
    "semijoin",
    "symmetric_difference_size",
    "union_all",
]
