"""repro — Local sensitivities of counting queries with joins.

A from-scratch reproduction of "Computing Local Sensitivities of Counting
Queries with Joins" (Tao, He, Machanavajjhala, Roy — SIGMOD 2020):

* a bag-semantics relational engine (:mod:`repro.engine`),
* conjunctive-query decompositions (:mod:`repro.query`),
* the TSens / LSPathJoin sensitivity algorithms (:mod:`repro.core`),
* the Elastic (Flex) baseline (:mod:`repro.baselines`),
* truncation-based DP mechanisms TSensDP and PrivSQL (:mod:`repro.dp`),
* prepared-query sessions that plan once and serve counts, sensitivities,
  DP releases and update streams from cached state (:mod:`repro.session`),
* the paper's datasets and workloads (:mod:`repro.datasets`,
  :mod:`repro.workloads`) and experiment harness (:mod:`repro.experiments`).

Quickstart::

    from repro.query import parse_query
    from repro.engine import Database, Relation
    from repro import prepare

    q = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
    db = Database({"R": Relation(["A", "B"], [(1, 2)]),
                   "S": Relation(["B", "C"], [(2, 3), (2, 4)])})
    session = prepare(q, db)
    print(session.sensitivity().local_sensitivity)  # 2
    session.insert("R", (5, 2))                     # maintained, no rebuild
    print(session.count())                          # 4

The stateless one-shot helpers (``local_sensitivity(q, db)``, ...) remain
available with unchanged signatures for single queries.
"""

from repro.core import (
    SensitiveTuple,
    SensitivityResult,
    local_sensitivity,
    most_sensitive_tuples,
)
from repro.engine import Database, Relation, Schema
from repro.query import ConjunctiveQuery, parse_query
from repro.session import PreparedQuery, prepare

__version__ = "1.1.0"

__all__ = [
    "ConjunctiveQuery",
    "Database",
    "PreparedQuery",
    "Relation",
    "Schema",
    "SensitiveTuple",
    "SensitivityResult",
    "local_sensitivity",
    "most_sensitive_tuples",
    "parse_query",
    "prepare",
    "__version__",
]
