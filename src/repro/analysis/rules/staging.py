"""R002 — staged-commit: committed join state mutates only in commit methods.

:class:`~repro.evaluation.joinstate.JoinState` and
:class:`~repro.evaluation.incremental.IncrementalEvaluator` follow a
staged-then-commit protocol: update application builds ``_staged_*``
structures first and folds them into the committed attributes in one
place, so a failure mid-update can never leave the maintained botjoins,
topjoins, or multiplicity tables half-new.  This rule pins that protocol:
assignments to committed attributes are legal only inside ``__init__``
and methods whose name contains ``commit`` as a word segment
(``_commit``, ``_commit_totals``, ``apply_and_commit``, ...); everywhere
else, write ``self._staged_*`` and hand off to a commit method.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, FrozenSet, Iterator

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    attribute_chain_root,
    walk_skipping_nested_functions,
)

#: Committed-state attributes per maintained-state class.
COMMITTED_ATTRS: Dict[str, FrozenSet[str]] = {
    "JoinState": frozenset({"bound", "botjoins", "_topjoins", "_tables"}),
    "IncrementalEvaluator": frozenset({"_db", "_base_count"}),
}


def _is_commit_method(name: str) -> bool:
    if name == "__init__":
        return True
    return "commit" in name.lower().split("_")


class StagedCommitRule(Rule):
    rule_id = "R002"
    title = "staged-commit: committed state assigned outside a commit method"
    rationale = (
        "Writing maintained join state outside a commit-suffixed method can "
        "leave botjoins/topjoins/tables half-updated when an update fails."
    )

    def applies_to(self, path: PurePath) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            committed = COMMITTED_ATTRS.get(node.name)
            if committed is None:
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _is_commit_method(item.name):
                    continue
                yield from self._check_method(ctx, node.name, item, committed)

    def _check_method(
        self,
        ctx: FileContext,
        class_name: str,
        method: ast.AST,
        committed: FrozenSet[str],
    ) -> Iterator[Finding]:
        for node in walk_skipping_nested_functions(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    root, attr = attribute_chain_root(target)
                    if root == "self" and attr in committed:
                        yield ctx.finding(
                            self,
                            node,
                            f"{class_name}.{method.name} assigns committed state "
                            f"self.{attr}; stage to self._staged_* and fold in a "
                            "commit-suffixed method",
                        )
                        break
