"""Experiment E3 — Figure 7: runtime vs scale for q1, q2, q3.

Reproduces the paper's timing series: TSens, Elastic and query-evaluation
wall-clock times across TPC-H scales.  The paper's shape claims: TSens
tracks query-evaluation time within a small constant (~1.8× for q1, ~0.9×
for q2, ~4.2× for q3), while Elastic is much faster than both (it never
touches the join).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.experiments.fig6a import DEFAULT_SCALES, Q3_MAX_SCALE
from repro.experiments.reporting import format_table, ratio
from repro.experiments.runner import measure_workload, tpch_database
from repro.workloads.tpch_queries import tpch_workloads
from repro.exceptions import InternalError


def run(
    scales: Sequence[float] = DEFAULT_SCALES,
    seed: int = 0,
    queries: Optional[Sequence[str]] = None,
    repetitions: int = 3,
) -> List[Mapping[str, object]]:
    """Run the timing sweep; times are the min over ``repetitions`` runs
    (min is the standard low-noise estimator for wall-clock micro-timings)."""
    rows: List[Mapping[str, object]] = []
    for scale in scales:
        base = tpch_database(scale, seed)
        for workload in tpch_workloads():
            if queries is not None and workload.name not in queries:
                continue
            if workload.name == "q3" and scale > Q3_MAX_SCALE:
                continue
            best = None
            for _ in range(max(1, repetitions)):
                m = measure_workload(workload, base)
                if best is None:
                    best = m
                else:
                    best.tsens_seconds = min(best.tsens_seconds, m.tsens_seconds)
                    best.elastic_seconds = min(best.elastic_seconds, m.elastic_seconds)
                    best.evaluation_seconds = min(
                        best.evaluation_seconds, m.evaluation_seconds
                    )
            if best is None:
                raise InternalError("no method produced a measurement")
            rows.append(
                {
                    "scale": scale,
                    "query": workload.name,
                    "tsens_seconds": best.tsens_seconds,
                    "elastic_seconds": best.elastic_seconds,
                    "evaluation_seconds": best.evaluation_seconds,
                    "tsens_over_evaluation": ratio(
                        best.tsens_seconds, best.evaluation_seconds
                    ),
                }
            )
    return rows


def report(rows: Sequence[Mapping[str, object]]) -> str:
    """Text rendering of the Fig. 7 series."""
    return format_table(
        rows,
        columns=[
            "scale",
            "query",
            "tsens_seconds",
            "elastic_seconds",
            "evaluation_seconds",
            "tsens_over_evaluation",
        ],
        title="Figure 7 — runtime vs scale (TPC-H)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
