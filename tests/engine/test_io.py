"""Unit tests for CSV/JSON persistence of relations and databases."""

import json

import pytest

from repro.engine import Database, ForeignKey, Relation
from repro.engine.io import (
    database_from_json,
    database_to_json,
    load_database,
    load_database_csv_dir,
    read_relation_csv,
    save_database,
    write_relation_csv,
)
from repro.exceptions import SchemaError


@pytest.fixture
def bag():
    return Relation(["A", "B"], {("x", "1"): 2, ("y", "2"): 1})


class TestCsvRoundTrip:
    def test_compact_round_trip(self, bag, tmp_path):
        path = tmp_path / "r.csv"
        write_relation_csv(bag, path)
        assert read_relation_csv(path) == bag

    def test_expanded_round_trip(self, bag, tmp_path):
        path = tmp_path / "r.csv"
        write_relation_csv(bag, path, expand_counts=True)
        assert read_relation_csv(path) == bag

    def test_converters(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\n1,2\n1,2\n3,4\n")
        rel = read_relation_csv(path, converters={"A": int, "B": int})
        assert rel.multiplicity((1, 2)) == 2

    def test_count_column_merges_with_duplicates(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,__count__\nx,2\nx,3\n")
        rel = read_relation_csv(path)
        assert rel.multiplicity(("x",)) == 5

    def test_zero_count_rows_dropped(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,__count__\nx,0\n")
        assert read_relation_csv(path).is_empty()

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_relation_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\n1\n")
        with pytest.raises(SchemaError):
            read_relation_csv(path)

    def test_bad_count_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,__count__\nx,many\n")
        with pytest.raises(SchemaError):
            read_relation_csv(path)


class TestJsonRoundTrip:
    @pytest.fixture
    def db(self, bag):
        return Database(
            {"R": bag, "S": Relation(["B", "C"], [("1", "z")])},
            primary_keys={"R": ("A",)},
            foreign_keys=[ForeignKey("S", ("B",), "R", ("B",))],
        )

    def test_file_round_trip(self, db, tmp_path):
        path = tmp_path / "db.json"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.relation("R") == db.relation("R")
        assert loaded.primary_key("R") == ("A",)
        assert loaded.foreign_keys == db.foreign_keys

    def test_dict_round_trip_is_json_serialisable(self, db):
        document = database_to_json(db)
        json.dumps(document)  # must not raise
        loaded = database_from_json(document)
        assert loaded.relation("S") == db.relation("S")

    def test_empty_document_rejected(self):
        with pytest.raises(SchemaError):
            database_from_json({"relations": {}})


class TestCsvDirectory:
    def test_loads_all_files(self, bag, tmp_path):
        write_relation_csv(bag, tmp_path / "R.csv")
        write_relation_csv(Relation(["C"], [("u",)]), tmp_path / "S.csv")
        db = load_database_csv_dir(tmp_path)
        assert set(db.relation_names) == {"R", "S"}

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            load_database_csv_dir(tmp_path)

    def test_end_to_end_sensitivity_from_csv(self, tmp_path):
        """A downstream-user flow: CSV files in, local sensitivity out."""
        from repro.core import local_sensitivity
        from repro.query import parse_query

        (tmp_path / "R.csv").write_text("A,B\n1,2\n3,2\n")
        (tmp_path / "S.csv").write_text("B,C\n2,9\n")
        db = load_database_csv_dir(tmp_path)
        result = local_sensitivity(parse_query("R(A,B), S(B,C)"), db)
        assert result.local_sensitivity == 2
