"""Ablation — selections: TSens adapts, Elastic cannot (Sec. 8 critique).

The TSens paper's related-work section singles out a weakness of elastic
sensitivity: "even if the local sensitivity for a query with a selection
operator is small, the elastic sensitivity algorithm will output the same
value as for a query without the selection".  This bench makes that
concrete: a highly selective predicate shrinks TSens's answer dramatically
while Elastic's bound does not move at all.
"""

from repro.baselines import elastic_sensitivity, plan_from_tree
from repro.core import local_sensitivity
from repro.query import gyo_join_tree, parse_predicate
from repro.workloads import path_workload


def test_selection_shrinks_tsens_not_elastic(benchmark, facebook_base):
    workload = path_workload()
    db = workload.prepared(facebook_base)
    # Keep only edges leaving node 0 in the middle relation — highly
    # selective on this graph.
    selective = workload.query.with_selection("R2", parse_predicate("B = 0"))

    filtered = benchmark.pedantic(
        lambda: local_sensitivity(selective, db), rounds=2, iterations=1
    )
    unfiltered = local_sensitivity(workload.query, db)
    tree = gyo_join_tree(workload.query)
    plan = plan_from_tree(tree)
    elastic_filtered = elastic_sensitivity(selective, db, plan=plan)
    elastic_unfiltered = elastic_sensitivity(workload.query, db, plan=plan)

    benchmark.extra_info["tsens_filtered"] = filtered.local_sensitivity
    benchmark.extra_info["tsens_unfiltered"] = unfiltered.local_sensitivity
    benchmark.extra_info["elastic"] = elastic_filtered

    # Elastic is selection-oblivious by construction.
    assert elastic_filtered == elastic_unfiltered
    # TSens responds to the predicate.
    assert filtered.local_sensitivity < unfiltered.local_sensitivity
    # And the gap to Elastic widens accordingly.
    assert elastic_filtered > 5 * filtered.local_sensitivity
