"""Ablation — the re-evaluation baseline: incremental deltas vs full re-runs.

Two claims are pinned here:

* **Sec. 7.2 "×10k+"**: re-evaluating the count once per candidate tuple
  (``mode="full"``) is orders of magnitude more expensive than one TSens
  pass.  Full mode is *sampled* (50 probes per relation) and extrapolated
  to the true candidate count, as the paper does for its estimate.
* **Incremental delta re-evaluation**: with cached join-tree counts
  (:class:`repro.evaluation.IncrementalEvaluator`), the same baseline
  answers *every* candidate exactly — unsampled — and must be ≥ 5× faster
  than the extrapolated full-mode cost at bench scale.  Its result is
  cross-checked for exact equality against TSens.

``extra_info`` records the TSens time, the measured incremental time, the
extrapolated full-mode time and the full-vs-incremental speedup.
"""

import time

from repro.baselines import reevaluation_sensitivity
from repro.core import local_sensitivity
from repro.workloads import q1_workload

FULL_PROBES_PER_RELATION = 50


def test_reeval_incremental_vs_full(benchmark, tpch_small):
    workload = q1_workload()
    db = workload.prepared(tpch_small)
    query = workload.query

    tsens_start = time.perf_counter()
    exact = local_sensitivity(query, db)
    tsens_seconds = time.perf_counter() - tsens_start

    # Incremental mode: exact and unsampled — every deletion candidate and
    # every representative-domain insertion is probed.
    incremental = benchmark.pedantic(
        lambda: reevaluation_sensitivity(query, db, mode="incremental"),
        rounds=2,
        iterations=1,
    )
    incremental_seconds = benchmark.stats.stats.min
    assert incremental.method == "reeval-incremental"
    assert incremental.local_sensitivity == exact.local_sensitivity

    # Full mode: sampled, then extrapolated per-probe cost × candidates.
    candidate_counts = {}
    for relation in query.relation_names:
        candidate_counts[relation] = db.relation(relation).distinct_count() + sum(
            1 for _ in db.representative_tuples(relation)
        )
    total_candidates = sum(candidate_counts.values())
    probed = sum(
        min(FULL_PROBES_PER_RELATION, count)
        for count in candidate_counts.values()
    )

    full_start = time.perf_counter()
    sampled = reevaluation_sensitivity(
        query, db, max_probes_per_relation=FULL_PROBES_PER_RELATION, mode="full"
    )
    full_sampled_seconds = time.perf_counter() - full_start
    assert sampled.local_sensitivity <= exact.local_sensitivity

    full_extrapolated = full_sampled_seconds / probed * total_candidates
    benchmark.extra_info["tsens_seconds"] = tsens_seconds
    benchmark.extra_info["incremental_seconds"] = incremental_seconds
    benchmark.extra_info["full_extrapolated_seconds"] = full_extrapolated
    benchmark.extra_info["total_candidates"] = total_candidates
    benchmark.extra_info["full_vs_incremental_speedup"] = full_extrapolated / max(
        incremental_seconds, 1e-9
    )

    # The paper's strawman gap (×10k+ at paper scale; still large here) ...
    assert full_extrapolated > 10 * tsens_seconds
    # ... and the headline of this ablation: cached deltas make the exact,
    # unsampled baseline at least 5× cheaper than full re-runs would be.
    assert full_extrapolated >= 5 * incremental_seconds
