"""Experiment E2 — Figure 6b: most sensitive tuple per relation of q3.

For each relation of the cyclic q3, report the most sensitive tuple found
by TSens alongside the Elastic sensitivity obtained when *that* relation is
the only sensitive table — the paper's per-relation comparison.  Lineitem
is skipped exactly as in the paper: its attributes (OK, SK, PK) form a
superkey of the join output, so its tuple sensitivity is at most 1.

The paper runs this at TPC-H scale 0.01; the default here is 0.002 so the
check completes in seconds on the pure-Python engine — pass ``scale=0.01``
to match the paper's setting.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.baselines.elastic import elastic_per_relation, plan_from_tree
from repro.core.api import local_sensitivity
from repro.experiments.reporting import format_table
from repro.experiments.runner import tpch_database
from repro.workloads.tpch_queries import q3_workload

DEFAULT_SCALE = 0.002


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> List[Mapping[str, object]]:
    """One row per q3 relation: TSens witness + Elastic per-relation bound."""
    workload = q3_workload()
    db = workload.prepared(tpch_database(scale, seed))
    result = local_sensitivity(
        workload.query, db, tree=workload.tree, skip_relations=workload.skip_relations
    )
    elastic = elastic_per_relation(
        workload.query, db, plan=plan_from_tree(workload.tree)
    )
    rows: List[Mapping[str, object]] = []
    for relation in workload.query.relation_names:
        witness = result.per_relation[relation]
        if relation in workload.skip_relations:
            tuple_text = "skip (superkey, δ ≤ 1)"
        elif witness.assignment:
            tuple_text = ", ".join(
                f"{var}={value}" for var, value in witness.assignment.items()
            )
        else:
            tuple_text = "(none)"
        rows.append(
            {
                "relation": relation,
                "most_sensitive_tuple": tuple_text,
                "tuple_sensitivity": witness.sensitivity,
                "elastic_sensitivity": elastic[relation],
            }
        )
    return rows


def report(rows: Sequence[Mapping[str, object]]) -> str:
    """Text rendering of the Fig. 6b table."""
    return format_table(
        rows,
        columns=[
            "relation",
            "most_sensitive_tuple",
            "tuple_sensitivity",
            "elastic_sensitivity",
        ],
        title="Figure 6b — most sensitive tuple per relation (q3)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
