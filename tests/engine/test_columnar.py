"""Unit tests for the columnar execution backend.

Every operator and accessor of :class:`ColumnarRelation` is checked
against the dict-based :class:`Relation` reference on the same inputs —
the backends must be observationally identical.
"""

import numpy as np
import pytest

from repro.engine import (
    BACKEND_NAMES,
    ColumnarRelation,
    Database,
    Relation,
    backend_of,
    cross_product,
    difference,
    empty_like,
    get_backend,
    group_by,
    join,
    semijoin,
    to_backend,
    union_all,
)
from repro.engine.columnar import reset_vocabulary
from repro.exceptions import MechanismConfigError, MultiplicityOverflowError, SchemaError


def both(schema, rows):
    """The same logical relation on both backends."""
    return Relation(schema, rows), ColumnarRelation(schema, rows)


R_ROWS = [(1, 2), (1, 2), (3, 2), (4, 5), (4, 7)]
S_ROWS = [(2, 7), (2, 8), (5, 9), (5, 9), (5, 9)]


class TestConstruction:
    def test_rows_and_mapping_agree(self):
        from_rows = ColumnarRelation(["A", "B"], R_ROWS)
        from_map = ColumnarRelation(["A", "B"], {(1, 2): 2, (3, 2): 1, (4, 5): 1, (4, 7): 1})
        assert from_rows == from_map

    def test_matches_python_backend(self):
        py, col = both(["A", "B"], R_ROWS)
        assert col == py and py == col
        assert col.total_count() == py.total_count() == 5
        assert col.distinct_count() == py.distinct_count() == 4

    def test_arity_mismatch_raises(self):
        with pytest.raises(SchemaError):
            ColumnarRelation(["A", "B"], [(1,)])

    def test_negative_multiplicity_raises(self):
        with pytest.raises(SchemaError):
            ColumnarRelation(["A"], {(1,): -2})

    def test_zero_arity(self):
        py, col = both([], [(), (), ()])
        assert col.total_count() == 3
        assert col.multiplicity(()) == 3
        assert col == py

    def test_empty(self):
        py, col = both(["A"], ())
        assert col.is_empty() and col == py
        assert col.argmax_count() == (None, 0)

    def test_mixed_value_types(self):
        py, col = both(["A"], [("x",), (1,), (1.0,), (None,)])
        # 1 and 1.0 are the same dict key on both backends.
        assert col.multiplicity((1,)) == py.multiplicity((1,)) == 2
        assert col == py

    def test_not_hashable(self):
        _, col = both(["A"], [(1,)])
        with pytest.raises(TypeError):
            hash(col)


class TestAccessors:
    def test_counts_iteration(self):
        py, col = both(["A", "B"], R_ROWS)
        assert dict(col.counts) == dict(py.counts)
        assert sorted(col) == sorted(py)
        assert sorted(col.items()) == sorted(py.items())
        assert len(col) == len(py)
        assert (1, 2) in col and (9, 9) not in col

    def test_column_values(self):
        py, col = both(["A", "B"], R_ROWS)
        assert col.column_values("A") == py.column_values("A")
        assert col.column_values("B") == py.column_values("B")

    def test_max_frequency(self):
        py, col = both(["A", "B"], R_ROWS)
        for attrs in (["A"], ["B"], ["A", "B"], []):
            assert col.max_frequency(attrs) == py.max_frequency(attrs)

    def test_argmax_count_tie_break(self):
        rows = [(2, 1), (1, 9), (1, 9), (2, 1)]
        py, col = both(["A", "B"], rows)
        assert col.argmax_count() == py.argmax_count() == ((1, 9), 2)

    def test_argmax_count_string_tie_break(self):
        rows = [("b", "x"), ("a", "y")]
        py, col = both(["A", "B"], rows)
        assert col.argmax_count() == py.argmax_count() == (("a", "y"), 1)


class TestBagUpdates:
    def test_add_zero_multiplicity_is_noop_on_both(self):
        py, col = both(["A", "B"], R_ROWS)
        assert py.add((8, 8), 0).distinct_count() == py.distinct_count()
        assert col.add((8, 8), 0) == py.add((8, 8), 0)

    def test_add_remove(self):
        py, col = both(["A", "B"], R_ROWS)
        assert col.add((1, 2)) == py.add((1, 2))
        assert col.add((8, 8), 3) == py.add((8, 8), 3)
        assert col.remove((1, 2)) == py.remove((1, 2))
        assert col.remove((1, 2), 99) == py.remove((1, 2), 99)
        assert col.remove((8, 8)) == py.remove((8, 8))  # absent: no-op

    def test_filter(self):
        py, col = both(["A", "B"], R_ROWS)
        pred = lambda row: row["A"] != 4
        assert col.filter(pred) == py.filter(pred)
        assert isinstance(col.filter(pred), ColumnarRelation)

    def test_rename_scale(self):
        py, col = both(["A", "B"], R_ROWS)
        assert col.rename({"A": "Z"}) == py.rename({"A": "Z"})
        assert col.scale_counts(4) == py.scale_counts(4)
        with pytest.raises(SchemaError):
            col.scale_counts(0)

    def test_empty_like_preserves_backend(self):
        _, col = both(["A", "B"], R_ROWS)
        empty = empty_like(col)
        assert isinstance(empty, ColumnarRelation) and empty.is_empty()


class TestOperators:
    def test_join(self):
        rp, rc = both(["A", "B"], R_ROWS)
        sp, sc = both(["B", "C"], S_ROWS)
        assert join(rc, sc) == join(rp, sp)
        assert isinstance(join(rc, sc), ColumnarRelation)

    def test_join_mixed_operands_promote(self):
        rp, rc = both(["A", "B"], R_ROWS)
        sp, sc = both(["B", "C"], S_ROWS)
        mixed = join(rp, sc)
        assert isinstance(mixed, ColumnarRelation)
        assert mixed == join(rp, sp)

    def test_join_multi_attribute_key(self):
        rows_l = [(1, 2, 9), (1, 3, 9), (2, 2, 7)]
        rows_r = [(1, 2, "u"), (1, 2, "v"), (2, 2, "w")]
        lp, lc = both(["A", "B", "X"], rows_l)
        rp, rc = both(["A", "B", "Y"], rows_r)
        assert join(lc, rc) == join(lp, rp)

    def test_join_disjoint_is_cross_product(self):
        rp, rc = both(["A"], [(1,), (2,)])
        sp, sc = both(["B"], [(7,), (7,)])
        assert join(rc, sc) == join(rp, sp) == cross_product(rp, sp)

    def test_group_by(self):
        rp, rc = both(["A", "B"], R_ROWS)
        for attrs in (["A"], ["B"], ["B", "A"], []):
            assert group_by(rc, attrs) == group_by(rp, attrs)

    def test_semijoin(self):
        rp, rc = both(["A", "B"], R_ROWS)
        sp, sc = both(["B", "C"], S_ROWS)
        assert semijoin(rc, sc) == semijoin(rp, sp)
        # no shared attributes: keep all iff right non-empty
        tp, tc = both(["Z"], [(0,)])
        assert semijoin(rc, tc) == rc
        assert semijoin(rc, empty_like(tc)).is_empty()

    def test_union_all_and_difference(self):
        rp, rc = both(["A", "B"], R_ROWS)
        sp, sc = both(["A", "B"], [(1, 2), (9, 9)])
        assert union_all([rc, sc]) == union_all([rp, sp])
        assert difference(rc, sc) == difference(rp, sp)
        assert difference(sc, rc) == difference(sp, rp)
        with pytest.raises(SchemaError):
            difference(rc, both(["A", "C"], [(1, 2)])[1])

    def test_difference_zero_arity(self):
        ap, ac = both([], [(), (), ()])
        bp, bc = both([], [()])
        assert difference(ac, bc) == difference(ap, bp)
        assert difference(bc, ac).is_empty()

    def test_cross_product_overlap_raises(self):
        _, rc = both(["A", "B"], R_ROWS)
        with pytest.raises(SchemaError):
            cross_product(rc, rc)


class TestBackendRegistry:
    def test_round_trip(self):
        py, col = both(["A", "B"], R_ROWS)
        assert to_backend(py, "columnar") == col
        assert to_backend(col, "python") == py
        assert to_backend(col, "columnar") is col
        assert backend_of(py) == "python" and backend_of(col) == "columnar"

    def test_unknown_backend_raises(self):
        with pytest.raises(MechanismConfigError):
            get_backend("gpu")

    def test_backend_names(self):
        assert "python" in BACKEND_NAMES and "columnar" in BACKEND_NAMES

    def test_database_backend_knob(self):
        db = Database(
            {"R": Relation(["A", "B"], R_ROWS)}, backend="columnar"
        )
        assert db.backend == "columnar"
        assert isinstance(db.relation("R"), ColumnarRelation)
        back = db.with_backend("python")
        assert back.backend == "python"
        assert back.relation("R") == db.relation("R")

    def test_cascade_delete_stays_columnar(self):
        from repro.engine import ForeignKey

        db = Database(
            {
                "P": Relation(["K"], [(1,), (2,)]),
                "C": Relation(["K", "V"], [(1, "a"), (1, "b"), (2, "c")]),
            },
            primary_keys={"P": ("K",)},
            foreign_keys=[ForeignKey("C", ("K",), "P", ("K",))],
            backend="columnar",
        )
        after = db.cascade_delete("P", (1,))
        assert after.backend == "columnar"
        assert after.relation("C").total_count() == 1


class TestTopKClamp:
    def test_columnar_clamp_matches_python(self):
        from repro.core.topk import clamp_to_top_k

        rows = {( "a",): 5, ("b",): 3, ("c",): 2, ("d",): 1}
        py = Relation(["X"], rows)
        col = ColumnarRelation(["X"], rows)
        for k in (1, 2, 3, 4, 10):
            clamped = clamp_to_top_k(col, k)
            assert clamped == clamp_to_top_k(py, k)
            assert isinstance(clamped, ColumnarRelation)


class TestIoBackend:
    def test_csv_round_trip_columnar(self, tmp_path):
        from repro.engine.io import read_relation_csv, write_relation_csv

        _, col = both(["A", "B"], [("x", "y"), ("x", "y"), ("z", "w")])
        path = tmp_path / "r.csv"
        write_relation_csv(col, path)
        loaded = read_relation_csv(path, backend="columnar")
        assert isinstance(loaded, ColumnarRelation)
        assert loaded == col

    def test_json_database_columnar(self, tmp_path):
        from repro.engine.io import load_database, save_database

        db = Database({"R": Relation(["A"], [(1,), (1,), (2,)])})
        path = tmp_path / "db.json"
        save_database(db, path)
        loaded = load_database(path, backend="columnar")
        assert loaded.backend == "columnar"
        assert loaded.relation("R") == db.relation("R")


class TestLargeVectorizedPaths:
    def test_large_join_group_by_agree(self):
        rng = np.random.default_rng(7)
        rows_l = [tuple(map(int, r)) for r in rng.integers(0, 50, size=(4000, 2))]
        rows_r = [tuple(map(int, r)) for r in rng.integers(0, 50, size=(4000, 2))]
        lp, lc = both(["A", "B"], rows_l)
        rp, rc = both(["B", "C"], rows_r)
        assert join(lc, rc) == join(lp, rp)
        assert group_by(lc, ["B"]) == group_by(lp, ["B"])
        assert semijoin(lc, rc) == semijoin(lp, rp)


class TestOverflowGuards:
    """int64 wrap-around must error (python backend is the escape hatch)."""

    def test_join_product_overflow_raises(self):
        big = 4_000_000_000
        left = ColumnarRelation(["A", "B"], {(1, 2): big})
        right = ColumnarRelation(["B", "C"], {(2, 3): big})
        with pytest.raises(MultiplicityOverflowError):
            join(left, right)
        # python backend handles the same input exactly
        assert join(
            Relation(["A", "B"], {(1, 2): big}), Relation(["B", "C"], {(2, 3): big})
        ).total_count() == big * big

    def test_cross_product_overflow_raises(self):
        big = 4_000_000_000
        with pytest.raises(MultiplicityOverflowError):
            cross_product(
                ColumnarRelation(["A"], {(1,): big}),
                ColumnarRelation(["B"], {(2,): big}),
            )

    def test_non_combining_large_rows_pass(self):
        # Large counts whose rows never join must NOT trip the guard.
        big = 4_000_000_000
        left = ColumnarRelation(["A", "B"], {(1, 1): big, (9, 5): 2})
        right = ColumnarRelation(["B", "C"], {(2, 3): big, (5, 7): 3})
        assert join(left, right) == Relation(["A", "B", "C"], {(9, 5, 7): 6})

    def test_construction_beyond_int64_raises(self):
        with pytest.raises(MultiplicityOverflowError):
            ColumnarRelation(["A"], {(1,): 2**70})
        with pytest.raises(MultiplicityOverflowError):
            to_backend(Relation(["A"], {(1,): 2**70}), "columnar")
        with pytest.raises(MultiplicityOverflowError):
            ColumnarRelation(["A"], {(1,): 1}).add((1,), 2**70)

    def test_scale_counts_overflow_raises(self):
        with pytest.raises(MultiplicityOverflowError):
            ColumnarRelation(["A"], {(1,): 2**40}).scale_counts(2**40)

    def test_group_by_sum_overflow_raises(self):
        half = 2**62
        rel = ColumnarRelation(["A", "B"], {(1, 1): half, (1, 2): half, (1, 3): half})
        with pytest.raises(MultiplicityOverflowError):
            group_by(rel, ["A"])

    def test_large_but_fitting_counts_pass(self):
        near = 2**62
        rel = ColumnarRelation(["A", "B"], {(1, 1): near, (1, 2): near - 1})
        # bound check (max * count) trips, exact sum fits: must succeed
        assert group_by(rel, ["A"]).multiplicity((1,)) == 2 * near - 1


class TestVocabularyReset:
    """reset_vocabulary() reclaims the process dictionary; relations built
    before the reset stay valid and interoperate with new ones."""

    def test_old_relations_survive_reset(self):
        old = ColumnarRelation(["A", "B"], [("u", "v"), ("u", "w")])
        reset_vocabulary()
        assert dict(old.counts) == {("u", "v"): 1, ("u", "w"): 1}
        assert old.multiplicity(("u", "v")) == 1

    def test_cross_generation_operators_align(self):
        old = ColumnarRelation(["A", "B"], [(1, 2), (3, 2)])
        reset_vocabulary()
        new = ColumnarRelation(["B", "C"], [(2, 9)])
        joined = join(old, new)
        assert joined == Relation(["A", "B", "C"], [(1, 2, 9), (3, 2, 9)])
        assert semijoin(old, new) == old
        assert union_all([old, old.rename({})]) == old.scale_counts(2)
        assert difference(old, ColumnarRelation(["A", "B"], [(1, 2)])) == \
            Relation(["A", "B"], [(3, 2)])
