"""Query classification: path queries and doubly acyclic queries.

* **Path join queries** (Sec. 4): the atoms can be ordered ``R1 .. Rm`` so
  that consecutive atoms share variables, non-consecutive atoms share none,
  and every variable occurs in at most two atoms.  The first/last atoms may
  be unary (e.g. TPC-H ``Region(RK)``), which the paper handles by letting
  the free endpoint attribute take any value.
* **Doubly acyclic queries** (Sec. 5.3): acyclic queries with a GYO join
  tree in which, at every node, the local join assembled for the
  multiplicity table — topjoin on ``A_i ∩ A_p`` and the children botjoins on
  ``A_i ∩ A_c`` — is itself acyclic.  For these, Algorithm 2 runs in
  ``O(m n log n)`` combined complexity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.query.gyo import gyo_join_tree, gyo_reduce, is_acyclic
from repro.query.hypergraph import Hypergraph
from repro.query.jointree import DecompositionTree


def path_order(query: ConjunctiveQuery) -> Optional[Tuple[str, ...]]:
    """Order the atoms as a path ``R1 .. Rm``, or ``None`` if not a path query.

    Requirements checked:

    1. every variable occurs in at most two atoms;
    2. the "share a variable" graph over atoms is a simple path;
    3. consecutive atoms share at least one variable (implied by 2).

    A single-atom query counts as a (trivial) path.
    """
    atoms = query.atoms
    if len(atoms) == 1:
        return (atoms[0].relation,)
    for var in query.variables:
        if len(query.occurrences(var)) > 2:
            return None
    # Adjacency over atoms via shared variables.
    adjacency: Dict[str, List[str]] = {a.relation: [] for a in atoms}
    for i, left in enumerate(atoms):
        for right in atoms[i + 1 :]:
            if left.variable_set & right.variable_set:
                adjacency[left.relation].append(right.relation)
                adjacency[right.relation].append(left.relation)
    endpoints = [r for r, neigh in adjacency.items() if len(neigh) == 1]
    if len(endpoints) != 2:
        return None
    if any(len(neigh) > 2 for neigh in adjacency.values()):
        return None
    # Walk from the first endpoint (body order makes this deterministic).
    start = min(endpoints, key=lambda r: query.relation_names.index(r))
    order = [start]
    previous: Optional[str] = None
    current = start
    while len(order) < len(atoms):
        nexts = [n for n in adjacency[current] if n != previous]
        if len(nexts) != 1:
            return None
        previous, current = current, nexts[0]
        order.append(current)
    return tuple(order)


def is_path_query(query: ConjunctiveQuery) -> bool:
    """True iff Algorithm 1 (``LSPathJoin``) applies to this query."""
    return path_order(query) is not None


def local_multiplicity_hypergraph(
    tree: DecompositionTree, node_id: str
) -> Optional[Hypergraph]:
    """The hypergraph of the join computed for node ``node_id``'s
    multiplicity table: one edge for the topjoin schema ``A_i ∩ A_p`` and
    one per child botjoin schema ``A_i ∩ A_c``.

    Empty intersections contribute scalar (cross-product) factors and are
    omitted; if every edge is empty the result is ``None`` (trivially
    acyclic).
    """
    node = tree.node(node_id)
    edges: Dict[str, frozenset] = {}
    top_schema = tree.shared_with_parent(node_id)
    if top_schema:
        edges["__top__"] = frozenset(top_schema)
    for child in tree.children(node_id):
        shared = node.attributes & tree.node(child).attributes
        if shared:
            edges[f"__bot_{child}__"] = frozenset(shared)
    if not edges:
        return None
    return Hypergraph(edges)


def is_doubly_acyclic_tree(tree: DecompositionTree) -> bool:
    """True iff every node's local multiplicity join is acyclic."""
    for node_id in tree.node_ids:
        local = local_multiplicity_hypergraph(tree, node_id)
        if local is None:
            continue
        acyclic, _ = gyo_reduce(local)
        if not acyclic:
            return False
    return True


def is_doubly_acyclic(query: ConjunctiveQuery) -> bool:
    """True iff the query is acyclic and its GYO join tree is doubly acyclic.

    The paper defines double acyclicity existentially over join trees; we
    test the canonical GYO tree, which suffices for the query classes the
    paper names (path queries and bounded-degree trees) and is what the
    implementation actually runs on.
    """
    if not query.is_connected() or not is_acyclic(query):
        return False
    return is_doubly_acyclic_tree(gyo_join_tree(query))


def classify(query: ConjunctiveQuery) -> str:
    """A coarse label used in reports: ``"path"``, ``"doubly-acyclic"``,
    ``"acyclic"``, ``"cyclic"``, or ``"disconnected"``."""
    if not query.is_connected():
        return "disconnected"
    if is_path_query(query):
        return "path"
    if not is_acyclic(query):
        return "cyclic"
    if is_doubly_acyclic(query):
        return "doubly-acyclic"
    return "acyclic"
