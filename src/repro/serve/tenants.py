"""Multi-tenant privacy budgets for the serving layer.

A DP release is only a real guarantee if the ε spent on each caller's
behalf is tracked against *that caller's* budget: two tenants sharing
one accountant would let one exhaust the other's privacy allowance.
The :class:`TenantRegistry` keeps one
:class:`~repro.dp.accountant.BudgetAccountant` per tenant, so the
server's ``release`` endpoint composes sequentially per tenant and
raises a per-tenant :class:`~repro.exceptions.PrivacyBudgetError` on
exhaustion — other tenants keep releasing.

Tenants are registered explicitly (:meth:`TenantRegistry.register`) or
minted on first sight when the registry is constructed with a
``default_epsilon`` — the open-door mode the ``repro serve`` CLI uses.
Budget state is intentionally *not* epoch-scoped: privacy loss composes
over the tenant's entire interaction history, across every update the
database absorbs.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.dp.accountant import BudgetAccountant
from repro.exceptions import TenantError


class Tenant:
    """One caller: an identifier plus its isolated budget accountant."""

    def __init__(self, tenant_id: str, total_epsilon: float):
        self.tenant_id = tenant_id
        self.accountant = BudgetAccountant(total_epsilon)

    def stats(self) -> Dict[str, object]:
        """JSON-able budget snapshot for the ``stats`` endpoint."""
        accountant = self.accountant
        return {
            "tenant_id": self.tenant_id,
            "total_epsilon": accountant.total_epsilon,
            "spent_epsilon": accountant.spent,
            "remaining_epsilon": accountant.remaining,
            "ledger": accountant.ledger(),
        }

    def __repr__(self) -> str:
        return (
            f"Tenant({self.tenant_id!r}, "
            f"remaining={self.accountant.remaining:.6g})"
        )


class TenantRegistry:
    """Thread-safe map of tenant id -> :class:`Tenant`.

    Parameters
    ----------
    default_epsilon:
        When set, an unknown tenant id presented to :meth:`get` is
        auto-registered with this total budget.  When ``None`` (the
        strict mode), unknown ids raise
        :class:`~repro.exceptions.TenantError`.
    """

    def __init__(self, default_epsilon: Optional[float] = None):
        self._default_epsilon = default_epsilon
        self._tenants: Dict[str, Tenant] = {}
        self._mutex = threading.Lock()

    def register(self, tenant_id: str, total_epsilon: float) -> Tenant:
        """Create a tenant with an explicit budget; duplicate ids raise."""
        self._validate_id(tenant_id)
        with self._mutex:
            if tenant_id in self._tenants:
                raise TenantError(f"tenant {tenant_id!r} already registered")
            tenant = Tenant(tenant_id, total_epsilon)
            self._tenants[tenant_id] = tenant
            return tenant

    def get(self, tenant_id: str) -> Tenant:
        """Look a tenant up, auto-registering in open-door mode."""
        self._validate_id(tenant_id)
        with self._mutex:
            tenant = self._tenants.get(tenant_id)
            if tenant is None:
                if self._default_epsilon is None:
                    raise TenantError(f"unknown tenant {tenant_id!r}")
                tenant = Tenant(tenant_id, self._default_epsilon)
                self._tenants[tenant_id] = tenant
            return tenant

    def _validate_id(self, tenant_id: str) -> None:
        if not isinstance(tenant_id, str) or not tenant_id:
            raise TenantError(
                f"tenant id must be a non-empty string, got {tenant_id!r}"
            )

    def stats(self) -> List[Dict[str, object]]:
        """Budget snapshots for every known tenant, id-sorted."""
        with self._mutex:
            tenants = sorted(self._tenants.values(), key=lambda t: t.tenant_id)
        return [tenant.stats() for tenant in tenants]

    def __len__(self) -> int:
        with self._mutex:
            return len(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        with self._mutex:
            return tenant_id in self._tenants

    def __repr__(self) -> str:
        with self._mutex:
            n = len(self._tenants)
        open_door = self._default_epsilon is not None
        return f"TenantRegistry(tenants={n}, open_door={open_door})"
