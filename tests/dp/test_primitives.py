"""Unit tests for DP primitives (Laplace, SVT)."""

import numpy as np
import pytest

from repro.dp import (
    above_threshold,
    laplace_confidence_radius,
    laplace_mechanism,
    laplace_noise,
)
from repro.exceptions import MechanismConfigError


class TestLaplace:
    def test_deterministic_under_seed(self):
        a = laplace_mechanism(10.0, 2.0, 1.0, np.random.default_rng(5))
        b = laplace_mechanism(10.0, 2.0, 1.0, np.random.default_rng(5))
        assert a == b

    def test_zero_sensitivity_returns_exact(self):
        rng = np.random.default_rng(0)
        assert laplace_mechanism(42, 0.0, 1.0, rng) == 42.0

    def test_scale_controls_spread(self):
        rng = np.random.default_rng(1)
        tight = np.std([laplace_noise(1.0, rng) for _ in range(4000)])
        loose = np.std([laplace_noise(10.0, rng) for _ in range(4000)])
        assert loose > 5 * tight

    def test_noise_mean_near_zero(self):
        rng = np.random.default_rng(2)
        draws = [laplace_noise(1.0, rng) for _ in range(8000)]
        assert abs(np.mean(draws)) < 0.1

    def test_invalid_epsilon(self):
        with pytest.raises(MechanismConfigError):
            laplace_mechanism(1.0, 1.0, 0.0, np.random.default_rng(0))

    def test_negative_sensitivity(self):
        with pytest.raises(MechanismConfigError):
            laplace_mechanism(1.0, -1.0, 1.0, np.random.default_rng(0))


class TestConfidenceRadius:
    def test_radius_grows_with_confidence(self):
        assert laplace_confidence_radius(1.0, 0.99) > laplace_confidence_radius(
            1.0, 0.5
        )

    def test_radius_scales_linearly(self):
        assert laplace_confidence_radius(2.0, 0.9) == pytest.approx(
            2 * laplace_confidence_radius(1.0, 0.9)
        )

    def test_empirical_coverage(self):
        rng = np.random.default_rng(3)
        radius = laplace_confidence_radius(1.0, 0.95)
        draws = np.abs([laplace_noise(1.0, rng) for _ in range(8000)])
        coverage = np.mean(draws <= radius)
        assert 0.93 < coverage < 0.97

    def test_invalid_confidence(self):
        with pytest.raises(MechanismConfigError):
            laplace_confidence_radius(1.0, 1.5)


class TestAboveThreshold:
    def test_finds_obvious_crossing(self):
        rng = np.random.default_rng(4)
        # Huge budget => negligible noise: first value above 0 is index 3.
        values = [-100.0, -100.0, -100.0, 100.0, 100.0]
        assert above_threshold(values, 0.0, epsilon=1000.0, rng=rng) == 3

    def test_returns_none_when_all_below(self):
        rng = np.random.default_rng(5)
        values = [-100.0] * 5
        assert above_threshold(values, 0.0, epsilon=1000.0, rng=rng) is None

    def test_consumes_lazily(self):
        rng = np.random.default_rng(6)
        seen = []

        def stream():
            for i, v in enumerate([-100.0, 100.0, 100.0]):
                seen.append(i)
                yield v

        index = above_threshold(stream(), 0.0, epsilon=1000.0, rng=rng)
        assert index == 1
        assert seen == [0, 1]  # never touched the third query

    def test_sensitivity_scales_noise(self):
        # With a tiny budget and huge sensitivity, decisions become noisy:
        # over many trials the reported index should vary.
        outcomes = set()
        for seed in range(30):
            rng = np.random.default_rng(seed)
            outcomes.add(
                above_threshold(
                    [0.0] * 10, 0.0, epsilon=0.05, rng=rng, sensitivity=10.0
                )
            )
        assert len(outcomes) > 3

    def test_invalid_epsilon(self):
        with pytest.raises(MechanismConfigError):
            above_threshold([1.0], 0.0, epsilon=-1.0, rng=np.random.default_rng(0))


class TestParameterValidationAsValueError:
    """Mechanism parameter validation doubles as plain ValueError (so
    callers outside the library can catch it without importing repro)."""

    def test_mechanism_config_error_is_value_error(self):
        assert issubclass(MechanismConfigError, ValueError)

    def test_zero_scale_raises_value_error(self):
        with pytest.raises(ValueError):
            laplace_noise(0.0, np.random.default_rng(0))

    def test_negative_scale_raises_value_error(self):
        with pytest.raises(ValueError):
            laplace_noise(-1.0, np.random.default_rng(0))

    def test_zero_epsilon_raises_value_error(self):
        with pytest.raises(ValueError):
            laplace_mechanism(1.0, 1.0, 0.0, np.random.default_rng(0))

    def test_negative_epsilon_above_threshold(self):
        with pytest.raises(ValueError):
            above_threshold(
                iter([1.0]), threshold=0.0, epsilon=-1.0,
                rng=np.random.default_rng(0),
            )

    def test_zero_scale_confidence_radius(self):
        with pytest.raises(ValueError):
            laplace_confidence_radius(0.0, 0.9)
