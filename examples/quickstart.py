#!/usr/bin/env python
"""Quickstart: a prepared-query session over the paper's running example.

Builds the paper's Figure 1 instance (four relations whose natural join
produces a single tuple, yet whose local sensitivity is 4), prepares the
query once, and then asks the session for counts, sensitivities and
witnesses — finishing with a couple of committed updates, which the
session absorbs by recomputing only the touched join-tree path instead of
replanning from scratch.

Run with::

    python examples/quickstart.py
"""

from repro import prepare
from repro.core import naive_local_sensitivity
from repro.engine import Database, Relation
from repro.evaluation import evaluate_query
from repro.query import parse_query


def main() -> None:
    # The query and database from Figure 1 of the paper.
    query = parse_query(
        "Q(A,B,C,D,E,F) :- R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)"
    )
    db = Database(
        {
            "R1": Relation(
                ["A", "B", "C"],
                [("a1", "b1", "c1"), ("a1", "b2", "c1"), ("a2", "b1", "c1")],
            ),
            "R2": Relation(
                ["A", "B", "D"], [("a1", "b1", "d1"), ("a2", "b2", "d2")]
            ),
            "R3": Relation(["A", "E"], [("a1", "e1"), ("a2", "e1"), ("a2", "e2")]),
            "R4": Relation(["B", "F"], [("b1", "f1"), ("b2", "f1"), ("b2", "f2")]),
        }
    )

    # Plan once: classify the query, build the decomposition, cache state.
    session = prepare(query, db)
    print(f"query: {session.query}")
    print(f"join output size |Q(D)| = {session.count()}")
    print(f"join output: {sorted(evaluate_query(query, db).items())}")

    # TSens: local sensitivity + the most sensitive tuple, from the session.
    result = session.sensitivity()
    print(f"\nTSens local sensitivity : {result.local_sensitivity}")
    print(f"most sensitive tuple    : {result.witness.relation} "
          f"{dict(result.witness.assignment)}")

    # Every relation gets its own most sensitive tuple (the Fig. 6b view).
    print("\nper-relation most sensitive tuples:")
    for relation, witness in session.most_sensitive().items():
        print(f"  {relation}: {dict(witness.assignment)}  δ = {witness.sensitivity}")

    # Tuple sensitivities of arbitrary tuples come from the same tables.
    delta = result.tuple_sensitivity("R1", {"A": "a2", "B": "b2", "C": "c1"})
    print(f"\nδ((a2, b2, c1) in R1) = {delta}  (adding it creates 4 join rows)")

    # Cross-check against brute force (Theorem 3.1) on this tiny instance.
    naive = naive_local_sensitivity(query, db)
    assert naive.local_sensitivity == result.local_sensitivity
    print(f"brute-force check        : LS = {naive.local_sensitivity}  ✓")

    # Commit updates: the session maintains |Q(D)| by recomputing only the
    # touched leaf-to-root path, and invalidates its sensitivity caches.
    print("\ncommitting the witness insert and one delete ...")
    count = session.insert("R1", ("a2", "b2", "c1"))
    print(f"after insert: |Q(D)| = {count} (was 1)")
    count = session.delete("R4", ("b1", "f1"))
    print(f"after delete: |Q(D)| = {count}")
    print(f"new local sensitivity   : "
          f"{session.sensitivity().local_sensitivity}")
    assert session.count() == prepare(query, session.db).count()
    print(f"session state           : {session}")


if __name__ == "__main__":
    main()
