"""The Theorem 3.2 NP-hardness reduction, made executable.

The paper proves that deciding ``LS(Q, D) > 0`` is NP-hard in combined
complexity, even for acyclic queries, by reduction from 3SAT: each clause
``C_i`` becomes a relation holding its seven satisfying boolean triples, an
*empty* relation ``R0`` spans all variables, and the full join is non-empty
after a single insertion into ``R0`` iff the formula is satisfiable.

This module constructs the reduction and ships a tiny DPLL solver so tests
can confirm, on random formulas, that ``LS(Q, D) > 0 ⟺ satisfiable`` — an
executable witness of the proof (experiment E7 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.exceptions import InternalError, ReproError

Literal = Tuple[int, bool]  # (variable index starting at 1, is_positive)
Clause = Tuple[Literal, Literal, Literal]


@dataclass(frozen=True)
class ThreeSatInstance:
    """A 3SAT formula over variables ``1..num_variables``."""

    num_variables: int
    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for var, _ in clause:
                if not 1 <= var <= self.num_variables:
                    raise ReproError(f"clause literal {var} out of range")

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Truth of the formula under ``assignment`` (index 0 = variable 1)."""
        for clause in self.clauses:
            if not any(assignment[var - 1] == positive for var, positive in clause):
                return False
        return True


def reduction(instance: ThreeSatInstance) -> Tuple[ConjunctiveQuery, Database]:
    """Build the Theorem 3.2 query/database pair for a 3SAT instance.

    Returns ``(Q, D)`` with ``LS(Q, D) > 0`` iff ``instance`` is
    satisfiable.  ``Q`` is acyclic: every clause relation is an ear of the
    all-variables relation ``R0``.
    """
    variables = [f"A{i}" for i in range(1, instance.num_variables + 1)]
    atoms: List[Atom] = [Atom("R0", variables)]
    relations: Dict[str, Relation] = {
        "R0": Relation(variables, ())  # empty — the crux of the reduction
    }
    for index, clause in enumerate(instance.clauses, start=1):
        clause_vars = [f"A{var}" for var, _ in clause]
        if len(set(clause_vars)) != 3:
            raise ReproError(
                f"clause {index} repeats a variable; the reduction needs "
                "three distinct variables per clause"
            )
        rows = []
        for bits in product((False, True), repeat=3):
            if any(bit == positive for bit, (_, positive) in zip(bits, clause)):
                rows.append(tuple(int(b) for b in bits))
        name = f"C{index}"
        atoms.append(Atom(name, tuple(clause_vars)))
        relations[name] = Relation(clause_vars, rows)
    query = ConjunctiveQuery(atoms, name="Q3sat")
    return query, Database(relations)


def dpll(instance: ThreeSatInstance) -> Optional[Tuple[bool, ...]]:
    """A small DPLL SAT solver: a satisfying assignment or ``None``.

    Unit propagation plus first-unassigned-variable branching — ample for
    the test-sized formulas this module is used with.
    """

    def solve(assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        # Unit propagation.
        changed = True
        local = dict(assignment)
        while changed:
            changed = False
            for clause in instance.clauses:
                undecided: List[Literal] = []
                satisfied = False
                for var, positive in clause:
                    if var in local:
                        if local[var] == positive:
                            satisfied = True
                            break
                    else:
                        undecided.append((var, positive))
                if satisfied:
                    continue
                if not undecided:
                    return None  # conflict
                if len(undecided) == 1:
                    var, positive = undecided[0]
                    local[var] = positive
                    changed = True
        if len(local) == instance.num_variables:
            return local
        branch_var = next(
            v for v in range(1, instance.num_variables + 1) if v not in local
        )
        for value in (True, False):
            attempt = dict(local)
            attempt[branch_var] = value
            solution = solve(attempt)
            if solution is not None:
                return solution
        return None

    solution = solve({})
    if solution is None:
        return None
    full = tuple(solution.get(v, False) for v in range(1, instance.num_variables + 1))
    if not instance.evaluate(full):
        raise InternalError("solver returned a non-satisfying assignment")
    return full


def satisfying_insertion(
    instance: ThreeSatInstance,
) -> Optional[Tuple[int, ...]]:
    """The ``R0`` tuple whose insertion makes the join non-empty, if any."""
    solution = dpll(instance)
    if solution is None:
        return None
    return tuple(int(b) for b in solution)
