"""Unit tests for TSens truncation (Definition 6.4) and the oracle."""

import numpy as np
import pytest

from repro.dp import TruncationOracle, tsens_truncate, tuple_sensitivities
from repro.engine import Database, Relation
from repro.evaluation import count_query
from repro.query import parse_query
from repro.exceptions import MechanismConfigError


@pytest.fixture
def star_db():
    """R(U,V) joining S(V,W): one hot V value with fan-out 4."""
    rows_r = [("u1", "hot"), ("u2", "hot"), ("u3", "cold")]
    rows_s = [("hot", f"w{i}") for i in range(4)] + [("cold", "w9")]
    return Database(
        {
            "R": Relation(["U", "V"], rows_r),
            "S": Relation(["V", "W"], rows_s),
        }
    )


@pytest.fixture
def star_query():
    return parse_query("Q(U,V,W) :- R(U,V), S(V,W)")


class TestTupleSensitivities:
    def test_values(self, star_query, star_db):
        sens = tuple_sensitivities(star_query, star_db, "R")
        assert sens[("u1", "hot")] == 4
        assert sens[("u3", "cold")] == 1

    def test_selection_gives_zero(self, star_query, star_db):
        filtered = star_query.with_selection("R", lambda row: row["U"] != "u1")
        sens = tuple_sensitivities(filtered, star_db, "R")
        assert sens[("u1", "hot")] == 0
        assert sens[("u2", "hot")] == 4


class TestTruncate:
    def test_definition_6_4(self, star_query, star_db):
        truncated = tsens_truncate(star_query, star_db, "R", threshold=2)
        kept = dict(truncated.relation("R").items())
        assert kept == {("u3", "cold"): 1}
        # Other relations untouched.
        assert truncated.relation("S") == star_db.relation("S")

    def test_threshold_at_max_keeps_all(self, star_query, star_db):
        truncated = tsens_truncate(star_query, star_db, "R", threshold=4)
        assert truncated.relation("R") == star_db.relation("R")

    def test_negative_threshold_rejected(self, star_query, star_db):
        with pytest.raises(MechanismConfigError):
            tsens_truncate(star_query, star_db, "R", threshold=-1)


class TestOracle:
    def test_counts_match_reevaluation(self, star_query, star_db):
        oracle = TruncationOracle(star_query, star_db, "R")
        for threshold in range(0, 7):
            assert oracle.truncated_count(
                threshold
            ) == oracle.truncated_count_reevaluated(threshold)

    def test_monotone_in_threshold(self, star_query, star_db):
        oracle = TruncationOracle(star_query, star_db, "R")
        counts = [oracle.truncated_count(i) for i in range(0, 7)]
        assert counts == sorted(counts)
        assert counts[-1] == oracle.base_count

    def test_base_count(self, star_query, star_db):
        oracle = TruncationOracle(star_query, star_db, "R")
        assert oracle.base_count == count_query(star_query, star_db)

    def test_max_primary_sensitivity(self, star_query, star_db):
        oracle = TruncationOracle(star_query, star_db, "R")
        assert oracle.max_primary_sensitivity == 4

    def test_truncated_fraction(self, star_query, star_db):
        oracle = TruncationOracle(star_query, star_db, "R")
        assert oracle.truncated_fraction(4) == 0.0
        assert oracle.truncated_fraction(2) == pytest.approx(2 / 3)

    def test_bag_multiplicities(self):
        q = parse_query("R(U), S(U)")
        db = Database(
            {
                "R": Relation(["U"], {("a",): 3, ("b",): 1}),
                "S": Relation(["U"], {("a",): 2, ("b",): 1}),
            }
        )
        oracle = TruncationOracle(q, db, "R")
        # δ(R(a)) = 2 (its S partners); removing all 3 copies drops 6.
        assert oracle.base_count == 7
        assert oracle.truncated_count(1) == 1
        assert oracle.truncated_count(1) == oracle.truncated_count_reevaluated(1)


class TestGlobalSensitivityProperty:
    def test_truncated_query_changes_at_most_tau(self, star_query, star_db):
        """Empirical Theorem 6.1 check: |Q(T(D', τ)) − Q(T(D, τ))| ≤ τ for
        neighbouring D' (one primary tuple added/removed), with the
        truncation recomputed on each database."""
        tau = 2

        def truncated_count(db):
            return count_query(
                star_query, tsens_truncate(star_query, db, "R", tau)
            )

        base = truncated_count(star_db)
        rng = np.random.default_rng(0)
        candidates = [("u1", "hot"), ("u9", "hot"), ("u9", "cold"), ("zz", "zz")]
        for row in candidates:
            grown = truncated_count(star_db.add_tuple("R", row))
            assert abs(grown - base) <= tau
        for row in star_db.relation("R"):
            shrunk = truncated_count(star_db.remove_tuple("R", row))
            assert abs(shrunk - base) <= tau
