"""Serving == fresh evaluation at the pinned epoch, under concurrency.

The serving layer's whole contract is *epoch consistency*: a reader that
acquired a lease observes answers equal to a fresh one-shot session over
the database exactly as it stood at that epoch — no matter how many
writer batches fold into newer epochs meanwhile, and no matter whether
the answer came off the live head state (under the session lock) or a
superseded epoch's frozen fork.  Three properties pin it, on both
execution backends:

* **Concurrent readers** — N reader threads racing a writer that commits
  a random batch stream: every observed ``(epoch, count, LS)`` triple
  matches a fresh :func:`~repro.session.prepare` over that epoch's
  replayed database.
* **Writer failure atomicity** — a batch that dies mid-apply (unknown
  relation after valid elements) advances nothing: the head epoch id,
  and every answer served from it, stays bit-identical to the pre-batch
  epoch.
* **Coalescing transparency** — answers produced through the admission
  queue (merged probe passes, deduplicated reads) equal the same
  requests issued serially against the session.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import prepare
from repro.datasets import (
    random_acyclic_query,
    random_database,
    random_update_stream,
)
from repro.exceptions import UnknownRelationError
from repro.serve import AdmissionQueue, EpochManager

seeds = st.integers(min_value=0, max_value=10_000)

BACKENDS = ("python", "columnar")

N_READERS = 4


def _replayed(db, stream):
    for op, relation, row in stream:
        db = (
            db.add_tuple(relation, row)
            if op == "insert"
            else db.remove_tuple(relation, row)
        )
    return db


def _batched(stream, rng):
    """Split a stream into random 1–3 element batches (epoch granularity)."""
    batches = []
    cursor = 0
    while cursor < len(stream):
        size = int(rng.integers(1, 4))
        batches.append(stream[cursor : cursor + size])
        cursor += size
    return batches


@pytest.mark.parametrize("backend", BACKENDS)
class TestConcurrentEpochConsistency:
    @given(seeds, st.integers(min_value=1, max_value=12))
    @settings(max_examples=6, deadline=None)
    def test_racing_readers_match_fresh_evaluation_at_their_epoch(
        self, backend, seed, n_updates
    ):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=2)
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        stream = random_update_stream(query, db, rng, n_updates)
        batches = _batched(stream, rng)

        # Epoch i is the database after the first i batches, replayed
        # immutably — the ground truth every observation is judged by.
        epoch_dbs = [db]
        for batch in batches:
            epoch_dbs.append(_replayed(epoch_dbs[-1], batch))

        manager = EpochManager(session)
        pinned = manager.acquire()  # stays at epoch 0 throughout
        observations = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                lease = manager.acquire()
                try:
                    count = manager.count(lease)
                    ls = manager.sensitivity(lease).local_sensitivity
                    observations.append((lease.epoch_id, count, ls))
                finally:
                    lease.release()

        threads = [threading.Thread(target=reader) for _ in range(N_READERS)]
        for thread in threads:
            thread.start()
        try:
            for batch in batches:
                manager.apply(batch)
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        # The epoch-0 lease survived every swap: its answers still come
        # from the frozen pre-update snapshot.
        assert manager.head.epoch_id == len(batches)
        assert manager.count(pinned) == prepare(query, db).count()

        expected = {}
        for epoch_id, count, ls in observations:
            if epoch_id not in expected:
                fresh = prepare(query, epoch_dbs[epoch_id])
                expected[epoch_id] = (
                    fresh.count(),
                    fresh.sensitivity().local_sensitivity,
                )
            assert (count, ls) == expected[epoch_id], (
                f"epoch {epoch_id}: served ({count}, {ls}), "
                f"fresh {expected[epoch_id]}"
            )
        pinned.release()
        manager.close()
        session.close()


@pytest.mark.parametrize("backend", BACKENDS)
class TestWriterFailureAtomicity:
    @given(seeds, st.integers(min_value=0, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_failed_batch_leaves_epoch_bit_identical(
        self, backend, seed, n_updates
    ):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=2)
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        stream = random_update_stream(query, db, rng, n_updates)
        manager = EpochManager(session)
        if stream:
            manager.apply(stream)

        lease = manager.acquire()
        before = (
            manager.count(lease),
            manager.sensitivity(lease).local_sensitivity,
            manager.head.epoch_id,
        )
        relation = query.relation_names[0]
        arity = len(query.atoms[0].variables)
        poison = [
            ("insert", relation, tuple(0 for _ in range(arity))),
            ("insert", "NoSuchRelation", (1,)),
        ]
        with pytest.raises(UnknownRelationError):
            manager.apply(poison)

        # Nothing advanced, nothing committed — including the valid
        # prefix of the poisoned batch.
        assert manager.head.epoch_id == before[2]
        assert not lease.epoch.superseded
        after = (
            manager.count(lease),
            manager.sensitivity(lease).local_sensitivity,
            manager.head.epoch_id,
        )
        assert after == before
        fresh = prepare(query, _replayed(db, stream))
        assert after[0] == fresh.count()
        assert after[1] == fresh.sensitivity().local_sensitivity

        # The writer thread survived the failure: a good batch commits.
        applied = manager.apply([("insert", relation, tuple(0 for _ in range(arity)))])
        assert applied.epoch_id == before[2] + 1
        lease.release()
        manager.close()
        session.close()


@pytest.mark.parametrize("backend", BACKENDS)
class TestCoalescingTransparency:
    @given(seeds, st.integers(min_value=1, max_value=16))
    @settings(max_examples=8, deadline=None)
    def test_coalesced_probes_equal_serial_probes(
        self, backend, seed, n_requests
    ):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=2)
        db = random_database(query, rng, allow_empty=False, backend=backend)
        session = prepare(query, db)
        relation = query.relation_names[int(rng.integers(len(query.relation_names)))]
        arity = len(
            next(a for a in query.atoms if a.relation == relation).variables
        )
        requests = [
            [
                tuple(int(rng.integers(0, 4)) for _ in range(arity))
                for _ in range(int(rng.integers(1, 4)))
            ]
            for _ in range(n_requests)
        ]
        serial = [session.probe(relation, rows) for rows in requests]

        manager = EpochManager(session)
        queue = AdmissionQueue(manager)
        lease = manager.acquire()
        futures = [
            queue.submit_probe(lease, relation, rows) for rows in requests
        ]
        coalesced = [future.result(timeout=60) for future in futures]
        assert coalesced == serial
        # Coalescing happened at all: fewer engine passes than requests
        # whenever several requests landed in one dispatch round.
        stats = queue.stats()
        assert stats["probe_requests"] == n_requests
        assert 1 <= stats["probe_passes"] <= n_requests
        lease.release()
        queue.close()
        manager.close()
        session.close()

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_deduplicated_reads_equal_direct_reads(self, backend, seed):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=2)
        db = random_database(query, rng, backend=backend)
        session = prepare(query, db)
        direct_count = session.count()
        direct_ls = session.sensitivity().local_sensitivity

        manager = EpochManager(session)
        queue = AdmissionQueue(manager)
        lease = manager.acquire()
        count_futures = [
            queue.submit_read(lease, "count") for _ in range(6)
        ]
        sens_futures = [
            queue.submit_read(lease, "sensitivity", method="auto")
            for _ in range(6)
        ]
        assert all(f.result(timeout=60) == direct_count for f in count_futures)
        assert all(
            f.result(timeout=60).local_sensitivity == direct_ls
            for f in sens_futures
        )
        lease.release()
        queue.close()
        manager.close()
        session.close()
