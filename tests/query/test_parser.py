"""Unit tests for the datalog-style query parser."""

import pytest

from repro.query import parse_query
from repro.exceptions import ParseError


class TestParsing:
    def test_with_head(self):
        q = parse_query("Q(A,B,C) :- R1(A,B), R2(B,C)")
        assert q.name == "Q"
        assert q.relation_names == ("R1", "R2")
        assert q.variables == ("A", "B", "C")

    def test_body_only(self):
        q = parse_query("R1(A,B), R2(B,C)")
        assert q.relation_names == ("R1", "R2")

    def test_whitespace_insensitive(self):
        q = parse_query("  Q( A , B )   :-   R ( A , B )  ")
        assert q.relation_names == ("R",)

    def test_name_override(self):
        q = parse_query("Q(A) :- R(A)", name="custom")
        assert q.name == "custom"

    def test_underscored_identifiers(self):
        q = parse_query("my_rel(var_1, Var2)")
        assert q.atom("my_rel").variables == ("var_1", "Var2")


class TestErrors:
    def test_empty_string(self):
        with pytest.raises(ParseError):
            parse_query("")

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse_query("not a query!!!")

    def test_missing_comma(self):
        with pytest.raises(ParseError):
            parse_query("R(A,B) S(B,C)")

    def test_head_must_be_single_atom(self):
        with pytest.raises(ParseError):
            parse_query("Q(A), P(B) :- R(A,B)")

    def test_head_missing_variable_rejected(self):
        # Full CQs project nothing away.
        with pytest.raises(ParseError):
            parse_query("Q(A) :- R(A,B)")

    def test_head_extra_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(A,B,Z) :- R(A,B)")

    def test_empty_parentheses(self):
        with pytest.raises(ParseError):
            parse_query("R()")

    def test_self_join_propagates(self):
        from repro.exceptions import SelfJoinError

        with pytest.raises(SelfJoinError):
            parse_query("R(A,B), R(B,C)")
