"""Edge-case values: huge multiplicities, unicode, None, mixed types.

Python's arbitrary-precision integers mean the engine is *exact* for
counts far beyond what float- or int64-based engines can represent — a
real property for sensitivity computation, where counts multiply along
join paths.  These tests pin that down, plus value-domain corners.
"""

import pytest

from repro.core import local_sensitivity, tsens
from repro.engine import Database, Relation, group_by, join
from repro.query import parse_query


class TestHugeMultiplicities:
    def test_join_counts_exact_beyond_int64(self):
        big = 10**12
        left = Relation(["A"], {(0,): big})
        right = Relation(["A"], {(0,): big})
        assert join(left, right).multiplicity((0,)) == big * big  # 10^24

    def test_sensitivity_exact_beyond_int64(self):
        big = 10**10
        q = parse_query("R(A), S(A), T(A)")
        db = Database(
            {
                "R": Relation(["A"], {(0,): big}),
                "S": Relation(["A"], {(0,): big}),
                "T": Relation(["A"], {(0,): 1}),
            }
        )
        result = tsens(q, db)
        # Adding one T(0) creates big × big new outputs — exactly.
        assert result.per_relation["T"].sensitivity == big * big

    def test_group_by_sums_exactly(self):
        rel = Relation(["A", "B"], {(0, i): 10**15 for i in range(10)})
        grouped = group_by(rel, ("A",))
        assert grouped.multiplicity((0,)) == 10 * 10**15


class TestValueDomains:
    def test_unicode_values(self):
        q = parse_query("R(A,B), S(B,C)")
        db = Database(
            {
                "R": Relation(["A", "B"], [("héllo", "wörld"), ("日本", "wörld")]),
                "S": Relation(["B", "C"], [("wörld", "🎉")]),
            }
        )
        result = local_sensitivity(q, db)
        assert result.local_sensitivity == 2
        assert result.witness.relation == "S"

    def test_none_values_join(self):
        left = Relation(["A", "B"], [(None, 1)])
        right = Relation(["B", "C"], [(1, None)])
        out = join(left, right)
        assert out.multiplicity((None, 1, None)) == 1

    def test_mixed_type_column(self):
        # Values of different types may coexist; they simply never join.
        q = parse_query("R(A), S(A)")
        db = Database(
            {
                "R": Relation(["A"], [(1,), ("1",)]),
                "S": Relation(["A"], [(1,)]),
            }
        )
        from repro.evaluation import count_query

        assert count_query(q, db) == 1

    def test_tuple_valued_cells(self):
        # Composite values (e.g. the paper's "combine adjacent attributes"
        # trick) work because cells only need to be hashable.
        q = parse_query("R(AB), S(AB)")
        db = Database(
            {
                "R": Relation(["AB"], [((1, 2),), ((3, 4),)]),
                "S": Relation(["AB"], [((1, 2),)]),
            }
        )
        result = local_sensitivity(q, db)
        assert result.local_sensitivity == 1
