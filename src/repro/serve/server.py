"""The asyncio NDJSON front end of the serving layer.

:class:`SessionServer` wires the pieces of :mod:`repro.serve` together
around one live :class:`~repro.session.PreparedQuery`:

* every read request pins an epoch lease
  (:class:`~repro.serve.epochs.EpochManager`) for exactly the lifetime
  of the request, so its answer — and the ``epoch`` field echoed in the
  response — is consistent with one committed database version;
* reads are admitted through the coalescing queue
  (:class:`~repro.serve.admission.AdmissionQueue`), so concurrent
  same-epoch probes ride one vectorized pass and duplicate
  count/sensitivity requests execute once;
* ``apply`` requests queue on the single writer thread and resolve with
  the new epoch id;
* ``release`` requests spend the calling tenant's isolated budget
  (:class:`~repro.serve.tenants.TenantRegistry`) — never coalesced,
  never shared.

The event loop itself does no engine work: requests ``await`` futures
resolved by the admission/writer threads (or run blocking calls in the
default executor), so one slow sensitivity computation never stalls
frame parsing for other connections.  Connections are handled
request-at-a-time; concurrency — and hence coalescing — comes from many
connections, which is how real callers (and the bench/property suites)
drive the server.  Shutdown is graceful: a ``shutdown`` frame (or
:meth:`SessionServer.stop`) finishes in-flight requests, answers them,
then closes the listener and drains the worker threads.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from typing import Dict, Iterable, Optional, Tuple

from repro.exceptions import ProtocolError, ServeError, TenantError
from repro.serve.admission import AdmissionQueue
from repro.serve.epochs import EpochManager
from repro.serve.protocol import (
    MAX_LINE,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_response,
    explanation_to_dict,
    ok_response,
    outcome_to_dict,
    parse_request,
    sensitivity_result_to_dict,
)
from repro.serve.tenants import TenantRegistry
from repro.session import PreparedQuery


class SessionServer:
    """Serve one prepared query over newline-delimited JSON.

    Parameters
    ----------
    session:
        The live maintained session.  The server takes over mutation
        (its epoch manager owns the single writer); the caller keeps
        ownership of the session object itself and closes it after
        :meth:`stop`.
    host, port:
        Listen address; ``port=0`` (the default) binds an ephemeral port,
        published on :attr:`port` once the server is ready.
    default_epsilon:
        Open-door tenant mode: unknown tenant ids presented to
        ``release`` are auto-registered with this total budget.  ``None``
        requires tenants to be pre-registered on :attr:`tenants`.
    max_batch:
        Probe-coalescing cap, forwarded to the admission queue.

    Run blocking (:meth:`run`), or in a daemon thread behind the calling
    thread (:meth:`start_background` / :meth:`stop`) — the pattern the
    tests, benchmarks and ``repro serve`` CLI all use.
    """

    def __init__(
        self,
        session: PreparedQuery,
        host: str = "127.0.0.1",
        port: int = 0,
        default_epsilon: Optional[float] = None,
        tenants: Optional[TenantRegistry] = None,
        max_batch: int = 4096,
    ):
        self._session = session
        self.manager = EpochManager(session)
        self.admission = AdmissionQueue(self.manager, max_batch=max_batch)
        self.tenants = (
            tenants if tenants is not None else TenantRegistry(default_epsilon)
        )
        self._host_arg = host
        self._port_arg = port
        #: Bound address, available once the server is ready.
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._requests_served = 0
        self._counter_mutex = threading.Lock()
        self._connections: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._handlers = {
            "count": self._op_count,
            "probe": self._op_probe,
            "sensitivity": self._op_sensitivity,
            "top_k": self._op_top_k,
            "explain": self._op_explain,
            "release": self._op_release,
            "apply": self._op_apply,
            "stats": self._op_stats,
            "epoch": self._op_epoch,
            "shutdown": self._op_shutdown,
        }

    # ------------------------------------------------------------ lifecycle
    def run(self) -> None:
        """Serve until a ``shutdown`` frame or :meth:`stop` (blocking)."""
        try:
            asyncio.run(self._main())
        finally:
            self.admission.close()
            self.manager.close()

    def start_background(self) -> "SessionServer":
        """Start serving on a daemon thread; returns once the listener is
        bound (:attr:`host`/:attr:`port` are then valid)."""
        if self._thread is not None:
            raise ServeError("server was already started")
        self._thread = threading.Thread(
            target=self.run, name="repro-serve-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise ServeError("server failed to become ready within 60s")
        if self._startup_error is not None:
            self._thread.join()
            raise ServeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Trigger graceful shutdown and wait for the serving thread."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._signal_shutdown)
            except RuntimeError:
                pass  # loop already shut down between the checks
        if self._thread is not None:
            self._thread.join(timeout)

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until the background serving thread exits (e.g. after a
        client-issued ``shutdown`` frame)."""
        if self._thread is not None:
            self._thread.join(timeout)

    def _signal_shutdown(self) -> None:
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    def __enter__(self) -> "SessionServer":
        return self.start_background()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection,
                self._host_arg,
                self._port_arg,
                limit=MAX_LINE + 2,
            )
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        address = server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        self._ready.set()
        async with server:
            await self._shutdown_event.wait()
            server.close()
            await server.wait_closed()
            # Connection handlers race readline against the shutdown
            # event, so idle connections exit promptly; give in-flight
            # requests a grace window, then abort stragglers.
            for _ in range(200):
                if not self._connections:
                    break
                await asyncio.sleep(0.05)
            for writer in list(self._connections):
                writer.close()

    # ---------------------------------------------------------- connections
    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                line = await self._next_line(reader, writer)
                if line is None:
                    break
                if not line.strip():
                    continue
                response, stop = await self._handle_line(line)
                await self._write(writer, response)
                if stop:
                    self._signal_shutdown()
                    break
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _next_line(self, reader, writer) -> Optional[bytes]:
        """The next frame, or ``None`` on EOF/shutdown/oversized input."""
        read_task = asyncio.ensure_future(reader.readline())
        stop_task = asyncio.ensure_future(self._shutdown_event.wait())
        try:
            done, _pending = await asyncio.wait(
                {read_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            stop_task.cancel()
        if read_task not in done:
            read_task.cancel()
            return None
        try:
            line = read_task.result()
        except (asyncio.LimitOverrunError, ValueError):
            await self._write(
                writer,
                error_response(
                    None, ProtocolError(f"frame exceeds MAX_LINE={MAX_LINE}")
                ),
            )
            return None
        except (ConnectionError, OSError):
            return None
        return line or None

    async def _handle_line(
        self, line: bytes
    ) -> Tuple[Dict[str, object], bool]:
        request_id: object = None
        op = ""
        try:
            payload = decode_frame(line)
            request_id, op, params = parse_request(payload)
            result, epoch = await self._handlers[op](params)
        except Exception as exc:
            return error_response(request_id, exc), False
        with self._counter_mutex:
            self._requests_served += 1
        return ok_response(request_id, result, epoch), op == "shutdown"

    async def _write(self, writer, payload: Dict[str, object]) -> None:
        try:
            frame = encode_frame(payload)
        except ProtocolError as exc:
            frame = encode_frame(error_response(payload.get("id"), exc))
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; its request was still served

    # -------------------------------------------------------------- helpers
    async def _admit_read(self, kind: str, **params):
        """Lease -> coalesced read -> release; returns (result, epoch)."""
        lease = self.manager.acquire()
        try:
            result = await asyncio.wrap_future(
                self.admission.submit_read(lease, kind, **params)
            )
            return result, lease.epoch_id
        finally:
            lease.release()

    @staticmethod
    def _skip(params: Dict[str, object]) -> Tuple[str, ...]:
        skip = params.get("skip_relations", ())
        if not isinstance(skip, (list, tuple)):
            raise ProtocolError("'skip_relations' must be a list")
        return tuple(skip)

    # ------------------------------------------------------------- handlers
    async def _op_count(self, params):
        count, epoch = await self._admit_read("count")
        return {"count": count}, epoch

    async def _op_probe(self, params):
        relation = params.get("relation")
        rows = params.get("rows")
        if not isinstance(relation, str) or not isinstance(rows, list):
            raise ProtocolError(
                "probe needs a string 'relation' and a list 'rows'"
            )
        lease = self.manager.acquire()
        try:
            weights = await asyncio.wrap_future(
                self.admission.submit_probe(lease, relation, rows)
            )
            return {"weights": weights}, lease.epoch_id
        finally:
            lease.release()

    async def _op_sensitivity(self, params):
        result, epoch = await self._admit_read(
            "sensitivity",
            method=params.get("method", "auto"),
            skip_relations=self._skip(params),
            top_k=params.get("top_k"),
        )
        return sensitivity_result_to_dict(result), epoch

    async def _op_top_k(self, params):
        k = params.get("k")
        if not isinstance(k, int) or k < 1:
            raise ProtocolError("top_k needs a positive integer 'k'")
        result, epoch = await self._admit_read(
            "top_k", k=k, skip_relations=self._skip(params)
        )
        return sensitivity_result_to_dict(result), epoch

    async def _op_explain(self, params):
        result, epoch = await self._admit_read(
            "explain", skip_relations=self._skip(params)
        )
        return explanation_to_dict(result), epoch

    async def _op_release(self, params):
        tenant_id = params.get("tenant")
        if not isinstance(tenant_id, str) or not tenant_id:
            raise TenantError("release needs a non-empty string 'tenant'")
        tenant = self.tenants.get(tenant_id)
        epsilon = params.get("epsilon")
        if not isinstance(epsilon, (int, float)) or isinstance(epsilon, bool):
            raise ProtocolError("release needs a numeric 'epsilon'")
        kwargs: Dict[str, object] = {"accountant": tenant.accountant}
        for name in (
            "mechanism",
            "primary",
            "ell",
            "delta",
            "clamp_nonnegative",
            "max_threshold",
        ):
            if name in params:
                kwargs[name] = params[name]
        if "skip_relations" in params:
            kwargs["skip_relations"] = self._skip(params)
        lease = self.manager.acquire()
        try:
            # Releases draw fresh noise and spend budget per request, so
            # they bypass the coalescing queue; the executor keeps the
            # sensitivity work off the event loop.
            outcome = await asyncio.get_running_loop().run_in_executor(
                None,
                functools.partial(
                    self.manager.release, lease, float(epsilon), **kwargs
                ),
            )
            return outcome_to_dict(outcome), lease.epoch_id
        finally:
            lease.release()

    async def _op_apply(self, params):
        batch = params.get("batch")
        if not isinstance(batch, list):
            raise ProtocolError("apply needs a list 'batch'")
        applied = await asyncio.wrap_future(self.manager.submit(batch))
        return (
            {"count": applied.count, "applied": applied.applied},
            applied.epoch_id,
        )

    async def _op_stats(self, params):
        lease = self.manager.acquire()
        try:
            session_stats = await asyncio.wrap_future(
                self.admission.submit_read(lease, "stats")
            )
            with self._counter_mutex:
                served = self._requests_served
            payload = {
                "protocol": PROTOCOL_VERSION,
                "requests_served": served,
                "session": session_stats,
                "epochs": self.manager.stats(),
                "admission": self.admission.stats(),
                "tenants": self.tenants.stats(),
            }
            return payload, lease.epoch_id
        finally:
            lease.release()

    async def _op_epoch(self, params):
        head = self.manager.head
        return (
            {
                "epoch": head.epoch_id,
                "updates_applied": head.updates_applied,
                "protocol": PROTOCOL_VERSION,
            },
            head.epoch_id,
        )

    async def _op_shutdown(self, params):
        return {"shutting_down": True}, None

    def __repr__(self) -> str:
        bound = f"{self.host}:{self.port}" if self.port else "unbound"
        return f"SessionServer({bound}, head={self.manager.head.epoch_id})"


def serve(
    session: PreparedQuery,
    host: str = "127.0.0.1",
    port: int = 0,
    default_epsilon: Optional[float] = None,
    tenant_budgets: Optional[Dict[str, float]] = None,
    max_batch: int = 4096,
) -> SessionServer:
    """Build a :class:`SessionServer` with pre-registered tenant budgets
    (convenience constructor used by the CLI and examples)."""
    registry = TenantRegistry(default_epsilon)
    for tenant_id, budget in (tenant_budgets or {}).items():
        registry.register(tenant_id, budget)
    return SessionServer(
        session,
        host=host,
        port=port,
        tenants=registry,
        max_batch=max_batch,
    )
