"""Package-level sanity: public API surface and metadata."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.engine",
    "repro.evaluation",
    "repro.query",
    "repro.core",
    "repro.baselines",
    "repro.dp",
    "repro.datasets",
    "repro.workloads",
    "repro.experiments",
]


class TestPublicApi:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_version(self):
        import repro

        assert repro.__version__

    def test_top_level_quickstart_docstring_example(self):
        # The snippet in repro.__doc__ must keep working.
        from repro import Database, Relation, local_sensitivity, parse_query

        q = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
        db = Database(
            {
                "R": Relation(["A", "B"], [(1, 2)]),
                "S": Relation(["B", "C"], [(2, 3), (2, 4)]),
            }
        )
        assert local_sensitivity(q, db).local_sensitivity == 2

    def test_exception_hierarchy(self):
        from repro import exceptions

        for name in (
            "SchemaError",
            "QueryStructureError",
            "NotAcyclicError",
            "SelfJoinError",
            "DecompositionError",
            "ParseError",
            "PrivacyBudgetError",
            "MechanismConfigError",
            "UnknownRelationError",
            "UnknownAttributeError",
        ):
            cls = getattr(exceptions, name)
            assert issubclass(cls, exceptions.ReproError)
