"""Unit tests for the dispatch API :mod:`repro.core.api`."""

import pytest

from repro.core import local_sensitivity, most_sensitive_tuples
from repro.engine import Database, Relation
from repro.query import parse_query
from repro.exceptions import MechanismConfigError


class TestDispatch:
    def test_auto_picks_path_for_path_queries(self, fig3_query, fig3_db):
        assert local_sensitivity(fig3_query, fig3_db).method == "path"

    def test_auto_picks_tsens_for_trees(self, fig1_query, fig1_db):
        assert local_sensitivity(fig1_query, fig1_db).method == "tsens"

    def test_auto_handles_cyclic(self, triangle_query, triangle_db):
        result = local_sensitivity(triangle_query, triangle_db)
        assert result.method == "tsens"
        assert result.local_sensitivity > 0

    def test_explicit_naive(self, fig1_query, fig1_db):
        assert (
            local_sensitivity(fig1_query, fig1_db, method="naive").method
            == "naive"
        )

    def test_explicit_path_on_non_path_raises(self, fig1_query, fig1_db):
        from repro.exceptions import QueryStructureError

        with pytest.raises(QueryStructureError):
            local_sensitivity(fig1_query, fig1_db, method="path")

    def test_top_k_route(self, fig3_query, fig3_db):
        result = local_sensitivity(fig3_query, fig3_db, top_k=2)
        assert result.method == "tsens-top2"

    def test_unknown_method(self, fig1_query, fig1_db):
        with pytest.raises(MechanismConfigError):
            local_sensitivity(fig1_query, fig1_db, method="magic")

    def test_all_methods_agree(self, fig3_query, fig3_db):
        values = {
            local_sensitivity(fig3_query, fig3_db, method=m).local_sensitivity
            for m in ("auto", "path", "tsens", "naive")
        }
        assert len(values) == 1

    def test_tree_override_disables_path_shortcut(self, fig3_query, fig3_db):
        from repro.query import gyo_join_tree

        tree = gyo_join_tree(fig3_query)
        result = local_sensitivity(fig3_query, fig3_db, tree=tree)
        assert result.method == "tsens"
        assert (
            result.local_sensitivity
            == local_sensitivity(fig3_query, fig3_db).local_sensitivity
        )


class TestMostSensitiveTuples:
    def test_per_relation_report(self, fig1_query, fig1_db):
        tuples = most_sensitive_tuples(fig1_query, fig1_db)
        assert set(tuples) == set(fig1_query.relation_names)
        assert tuples["R1"].sensitivity == 4

    def test_skip_relations(self, fig1_query, fig1_db):
        tuples = most_sensitive_tuples(
            fig1_query, fig1_db, skip_relations=("R1",)
        )
        assert tuples["R1"].sensitivity == 1
