"""Unit tests for query classification (path / doubly acyclic / cyclic)."""

import pytest

from repro.query import (
    classify,
    gyo_join_tree,
    is_doubly_acyclic,
    is_doubly_acyclic_tree,
    is_path_query,
    parse_query,
    path_order,
)


class TestPathOrder:
    def test_simple_chain(self, fig3_query):
        assert path_order(fig3_query) == ("R1", "R2", "R3", "R4")

    def test_chain_given_out_of_order(self):
        # Either traversal direction is a valid path order.
        q = parse_query("R3(C,D), R1(A,B), R2(B,C)")
        assert path_order(q) in (("R1", "R2", "R3"), ("R3", "R2", "R1"))

    def test_single_atom_is_trivial_path(self):
        assert path_order(parse_query("R(A,B)")) == ("R",)

    def test_unary_endpoints(self):
        q = parse_query("R(RK), N(RK,NK), C(NK,CK)")
        assert path_order(q) == ("R", "N", "C")

    def test_star_is_not_path(self, fig1_query):
        assert path_order(fig1_query) is None

    def test_triangle_is_not_path(self, triangle_query):
        assert path_order(triangle_query) is None

    def test_variable_in_three_atoms_not_path(self):
        q = parse_query("R(A,B), S(B,C), T(B,D)")
        assert path_order(q) is None

    def test_multi_attribute_boundaries(self):
        q = parse_query("R(A,B,C), S(B,C,D), T(D,E)")
        assert path_order(q) == ("R", "S", "T")

    def test_is_path_query(self, fig3_query, fig1_query):
        assert is_path_query(fig3_query)
        assert not is_path_query(fig1_query)


class TestDoublyAcyclic:
    def test_path_queries_are_doubly_acyclic(self, fig3_query):
        assert is_doubly_acyclic(fig3_query)

    def test_fig1_query(self, fig1_query):
        assert is_doubly_acyclic(fig1_query)

    def test_cyclic_query_is_not(self, triangle_query):
        assert not is_doubly_acyclic(triangle_query)

    def test_hard_local_join_from_paper(self):
        # Sec. 5.2's example: R1(A,B,C) with children R2(A,B), R3(B,C),
        # R4(C,A) — the children botjoins form a triangle at R1's
        # multiplicity-table step.
        q = parse_query("R1(A,B,C), R2(A,B), R3(B,C), R4(C,A)")
        tree = gyo_join_tree(q)
        assert not is_doubly_acyclic_tree(tree)
        assert not is_doubly_acyclic(q)


class TestClassify:
    @pytest.mark.parametrize(
        "text,label",
        [
            ("R1(A,B), R2(B,C), R3(C,D), R4(D,E)", "path"),
            ("R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)", "doubly-acyclic"),
            ("R1(A,B,C), R2(A,B), R3(B,C), R4(C,A)", "acyclic"),
            ("R1(A,B), R2(B,C), R3(C,A)", "cyclic"),
            ("R(A,B), S(C,D)", "disconnected"),
        ],
    )
    def test_labels(self, text, label):
        assert classify(parse_query(text)) == label
