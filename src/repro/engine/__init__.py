"""Bag-semantics relational engine: the substrate the paper's algorithms run on.

Two interchangeable execution backends implement the same logical relation
interface (see :mod:`repro.engine.backend`): the dict-based ``"python"``
:class:`Relation` and the numpy-based ``"columnar"``
:class:`ColumnarRelation`.  The operators dispatch on the operand type, so
all higher layers are backend-agnostic.
"""

from repro.engine.backend import (
    BACKEND_NAMES,
    BACKENDS,
    Backend,
    DEFAULT_BACKEND,
    backend_of,
    get_backend,
    register_backend,
    to_backend,
)
from repro.engine.columnar import ColumnarRelation, reset_vocabulary
from repro.engine.database import Database, ForeignKey
from repro.engine.parallel import (
    ParallelContext,
    PipelinePlan,
    WorkerPool,
    WorkerState,
    default_worker_count,
)
from repro.engine.sharding import ShardMap, ShardedRelation
from repro.engine.operators import (
    cross_product,
    difference,
    group_by,
    join,
    join_all,
    project,
    select,
    semijoin,
    symmetric_difference_size,
    union_all,
)
from repro.engine.relation import Relation, empty_like
from repro.engine.schema import Schema

__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "Backend",
    "ColumnarRelation",
    "DEFAULT_BACKEND",
    "Database",
    "ForeignKey",
    "ParallelContext",
    "PipelinePlan",
    "Relation",
    "Schema",
    "ShardMap",
    "ShardedRelation",
    "WorkerPool",
    "WorkerState",
    "backend_of",
    "cross_product",
    "default_worker_count",
    "difference",
    "empty_like",
    "get_backend",
    "group_by",
    "join",
    "join_all",
    "project",
    "register_backend",
    "reset_vocabulary",
    "select",
    "semijoin",
    "symmetric_difference_size",
    "to_backend",
    "union_all",
]
