"""Executable check of the Theorem 3.2 reduction (experiment E7)."""

import numpy as np
import pytest

from repro.core import local_sensitivity, naive_local_sensitivity
from repro.core.hardness import (
    ThreeSatInstance,
    dpll,
    reduction,
    satisfying_insertion,
)
from repro.exceptions import ReproError


def random_instance(rng, num_variables=4, num_clauses=6):
    clauses = []
    for _ in range(num_clauses):
        variables = rng.choice(num_variables, size=3, replace=False) + 1
        signs = rng.integers(0, 2, size=3).astype(bool)
        clauses.append(tuple((int(v), bool(s)) for v, s in zip(variables, signs)))
    return ThreeSatInstance(num_variables, tuple(clauses))


class TestDpll:
    def test_satisfiable(self):
        inst = ThreeSatInstance(
            3, (((1, True), (2, True), (3, True)),)
        )
        solution = dpll(inst)
        assert solution is not None
        assert inst.evaluate(solution)

    def test_unsatisfiable(self):
        # All eight sign patterns over three variables — unsatisfiable.
        clauses = []
        for bits in range(8):
            clauses.append(
                tuple((i + 1, bool(bits >> i & 1)) for i in range(3))
            )
        inst = ThreeSatInstance(3, tuple(clauses))
        assert dpll(inst) is None

    def test_random_solutions_verify(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            inst = random_instance(rng)
            solution = dpll(inst)
            if solution is not None:
                assert inst.evaluate(solution)


class TestReduction:
    def test_reduction_is_acyclic(self):
        rng = np.random.default_rng(5)
        inst = random_instance(rng)
        query, _ = reduction(inst)
        from repro.query import is_acyclic

        assert is_acyclic(query)

    def test_clause_relation_has_seven_rows(self):
        inst = ThreeSatInstance(3, (((1, True), (2, False), (3, True)),))
        _, db = reduction(inst)
        assert db.relation("C1").total_count() == 7

    def test_r0_is_empty(self):
        inst = ThreeSatInstance(3, (((1, True), (2, False), (3, True)),))
        _, db = reduction(inst)
        assert db.relation("R0").is_empty()

    def test_ls_positive_iff_satisfiable(self):
        rng = np.random.default_rng(7)
        seen = {True: 0, False: 0}
        for _ in range(15):
            inst = random_instance(rng, num_variables=4, num_clauses=7)
            query, db = reduction(inst)
            satisfiable = dpll(inst) is not None
            seen[satisfiable] += 1
            result = local_sensitivity(query, db, method="tsens")
            assert (result.local_sensitivity > 0) == satisfiable
        # The sample should include both outcomes to be meaningful.
        assert seen[True] > 0

    def test_naive_agrees_on_small_instance(self):
        inst = ThreeSatInstance(
            3,
            (
                ((1, True), (2, False), (3, True)),
                ((1, False), (2, True), (3, False)),
            ),
        )
        query, db = reduction(inst)
        fast = local_sensitivity(query, db, method="tsens")
        slow = naive_local_sensitivity(query, db, max_candidates=500_000)
        assert fast.local_sensitivity == slow.local_sensitivity

    def test_satisfying_insertion_witnesses(self):
        inst = ThreeSatInstance(
            3, (((1, True), (2, True), (3, True)),)
        )
        query, db = reduction(inst)
        row = satisfying_insertion(inst)
        assert row is not None
        from repro.evaluation import count_query

        grown = db.add_tuple("R0", row)
        assert count_query(query, grown) > 0

    def test_repeated_clause_variable_rejected(self):
        with pytest.raises(ReproError):
            reduction(
                ThreeSatInstance(2, (((1, True), (1, False), (2, True)),))
            )
