"""Unit tests for the re-evaluation baseline."""

import numpy as np

from repro.baselines import reevaluation_sensitivity
from repro.core import naive_local_sensitivity
from repro.datasets import random_acyclic_query, random_database


class TestReevaluation:
    def test_matches_naive_fig1(self, fig1_query, fig1_db):
        fast = reevaluation_sensitivity(fig1_query, fig1_db)
        slow = naive_local_sensitivity(fig1_query, fig1_db)
        assert fast.local_sensitivity == slow.local_sensitivity

    def test_matches_naive_random(self):
        rng = np.random.default_rng(21)
        for _ in range(10):
            query = random_acyclic_query(rng, num_atoms=3)
            db = random_database(query, rng)
            fast = reevaluation_sensitivity(query, db)
            slow = naive_local_sensitivity(query, db)
            assert fast.local_sensitivity == slow.local_sensitivity

    def test_sampled_mode_lower_bounds(self, fig3_query, fig3_db):
        exact = naive_local_sensitivity(fig3_query, fig3_db).local_sensitivity
        sampled = reevaluation_sensitivity(
            fig3_query, fig3_db, max_probes_per_relation=2, seed=5
        )
        assert sampled.local_sensitivity <= exact
        assert sampled.method == "reeval-sampled"

    def test_deletions_only_mode(self, fig1_query, fig1_db):
        result = reevaluation_sensitivity(
            fig1_query, fig1_db, include_insertions=False
        )
        # Downward-only: Fig. 1's LS of 4 needs an insertion, so the
        # deletions-only bound is strictly smaller.
        assert result.local_sensitivity == 1

    def test_method_label(self, fig1_query, fig1_db):
        assert reevaluation_sensitivity(fig1_query, fig1_db).method == "reeval"
