"""Unit tests for the prepared-query session API (:mod:`repro.session`)."""

import numpy as np
import pytest

from repro import PreparedQuery, local_sensitivity, most_sensitive_tuples, prepare
from repro.core import explain
from repro.dp import BudgetAccountant, run_flex_dp, run_privsql, run_tsens_dp
from repro.engine import Database, Relation
from repro.evaluation import count_query
from repro.query import gyo_join_tree, parse_query
from repro.exceptions import (
    DecompositionError,
    MechanismConfigError,
    PrivacyBudgetError,
    SessionError,
    UnknownRelationError,
)


class TestPrepare:
    def test_returns_prepared_query(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        assert isinstance(session, PreparedQuery)
        assert session.query is fig1_query
        assert session.updates_applied == 0

    def test_backend_conversion(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db, backend="columnar")
        assert session.backend == "columnar"
        assert session.count() == count_query(fig1_query, fig1_db)

    def test_connected_query_has_one_tree(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        assert session.tree is not None
        assert len(session.component_trees) == 1

    def test_disconnected_query_has_component_trees(self):
        query = parse_query("Q(A,B) :- R(A), S(B)")
        db = Database(
            {"R": Relation(["A"], [(1,)]), "S": Relation(["B"], [(2,), (3,)])}
        )
        session = prepare(query, db)
        assert session.tree is None
        assert len(session.component_trees) == 2
        assert session.count() == 2


class TestReads:
    def test_count_matches_evaluation(self, fig1_query, fig1_db):
        assert prepare(fig1_query, fig1_db).count() == count_query(
            fig1_query, fig1_db
        )

    def test_sensitivity_is_cached_until_mutation(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        first = session.sensitivity()
        assert session.sensitivity() is first
        session.insert("R3", ("a9", "e9"))
        assert session.sensitivity() is not first

    def test_method_dispatch_matches_oneshot(self, fig3_query, fig3_db):
        session = prepare(fig3_query, fig3_db)
        assert session.sensitivity().method == "path"
        assert session.sensitivity(method="tsens").method == "tsens"
        assert (
            session.sensitivity().local_sensitivity
            == local_sensitivity(fig3_query, fig3_db).local_sensitivity
        )

    def test_user_tree_disables_path_shortcut(self, fig3_query, fig3_db):
        tree = gyo_join_tree(fig3_query)
        session = prepare(fig3_query, fig3_db, tree=tree)
        assert session.sensitivity().method == "tsens"

    def test_unknown_method_raises(self, fig1_query, fig1_db):
        with pytest.raises(MechanismConfigError):
            prepare(fig1_query, fig1_db).sensitivity(method="magic")

    def test_reeval_rejects_skip_and_topk(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        with pytest.raises(MechanismConfigError):
            session.sensitivity(method="reeval", top_k=2)
        with pytest.raises(MechanismConfigError):
            session.sensitivity(method="reeval", skip_relations=("R1",))

    def test_top_k_route(self, fig3_query, fig3_db):
        result = prepare(fig3_query, fig3_db).top_k(2)
        assert result.method == "tsens-top2"
        assert (
            result.local_sensitivity
            >= local_sensitivity(fig3_query, fig3_db).local_sensitivity
        )

    def test_most_sensitive_matches_oneshot(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        oneshot = most_sensitive_tuples(fig1_query, fig1_db)
        mine = session.most_sensitive()
        assert set(mine) == set(oneshot)
        assert mine["R1"].sensitivity == oneshot["R1"].sensitivity == 4

    def test_explain_matches_oneshot_profile(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        profile = session.explain()
        oneshot = explain(fig1_query, fig1_db)
        assert profile.local_sensitivity == oneshot.local_sensitivity == 4
        assert session.explain() is profile  # cached
        session.delete("R4", ("b1", "f1"))
        assert session.explain() is not profile


class TestMostSensitiveTuplesMaxWidth:
    """The satellite fix: ``most_sensitive_tuples`` plumbs ``max_width``."""

    def test_max_width_reaches_decomposition(self, triangle_query, triangle_db):
        # A triangle needs a width-2 GHD node; forbidding merges must now
        # surface from the decomposition search instead of being silently
        # replaced by the default cap.
        with pytest.raises(DecompositionError):
            most_sensitive_tuples(triangle_query, triangle_db, max_width=1)

    def test_wider_cap_matches_default(self, triangle_query, triangle_db):
        default = most_sensitive_tuples(triangle_query, triangle_db)
        wide = most_sensitive_tuples(triangle_query, triangle_db, max_width=3)
        assert {r: w.sensitivity for r, w in default.items()} == {
            r: w.sensitivity for r, w in wide.items()
        }


class TestUpdates:
    def test_insert_and_delete_maintain_count(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        after = session.insert("R1", ("a2", "b2", "c1"))
        assert after == count_query(
            fig1_query, fig1_db.add_tuple("R1", ("a2", "b2", "c1"))
        )
        assert session.delete("R1", ("a2", "b2", "c1")) == count_query(
            fig1_query, fig1_db
        )
        assert session.updates_applied == 2

    def test_delete_absent_row_is_noop(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        before = session.count()
        assert session.delete("R1", ("zz", "zz", "zz")) == before

    def test_unknown_relation_raises(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        with pytest.raises(UnknownRelationError):
            session.insert("nope", (1, 2, 3))

    def test_apply_batch(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        count = session.apply(
            [
                ("insert", "R1", ("a2", "b2", "c1")),
                ("+", "R3", ("a2", "e3")),
                ("delete", "R2", ("a1", "b1", "d1")),
            ]
        )
        manual = (
            fig1_db.add_tuple("R1", ("a2", "b2", "c1"))
            .add_tuple("R3", ("a2", "e3"))
            .remove_tuple("R2", ("a1", "b1", "d1"))
        )
        assert count == count_query(fig1_query, manual)
        assert session.updates_applied == 3

    def test_apply_rejects_unknown_op(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        with pytest.raises(SessionError):
            session.apply([("upsert", "R1", ("a1", "b1", "c1"))])
        # A bad op anywhere in the batch aborts the whole batch: the valid
        # prefix is NOT committed and the session stays bit-identical to
        # its pre-batch state.
        before_count = session.count()
        before_ls = session.sensitivity().local_sensitivity
        with pytest.raises(SessionError):
            session.apply(
                [
                    ("insert", "R1", ("a2", "b2", "c1")),
                    ("upsert", "R1", ("a1", "b1", "c1")),
                ]
            )
        assert session.updates_applied == 0
        assert session.count() == before_count
        assert session.sensitivity().local_sensitivity == before_ls
        assert session.db.relation("R1").multiplicity(("a2", "b2", "c1")) == 0
        assert session.count() == prepare(fig1_query, session.db).count()

    def test_apply_rejects_malformed_element(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        with pytest.raises(SessionError, match="malformed update"):
            session.apply([("insert", "R1", ("a2", "b2", "c1")), ("insert",)])
        assert session.updates_applied == 0

    def test_apply_op_shorthands(self, fig1_query, fig1_db):
        # "+" / "-" are exact aliases of "insert" / "delete".
        longhand = prepare(fig1_query, fig1_db)
        shorthand = prepare(fig1_query, fig1_db)
        stream_long = [
            ("insert", "R1", ("a2", "b2", "c1")),
            ("delete", "R2", ("a1", "b1", "d1")),
        ]
        stream_short = [
            ("+", "R1", ("a2", "b2", "c1")),
            ("-", "R2", ("a1", "b1", "d1")),
        ]
        assert shorthand.apply(stream_short) == longhand.apply(stream_long)
        assert shorthand.updates_applied == longhand.updates_applied == 2
        assert (
            shorthand.sensitivity().local_sensitivity
            == longhand.sensitivity().local_sensitivity
        )

    def test_apply_compacts_cancelling_pairs(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        before = session.count()
        count = session.apply(
            [
                ("insert", "R1", ("a2", "b2", "c1")),
                ("delete", "R1", ("a2", "b2", "c1")),
                ("delete", "R1", ("zz", "zz", "zz")),  # absent: clamped no-op
            ]
        )
        assert count == before
        # Compaction is an execution strategy, not a semantic change: all
        # three stream elements committed.
        assert session.updates_applied == 3
        assert session.db.relation("R1").multiplicity(("a2", "b2", "c1")) == 0
        assert session.count() == prepare(fig1_query, session.db).count()

    def test_batch_delete_of_absent_row_is_noop(self, fig1_query, fig1_db):
        for backend in ("python", "columnar"):
            session = prepare(fig1_query, fig1_db, backend=backend)
            before = session.count()
            assert session.apply([("delete", "R1", ("zz", "zz", "zz"))]) == before
            assert session.updates_applied == 1
            # Deleting more copies than exist floors at zero, not negative.
            session.insert("R1", ("a2", "b2", "c1"))
            after_ins = session.count()
            deleted = session.apply(
                [
                    ("delete", "R1", ("a2", "b2", "c1")),
                    ("delete", "R1", ("a2", "b2", "c1")),
                ]
            )
            assert deleted == before
            assert session.db.relation("R1").multiplicity(("a2", "b2", "c1")) == 0
            assert after_ins == count_query(
                fig1_query, fig1_db.add_tuple("R1", ("a2", "b2", "c1"))
            )

    def test_overflow_mid_batch_rolls_back(self):
        """A columnar int64 overflow anywhere in the batch aborts the
        whole batch — count, sensitivity and database stay pre-batch."""
        from repro.exceptions import MultiplicityOverflowError

        big = (2**63 - 1) // 2
        query = parse_query("R(A,B), S(B,C)")
        db = Database(
            {
                "R": Relation(["A", "B"], {(1, 2): 2}),
                "S": Relation(["B", "C"], {(2, 3): big}),
            },
            backend="columnar",
        )
        session = prepare(query, db)
        before_count = session.count()
        before_ls = session.sensitivity().local_sensitivity
        with pytest.raises(MultiplicityOverflowError):
            session.apply(
                [
                    ("insert", "R", (9, 9)),  # fine on its own
                    ("insert", "R", (1, 2)),  # 3 * big overflows int64
                ]
            )
        assert session.updates_applied == 0
        assert session.count() == before_count
        assert session.sensitivity().local_sensitivity == before_ls
        assert session.db.relation("R").multiplicity((9, 9)) == 0
        assert session.db.relation("R").multiplicity((1, 2)) == 2
        # Still usable: the non-overflowing element commits on its own.
        session.apply([("insert", "R", (9, 9))])
        assert session.count() == before_count

    def test_db_snapshot_advances(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        session.insert("R3", ("a7", "e7"))
        assert session.db.relation("R3").multiplicity(("a7", "e7")) == 1
        # The caller's database object is untouched.
        assert fig1_db.relation("R3").multiplicity(("a7", "e7")) == 0

    def test_updates_on_disconnected_query(self):
        query = parse_query("Q(A,B) :- R(A), S(B)")
        db = Database(
            {"R": Relation(["A"], [(1,), (2,)]), "S": Relation(["B"], [(7,)])}
        )
        session = prepare(query, db)
        assert session.count() == 2
        assert session.insert("S", (8,)) == 4
        assert session.delete("R", (1,)) == 2
        assert session.count() == prepare(query, session.db).count()


class TestRelease:
    @pytest.fixture
    def star_session(self, tiny_facebook):
        from repro.workloads import star_workload

        workload = star_workload()
        session = prepare(workload.query, tiny_facebook, tree=workload.tree)
        return workload, session

    def test_tsensdp_matches_oneshot_with_same_rng(self, star_session):
        workload, session = star_session
        mine = session.release(
            1.0,
            mechanism="tsensdp",
            primary=workload.primary,
            ell=workload.ell,
            rng=np.random.default_rng(5),
        )
        theirs = run_tsens_dp(
            workload.query,
            session.db,
            primary=workload.primary,
            epsilon=1.0,
            ell=workload.ell,
            tree=workload.tree,
            rng=np.random.default_rng(5),
        )
        assert mine.answer == theirs.answer
        assert mine.tau == theirs.tau
        assert mine.true_count == theirs.true_count

    def test_flexdp_matches_oneshot_with_same_rng(self, star_session):
        workload, session = star_session
        mine = session.release(
            1.0,
            mechanism="flexdp",
            primary=workload.primary,
            rng=np.random.default_rng(5),
        )
        theirs = run_flex_dp(
            workload.query,
            session.db,
            primary=workload.primary,
            epsilon=1.0,
            tree=session.tree,
            rng=np.random.default_rng(5),
        )
        assert mine.answer == theirs.answer
        assert mine.smooth_sensitivity == theirs.smooth_sensitivity

    def test_privsql_matches_oneshot_with_same_rng(self, star_session):
        workload, session = star_session
        mine = session.release(
            1.0,
            mechanism="privsql",
            primary=workload.primary,
            rng=np.random.default_rng(5),
        )
        theirs = run_privsql(
            workload.query,
            session.db,
            primary=workload.primary,
            epsilon=1.0,
            tree=session.tree,
            rng=np.random.default_rng(5),
        )
        assert mine.answer == theirs.answer
        assert mine.global_sensitivity == theirs.global_sensitivity

    def test_release_reuses_cached_oracle(self, star_session):
        workload, session = star_session
        oracle = session.truncation_oracle(workload.primary)
        session.release(
            1.0,
            mechanism="tsensdp",
            primary=workload.primary,
            ell=workload.ell,
            rng=np.random.default_rng(0),
        )
        assert session.truncation_oracle(workload.primary) is oracle

    def test_accountant_tracks_and_refuses_overdraft(self, star_session):
        workload, session = star_session
        accountant = BudgetAccountant(1.5)
        session.release(
            1.0,
            mechanism="tsensdp",
            primary=workload.primary,
            ell=workload.ell,
            accountant=accountant,
            rng=np.random.default_rng(0),
        )
        assert accountant.spent == pytest.approx(1.0)
        with pytest.raises(PrivacyBudgetError):
            session.release(
                1.0,
                mechanism="flexdp",
                primary=workload.primary,
                accountant=accountant,
                rng=np.random.default_rng(0),
            )
        # The failed spend must not have consumed budget.
        assert accountant.remaining == pytest.approx(0.5)

    def test_config_errors(self, star_session):
        workload, session = star_session
        with pytest.raises(MechanismConfigError):
            session.release(1.0, mechanism="magic", primary=workload.primary)
        with pytest.raises(MechanismConfigError):
            session.release(1.0, mechanism="tsensdp")  # no primary
        with pytest.raises(MechanismConfigError):
            session.release(
                1.0, mechanism="tsensdp", primary=workload.primary
            )  # no ell
        with pytest.raises(MechanismConfigError):
            session.release(1.0, mechanism="tsensdp", primary="nope", ell=5)

    def test_config_errors_do_not_burn_budget(self, star_session):
        """Validation must precede the accountant spend: a release that
        dies on bad configuration must leave the budget untouched."""
        workload, session = star_session
        accountant = BudgetAccountant(1.0)
        bad_configs = [
            dict(mechanism="magic", primary=workload.primary),
            dict(mechanism="tsensdp", primary=workload.primary),  # no ell
            dict(mechanism="tsensdp", primary=workload.primary, ell=0),
            dict(mechanism="tsensdp", primary="nope", ell=5),
            dict(mechanism="flexdp", primary=workload.primary, delta=1.5),
        ]
        for config in bad_configs:
            with pytest.raises(MechanismConfigError):
                session.release(0.6, accountant=accountant, **config)
            assert accountant.spent == 0.0
        # The budget is still fully available for a corrected release.
        session.release(
            1.0,
            mechanism="tsensdp",
            primary=workload.primary,
            ell=workload.ell,
            accountant=accountant,
            rng=np.random.default_rng(0),
        )
        assert accountant.remaining == pytest.approx(0.0)

    def test_release_sees_committed_updates(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        before = session.release(
            10.0,
            mechanism="tsensdp",
            primary="R1",
            ell=8,
            rng=np.random.default_rng(3),
        )
        session.insert("R1", ("a2", "b2", "c1"))
        after = session.release(
            10.0,
            mechanism="tsensdp",
            primary="R1",
            ell=8,
            rng=np.random.default_rng(3),
        )
        assert before.true_count == 1
        assert after.true_count == 5


class TestServingSurface:
    """The session hooks the serving layer builds on: stats, probe, fork,
    and the documented thread-safety contract."""

    def test_stats_before_evaluator(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        stats = session.stats()
        assert stats["backend"] == "python"
        assert stats["workers"] == 1
        assert stats["evaluator_built"] is False
        assert stats["updates_applied"] == 0
        assert stats["maintained_components"] == []
        assert set(stats["relation_cardinalities"]) == set(
            fig1_query.relation_names
        )

    def test_stats_after_reads_and_updates(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        session.count()
        session.insert("R1", ("a2", "b2", "c1"))
        session.sensitivity()  # re-cached after the mutation
        stats = session.stats()
        assert stats["evaluator_built"] is True
        assert stats["updates_applied"] == 1
        assert (
            stats["relation_cardinalities"]["R1"]
            == fig1_db.relation("R1").total_count() + 1
        )
        assert len(stats["maintained_components"]) == 1
        component = stats["maintained_components"][0]
        assert component["botjoins"] == component["nodes"]
        assert stats["cached_results"] >= 1

    def test_stats_is_json_safe(self, fig1_query, fig1_db):
        import json

        session = prepare(fig1_query, fig1_db)
        session.sensitivity()
        json.dumps(session.stats())

    def test_probe_matches_insert_then_count(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        base = session.count()
        row = ("a2", "b2", "c1")
        (weight,) = session.probe("R1", [row])
        assert session.insert("R1", row) == base + weight

    def test_fork_is_independent(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        fork = session.fork()
        session.insert("R1", ("a2", "b2", "c1"))
        assert fork.count() == count_query(fig1_query, fig1_db)
        assert session.count() != fork.count()
        assert fork.updates_applied == 0

    def test_fork_over_explicit_snapshot(self, fig1_query, fig1_db):
        session = prepare(fig1_query, fig1_db)
        snapshot = session.db
        session.insert("R1", ("a2", "b2", "c1"))
        pinned = session.fork(snapshot)
        assert pinned.count() == count_query(fig1_query, fig1_db)

    def test_lock_serialises_reads_against_apply(self, fig1_query, fig1_db):
        import threading

        session = prepare(fig1_query, fig1_db)
        session.count()
        snapshots = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                with session.lock:
                    snapshots.append(
                        (session.updates_applied, session.count())
                    )

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(20):
                session.apply(
                    [
                        ("insert", "R1", ("a2", "b2", "c1")),
                        ("delete", "R1", ("a2", "b2", "c1")),
                    ]
                )
        finally:
            stop.set()
            thread.join()
        # Each batch is net-zero, so every consistent snapshot shows the
        # original count; updates_applied only ever lands on multiples of
        # the batch size (a torn read would expose an odd count).
        base = count_query(fig1_query, fig1_db)
        for applied, count in snapshots:
            assert count == base
            assert applied % 2 == 0
