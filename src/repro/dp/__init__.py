"""Differential privacy layer: primitives, truncation, TSensDP, PrivSQL."""

from repro.dp.accountant import BudgetAccountant
from repro.dp.flexdp import FlexDPOutcome, run_flex_dp, smooth_elastic_sensitivity
from repro.dp.marking import declassified
from repro.dp.primitives import (
    above_threshold,
    laplace_confidence_radius,
    laplace_mechanism,
    laplace_noise,
)
from repro.dp.privsql import PrivSQLOutcome, affected_relations, run_privsql
from repro.dp.truncation import TruncationOracle, tsens_truncate, tuple_sensitivities
from repro.dp.tsensdp import TSensDPOutcome, run_tsens_dp

__all__ = [
    "BudgetAccountant",
    "FlexDPOutcome",
    "PrivSQLOutcome",
    "TSensDPOutcome",
    "TruncationOracle",
    "above_threshold",
    "affected_relations",
    "laplace_confidence_radius",
    "laplace_mechanism",
    "laplace_noise",
    "declassified",
    "run_flex_dp",
    "run_privsql",
    "smooth_elastic_sensitivity",
    "run_tsens_dp",
    "tsens_truncate",
    "tuple_sensitivities",
]
