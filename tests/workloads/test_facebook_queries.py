"""Unit tests for the Facebook workload definitions (Fig. 5b)."""

import pytest

from repro.query import classify, is_acyclic, is_path_query
from repro.workloads import (
    cycle_workload,
    facebook_workloads,
    path_workload,
    star_workload,
    triangle_workload,
)


class TestTriangle:
    def test_cyclic_with_fig5_hypertree(self):
        workload = triangle_workload()
        assert classify(workload.query) == "cyclic"
        tree = workload.tree
        assert set(tree.node("g12").relations) == {"R1", "R2"}
        assert tree.node("g3").relations == ("R3",)
        assert tree.covers_query(workload.query)

    def test_runs_on_data(self, tiny_facebook):
        workload = triangle_workload()
        workload.query.validate_against(workload.prepared(tiny_facebook))


class TestPath:
    def test_is_path(self):
        assert is_path_query(path_workload().query)

    def test_ell_matches_paper(self):
        assert path_workload().ell == 25_000


class TestCycle:
    def test_cyclic_with_two_merged_nodes(self):
        workload = cycle_workload()
        assert classify(workload.query) == "cyclic"
        assert set(workload.tree.node("g12").relations) == {"R1", "R2"}
        assert set(workload.tree.node("g34").relations) == {"R3", "R4"}
        assert workload.tree.covers_query(workload.query)


class TestStar:
    def test_acyclic_reconstruction(self):
        # The q★ reconstruction must be acyclic — the paper lists only q4
        # and q◦ as non-acyclic Facebook queries (see DESIGN.md).
        query = star_workload().query
        assert is_acyclic(query)
        assert set(query.relation_names) == {"R1", "R2", "TRI"}

    def test_runs_on_data(self, tiny_facebook):
        workload = star_workload()
        workload.query.validate_against(workload.prepared(tiny_facebook))


class TestCollection:
    def test_order_and_names(self):
        names = [w.name for w in facebook_workloads()]
        assert names == ["q4", "qw", "q_cycle", "q_star"]

    def test_primary_is_r2_everywhere(self):
        assert all(w.primary == "R2" for w in facebook_workloads())

    def test_prepare_is_identity(self, tiny_facebook):
        for workload in facebook_workloads():
            assert workload.prepared(tiny_facebook) is tiny_facebook
