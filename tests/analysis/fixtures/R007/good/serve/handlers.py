"""Known-good: serve/ handlers reading through epoch leases."""


def handle_count(manager, lease):
    return manager.count(lease)


def handle_probe(manager, lease, relation, rows):
    return manager.probe(lease, relation, rows)


def handle_stats(manager, lease):
    return manager.session_stats(lease)


def handle_apply(manager, batch):
    return manager.submit(batch)
