"""Unit tests for :mod:`repro.query.conjunctive`."""

import pytest

from repro.engine import Database, Relation
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.exceptions import SchemaError, SelfJoinError, UnknownRelationError


@pytest.fixture
def chain():
    return ConjunctiveQuery(
        [Atom("R", ("A", "B")), Atom("S", ("B", "C")), Atom("T", ("C", "D"))],
        name="chain",
    )


class TestStructure:
    def test_relation_names_in_body_order(self, chain):
        assert chain.relation_names == ("R", "S", "T")

    def test_variables_first_appearance_order(self, chain):
        assert chain.variables == ("A", "B", "C", "D")

    def test_self_join_rejected(self):
        with pytest.raises(SelfJoinError):
            ConjunctiveQuery([Atom("R", ("A",)), Atom("R", ("B",))])

    def test_empty_body_rejected(self):
        with pytest.raises(SchemaError):
            ConjunctiveQuery([])

    def test_atom_lookup(self, chain):
        assert chain.atom("S").variables == ("B", "C")
        with pytest.raises(UnknownRelationError):
            chain.atom("Z")

    def test_occurrences(self, chain):
        assert chain.occurrences("B") == ("R", "S")
        assert chain.occurrences("A") == ("R",)

    def test_join_variables(self, chain):
        assert chain.join_variables() == ("B", "C")

    def test_exclusive_variables(self, chain):
        assert chain.exclusive_variables("R") == ("A",)
        assert chain.exclusive_variables("S") == ()

    def test_str_round_trips_shape(self, chain):
        assert str(chain) == "chain(A, B, C, D) :- R(A, B), S(B, C), T(C, D)"


class TestConnectivity:
    def test_connected(self, chain):
        assert chain.is_connected()

    def test_disconnected_components(self):
        query = ConjunctiveQuery(
            [Atom("R", ("A", "B")), Atom("S", ("C",)), Atom("T", ("B", "D"))]
        )
        components = query.connected_components()
        assert len(components) == 2
        names = [tuple(a.relation for a in comp) for comp in components]
        assert names == [("R", "T"), ("S",)]

    def test_subquery_keeps_selections(self, chain):
        filtered = chain.with_selection("R", lambda row: row["A"] == 1)
        sub = filtered.subquery([filtered.atom("R"), filtered.atom("S")])
        assert "R" in sub.selections
        assert "T" not in sub.relation_names


class TestDataBinding:
    @pytest.fixture
    def db(self):
        return Database(
            {
                "R": Relation(["x", "y"], [(1, 2), (3, 2)]),
                "S": Relation(["u", "v"], [(2, 7)]),
                "T": Relation(["p", "q"], [(7, 8)]),
            }
        )

    def test_bound_relation_renames_positionally(self, chain, db):
        bound = chain.bound_relation(db, "R")
        assert bound.attributes == ("A", "B")
        assert bound.multiplicity((1, 2)) == 1

    def test_bound_relation_applies_selection(self, chain, db):
        filtered = chain.with_selection("R", lambda row: row["A"] == 1)
        bound = filtered.bound_relation(db, "R")
        assert dict(bound.items()) == {(1, 2): 1}

    def test_bound_relation_arity_mismatch(self, chain):
        db = Database({"R": Relation(["x"], [(1,)])})
        with pytest.raises(SchemaError):
            chain.bound_relation(db, "R")

    def test_validate_against(self, chain, db):
        chain.validate_against(db)  # no raise

    def test_validate_missing_relation(self, chain):
        db = Database({"R": Relation(["x", "y"], ())})
        with pytest.raises(UnknownRelationError):
            chain.validate_against(db)

    def test_with_selection_unknown_relation(self, chain):
        with pytest.raises(UnknownRelationError):
            chain.with_selection("Z", lambda row: True)

    def test_with_selection_is_copy(self, chain):
        filtered = chain.with_selection("R", lambda row: False)
        assert "R" not in chain.selections
        assert "R" in filtered.selections
