"""Benchmark — coalesced admission vs request-at-a-time serving.

The serving subsystem's throughput claim: concurrent probe requests
pinned to the same epoch are merged by the :class:`AdmissionQueue` into
one probe-id-tagged vectorized pass, so N in-flight requests cost a few
engine passes instead of N.  The baseline is the same
:class:`EpochManager` read path executing the identical requests one at
a time — exactly what a non-coalescing server loop would do — so the
measured gap isolates the admission layer, not the epoch machinery.

The workload is the broom-shaped acyclic query shared with the batch
bench: many small probes (16 rows each) against the hub relation, the
regime a deployment-style "what would this insert cost?" endpoint sees.
Every run asserts the coalesced futures resolve to exactly the serial
answers and that coalescing genuinely happened (fewer passes than
requests); the ≥3× throughput bar applies on the columnar backend,
where a pass is a constant number of kernels regardless of row count.

The module doubles as a standalone script recording the serving
trajectory for :mod:`benchmarks.trend`::

    PYTHONPATH=src python benchmarks/bench_serving.py --backend columnar

writes ``benchmarks/BENCH_<backend>_serve.json`` (payload ``backend``
key ``"<backend>_serve"``), rendered by ``trend.py`` as an extra column
next to the serial backends.
"""

import time

import numpy as np

from repro.engine import Database, Relation
from repro.query import parse_query
from repro.query.jointree import join_tree_from_parents
from repro.serve import AdmissionQueue, EpochManager
from repro.session import prepare

#: Concurrent probe requests per measured round, and rows per request.
N_REQUESTS = 32
ROWS_PER_PROBE = 16
ROWS = {"python": 2000, "columnar": 20000}
DOMAIN = 400
SEED = 11

QUERY = parse_query(
    "Q(A,B,C,D,E,F,G) :- Hub(A,B), S1(A,C), S2(A,D), S3(A,E), T1(B,F), T2(F,G)"
)
TREE = join_tree_from_parents(
    QUERY,
    "Hub",
    {"S1": "Hub", "S2": "Hub", "S3": "Hub", "T1": "Hub", "T2": "T1"},
)


def _broom_database(backend: str, rng: np.random.Generator) -> Database:
    n_rows = ROWS[backend]

    def table(attrs):
        rows = rng.integers(0, DOMAIN, size=(n_rows, len(attrs)))
        return Relation(attrs, [tuple(int(v) for v in row) for row in rows])

    return Database(
        {
            "Hub": table(["A", "B"]),
            "S1": table(["A", "C"]),
            "S2": table(["A", "D"]),
            "S3": table(["A", "E"]),
            "T1": table(["B", "F"]),
            "T2": table(["F", "G"]),
        },
        backend=backend,
    )


def _probe_requests(rng: np.random.Generator):
    """N_REQUESTS probe payloads of ROWS_PER_PROBE hypothetical Hub rows."""
    return [
        [
            (int(a), int(b))
            for a, b in rng.integers(0, DOMAIN, size=(ROWS_PER_PROBE, 2))
        ]
        for _ in range(N_REQUESTS)
    ]


def _serial_pass(manager, lease, requests):
    """Request-at-a-time baseline: one manager read per probe request."""
    return [manager.probe(lease, "Hub", rows) for rows in requests]


def _coalesced_pass(admission, lease, requests):
    """All requests in flight at once; the dispatcher merges them."""
    futures = [
        admission.submit_probe(lease, "Hub", rows) for rows in requests
    ]
    return [future.result() for future in futures]


def test_coalesced_vs_serial_probe_throughput(benchmark, backend):
    rng = np.random.default_rng(SEED)
    db = _broom_database(backend, rng)
    requests = _probe_requests(rng)

    with prepare(QUERY, db, tree=TREE) as session:
        session.count()  # maintained state built before timing
        with EpochManager(session) as manager:
            admission = AdmissionQueue(manager)
            lease = manager.acquire()
            try:
                serial = _serial_pass(manager, lease, requests)
                coalesced = benchmark.pedantic(
                    _coalesced_pass,
                    args=(admission, lease, requests),
                    rounds=3,
                    iterations=1,
                )
                coalesced_seconds = benchmark.stats.stats.min

                start = time.perf_counter()
                _serial_pass(manager, lease, requests)
                serial_seconds = time.perf_counter() - start

                stats = admission.stats()
            finally:
                lease.release()
                admission.close()

    # Exact agreement request-by-request, and genuine coalescing.
    assert coalesced == serial
    assert stats["probe_passes"] < stats["probe_requests"]

    speedup = serial_seconds / max(coalesced_seconds, 1e-9)
    benchmark.extra_info["requests"] = N_REQUESTS
    benchmark.extra_info["rows_per_probe"] = ROWS_PER_PROBE
    benchmark.extra_info["probe_passes"] = stats["probe_passes"]
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["coalesced_seconds"] = coalesced_seconds
    benchmark.extra_info["coalesced_vs_serial_speedup"] = speedup

    # Acceptance bar: on columnar a pass costs a constant number of
    # kernels, so merging 32 requests must win by at least 3x.  The
    # python backend pays per-row either way; only direction is claimed.
    if backend == "columnar":
        assert speedup >= 3.0
    else:
        assert speedup > 0.5  # coalescing must never be a regression cliff


# --------------------------------------------------------------- script mode
def _best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_comparison(backend, seed, rounds):
    """Serial vs coalesced wall times, with agreement checks."""
    rng = np.random.default_rng(seed)
    db = _broom_database(backend, rng)
    requests = _probe_requests(rng)

    with prepare(QUERY, db, tree=TREE) as session:
        session.count()
        with EpochManager(session) as manager:
            admission = AdmissionQueue(manager)
            lease = manager.acquire()
            try:
                serial = _serial_pass(manager, lease, requests)
                coalesced = _coalesced_pass(admission, lease, requests)
                assert coalesced == serial, "coalesced answers diverged"
                results = {
                    "serial_seconds": _best_of(
                        lambda: _serial_pass(manager, lease, requests), rounds
                    ),
                    "coalesced_seconds": _best_of(
                        lambda: _coalesced_pass(admission, lease, requests),
                        rounds,
                    ),
                }
                stats = admission.stats()
            finally:
                lease.release()
                admission.close()

    results["speedup"] = (
        results["serial_seconds"] / max(results["coalesced_seconds"], 1e-9)
    )
    results["probe_passes"] = stats["probe_passes"]
    results["probe_requests"] = stats["probe_requests"]
    return results


def write_bench_report(path, backend, seed, results):
    """Merge serving timings into BENCH_<backend>_serve.json for trend.py."""
    import json

    timings = {}
    if path.exists():
        try:
            timings = json.loads(path.read_text()).get("timings_seconds", {})
        except (ValueError, OSError):
            timings = {}
    timings["bench_serving.py::probe::coalesced"] = round(
        results["coalesced_seconds"], 6
    )
    timings["bench_serving.py::probe::serial"] = round(
        results["serial_seconds"], 6
    )
    payload = {
        "backend": f"{backend}_serve",
        "requests": N_REQUESTS,
        "rows_per_probe": ROWS_PER_PROBE,
        "seed": seed,
        "timings_seconds": dict(sorted(timings.items())),
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


if __name__ == "__main__":
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="Coalesced admission vs serial serving throughput."
    )
    parser.add_argument(
        "--backend", default="columnar", choices=("python", "columnar")
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--no-report", action="store_true",
        help="skip writing benchmarks/BENCH_<backend>_serve.json",
    )
    args = parser.parse_args()

    print(
        f"serving bench  backend={args.backend}  requests={N_REQUESTS}"
        f"  rows/probe={ROWS_PER_PROBE}  seed={args.seed}"
    )
    results = run_comparison(args.backend, args.seed, args.rounds)
    print(
        f"  probe: serial={results['serial_seconds']*1e3:8.2f}ms"
        f"  coalesced={results['coalesced_seconds']*1e3:8.2f}ms"
        f"  speedup={results['speedup']:.2f}x"
        f"  passes={results['probe_passes']}/{results['probe_requests']}"
    )
    print("  exact agreement: every future matches its serial answer")

    if not args.no_report:
        out = Path(__file__).resolve().parent / (
            f"BENCH_{args.backend}_serve.json"
        )
        write_bench_report(out, args.backend, args.seed, results)
        print(f"wrote {out}")
