"""The paper's core contribution: local-sensitivity algorithms."""

from repro.core.acyclic import (
    compute_topjoins,
    extrapolate_assignment,
    multiplicity_table,
    tsens_connected,
)
from repro.core.api import local_sensitivity, most_sensitive_tuples
from repro.core.explain import Explanation, explain
from repro.core.verify import VerificationReport, verify_result
from repro.core.general import tsens
from repro.core.naive import (
    DomainTooLargeError,
    naive_local_sensitivity,
    naive_tuple_sensitivity,
)
from repro.core.path import ls_path_join
from repro.core.result import MultiplicityTable, SensitiveTuple, SensitivityResult
from repro.core.topk import clamp_to_top_k, tsens_topk

__all__ = [
    "DomainTooLargeError",
    "Explanation",
    "VerificationReport",
    "verify_result",
    "explain",
    "MultiplicityTable",
    "SensitiveTuple",
    "SensitivityResult",
    "clamp_to_top_k",
    "compute_topjoins",
    "extrapolate_assignment",
    "local_sensitivity",
    "ls_path_join",
    "most_sensitive_tuples",
    "multiplicity_table",
    "naive_local_sensitivity",
    "naive_tuple_sensitivity",
    "tsens",
    "tsens_connected",
    "tsens_topk",
]
