"""Core of the ``repro lint`` static-analysis framework.

The framework is deliberately small: a :class:`Rule` visits the ``ast`` of
one file (wrapped in a :class:`FileContext`) and yields :class:`Finding`
objects; the :class:`LintRunner` walks a file tree, parses each Python
file once, runs every applicable rule, and filters the raw findings
through two silencing layers:

* **inline suppressions** — a ``# repro-lint: disable=R001`` comment on
  (or immediately above) the offending line, or a file-wide
  ``# repro-lint: disable-file=R001`` (see :mod:`repro.analysis.suppressions`);
* **a baseline file** — known pre-existing findings recorded by
  ``repro lint --update-baseline`` (see :mod:`repro.analysis.baseline`);
  only findings *not* in the baseline fail the run.

Rules are registered in :mod:`repro.analysis.rules`; the CLI surface is
the ``repro lint`` subcommand in :mod:`repro.cli`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.suppressions import Suppressions
from repro.exceptions import ReproError

#: Directory names the runner never descends into.
SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", "fixtures"})


class LintConfigError(ReproError):
    """``repro lint`` was invoked with an invalid configuration."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    #: stripped text of the offending line — the baseline key, so baseline
    #: entries survive pure line-number drift and age out when the line
    #: itself disappears.
    line_text: str = field(compare=False, default="")

    def key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching (line numbers excluded)."""
        return (self.rule, self.path, self.line_text)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "line_text": self.line_text,
        }


class FileContext:
    """Everything a rule may need about one parsed file."""

    def __init__(self, path: Path, source: str, tree: ast.Module, display_path: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            path=self.display_path,
            line=lineno,
            column=column,
            rule=rule.rule_id,
            message=message,
            line_text=self.line_text(lineno),
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id`, :attr:`title` and :attr:`rationale`
    (surfaced by ``repro lint --list-rules`` and the docs), narrow
    :meth:`applies_to` when the contract is path-specific, and implement
    :meth:`check`.
    """

    rule_id: str = "R000"
    title: str = ""
    rationale: str = ""

    def applies_to(self, path: PurePath) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.rule_id})"


# ------------------------------------------------------------ ast helpers
def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a name/attribute/call chain.

    ``oracle.truncated_count`` → ``"truncated_count"``; ``count(...)`` →
    ``"count"``; anything else → ``None``.
    """
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def attribute_chain_root(node: ast.AST) -> Tuple[Optional[str], Optional[str]]:
    """Resolve an assignment target to ``(root name, first attribute)``.

    ``self.botjoins[x]`` → ``("self", "botjoins")``;
    ``self.bound.atom_relations[r]`` → ``("self", "bound")``;
    ``local[x]`` → ``("local", None)``.
    """
    attrs: List[str] = []
    current = node
    while True:
        if isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Attribute):
            attrs.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Name):
            return current.id, (attrs[-1] if attrs else None)
        else:
            return None, None


def walk_skipping_nested_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Yield ``node`` and descendants, but do not enter nested function
    definitions or lambdas — rule scopes are per-function."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield from walk_skipping_nested_functions(child)


def function_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """All statements of a function body, skipping nested functions."""
    for node in walk_skipping_nested_functions(func):
        if isinstance(node, ast.stmt) and node is not func:
            yield node


def decorator_names(node: ast.AST) -> List[str]:
    """Terminal names of a def/class decorator list (empty when absent)."""
    names: List[str] = []
    for decorator in getattr(node, "decorator_list", []):
        name = terminal_name(decorator)
        if name is not None:
            names.append(name)
    return names


def top_level_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
    """Module-level functions and methods of module-level classes.

    Nested defs are deliberately excluded: the privacy boundary rules
    reason about a module's public surface, and closures are internal.
    Yields ``(function, enclosing class or None)``.
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, node


# ----------------------------------------------------------------- runner
@dataclass
class LintResult:
    """Outcome of one :meth:`LintRunner.run`."""

    findings: List[Finding]
    suppressed: int
    baselined: int
    stale_baseline: int
    checked_files: int

    @property
    def clean(self) -> bool:
        return not self.findings


class LintRunner:
    """Drive a set of rules over a file tree."""

    def __init__(self, rules: Sequence[Rule]):
        seen = set()
        for rule in rules:
            if rule.rule_id in seen:
                raise LintConfigError(f"duplicate rule id {rule.rule_id}")
            seen.add(rule.rule_id)
        self.rules = list(rules)

    # -------------------------------------------------------- file walking
    @staticmethod
    def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
        for path in paths:
            if path.is_file():
                if path.suffix == ".py":
                    yield path
                continue
            if not path.exists():
                raise LintConfigError(f"no such file or directory: {path}")
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & SKIPPED_DIRS:
                    continue
                yield candidate

    # ------------------------------------------------------------ checking
    def check_file(self, path: Path) -> List[Finding]:
        """Raw findings for one file, inline suppressions applied."""
        source = path.read_text(encoding="utf-8")
        display = self._display_path(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            return [
                Finding(
                    path=display,
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                    rule="E000",
                    message=f"syntax error: {error.msg}",
                    line_text="",
                )
            ]
        ctx = FileContext(path, source, tree, display)
        suppressions = Suppressions.parse(source)
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(path):
                continue
            for finding in rule.check(ctx):
                if not suppressions.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
        return findings

    def run(self, paths: Iterable[Path], baseline=None) -> LintResult:
        """Lint ``paths``; apply ``baseline`` (a :class:`~repro.analysis.baseline.Baseline`)."""
        all_findings: List[Finding] = []
        suppressed = 0
        checked = 0
        for path in self.iter_python_files(paths):
            checked += 1
            raw_count = len(list(self._raw_findings(path)))
            kept = self.check_file(path)
            suppressed += raw_count - len(kept)
            all_findings.extend(kept)
        all_findings.sort()
        if baseline is None:
            return LintResult(all_findings, suppressed, 0, 0, checked)
        new, matched, stale = baseline.split(all_findings)
        return LintResult(new, suppressed, matched, stale, checked)

    def _raw_findings(self, path: Path) -> List[Finding]:
        """Findings before suppression filtering (for the suppressed count)."""
        source = path.read_text(encoding="utf-8")
        display = self._display_path(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return []
        ctx = FileContext(path, source, tree, display)
        findings: List[Finding] = []
        for rule in self.rules:
            if rule.applies_to(path):
                findings.extend(rule.check(ctx))
        return findings

    @staticmethod
    def _display_path(path: Path) -> str:
        try:
            return path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            return path.as_posix()
