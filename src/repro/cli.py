"""Command-line interface: ``python -m repro <command>``.

Four commands cover the library's day-to-day uses:

``sensitivity``
    Local sensitivity of a query over data on disk (CSV directory or JSON
    database), with the most sensitive tuple per relation.
``count``
    The bag count ``|Q(D)|``.
``experiment``
    Re-run one of the paper's experiments (fig6a, fig6b, fig7, table1,
    table2, params) and print its table.
``generate``
    Materialise a synthetic dataset (tpch or facebook) to a JSON database
    file for use with the other commands.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.engine.backend import BACKEND_NAMES, DEFAULT_BACKEND
from repro.engine.io import load_database, load_database_csv_dir, save_database
from repro.evaluation import count_query
from repro.query import parse_query
from repro.core import local_sensitivity
from repro.exceptions import ReproError


def _load_data(path_text: str, int_columns: bool, backend: str = DEFAULT_BACKEND):
    path = Path(path_text)
    if path.is_dir():
        converters = None
        if int_columns:
            # Apply int() to every column of every relation lazily: build
            # a mapping-of-mappings that defaults to int.
            class _AllInt(dict):
                def get(self, key, default=None):
                    return _IntColumns()

            class _IntColumns(dict):
                def get(self, key, default=None):
                    return int

            converters = _AllInt()
        return load_database_csv_dir(path, converters=converters, backend=backend)
    return load_database(path, backend=backend)


def _apply_where(query, clauses):
    """Attach ``--where "REL: <predicate>"`` clauses to the query."""
    from repro.query import parse_predicate

    for clause in clauses or ():
        if ":" not in clause:
            raise ReproError(
                f"--where needs the form 'RELATION: predicate', got {clause!r}"
            )
        relation, text = clause.split(":", 1)
        query = query.with_selection(relation.strip(), parse_predicate(text))
    return query


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    db = _load_data(args.data, args.int_columns, args.backend)
    query = _apply_where(parse_query(args.query), args.where)
    result = local_sensitivity(
        query,
        db,
        method=args.method,
        top_k=args.top_k,
        skip_relations=tuple(args.skip or ()),
        reeval_mode=args.reeval_mode,
    )
    print(f"query            : {query}")
    print(f"method           : {result.method}")
    print(f"local sensitivity: {result.local_sensitivity}")
    if result.witness is not None:
        print(
            f"witness          : {result.witness.relation} "
            f"{dict(result.witness.assignment)}"
        )
    print("per relation:")
    for relation, witness in result.per_relation.items():
        detail = dict(witness.assignment) if witness.assignment else "-"
        print(f"  {relation}: δ={witness.sensitivity}  {detail}")
    return 0


def _cmd_count(args: argparse.Namespace) -> int:
    db = _load_data(args.data, args.int_columns, args.backend)
    query = _apply_where(parse_query(args.query), args.where)
    print(count_query(query, db))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.core import explain

    db = _load_data(args.data, args.int_columns, args.backend)
    query = _apply_where(parse_query(args.query), args.where)
    print(explain(query, db, skip_relations=tuple(args.skip or ())))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import fig6a, fig6b, fig7, param_analysis, table1, table2

    name = args.name
    if name == "fig6a":
        scales = tuple(args.scales) if args.scales else fig6a.DEFAULT_SCALES
        print(fig6a.report(fig6a.run(scales=scales, seed=args.seed)))
    elif name == "fig6b":
        scale = args.scales[0] if args.scales else fig6b.DEFAULT_SCALE
        print(fig6b.report(fig6b.run(scale=scale, seed=args.seed)))
    elif name == "fig7":
        scales = tuple(args.scales) if args.scales else fig6a.DEFAULT_SCALES
        print(fig7.report(fig7.run(scales=scales, seed=args.seed)))
    elif name == "table1":
        print(table1.report(table1.run(seed=args.seed)))
    elif name == "table2":
        scale = args.scales[0] if args.scales else table2.DEFAULT_TPCH_SCALE
        print(
            table2.report(
                table2.run(tpch_scale=scale, n_runs=args.runs, seed=args.seed)
            )
        )
    elif name == "params":
        print(
            param_analysis.report(
                param_analysis.run(n_runs=args.runs, seed=args.seed)
            )
        )
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown experiment {name}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "tpch":
        from repro.datasets import generate_tpch

        db = generate_tpch(args.scale, seed=args.seed)
    else:
        from repro.datasets import generate_ego_network

        db = generate_ego_network(seed=args.seed)
    save_database(db, args.output)
    sizes = {name: db.relation(name).total_count() for name in db.relation_names}
    print(f"wrote {args.output}: {sizes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Local sensitivities of counting queries with joins (TSens).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sens = subparsers.add_parser(
        "sensitivity", help="compute LS(Q, D) and the most sensitive tuple"
    )
    sens.add_argument("--query", required=True, help='e.g. "R(A,B), S(B,C)"')
    sens.add_argument(
        "--data", required=True, help="CSV directory or JSON database file"
    )
    sens.add_argument(
        "--method",
        default="auto",
        choices=["auto", "path", "tsens", "naive", "reeval"],
    )
    sens.add_argument(
        "--reeval-mode",
        default="incremental",
        choices=["incremental", "full"],
        dest="reeval_mode",
        help="probe engine for --method reeval: cached-delta propagation "
             "(incremental) or one full re-evaluation per candidate (full)",
    )
    sens.add_argument("--top-k", type=int, default=None, dest="top_k")
    sens.add_argument(
        "--skip", nargs="*", help="relations with certified δ ≤ 1 to skip"
    )
    sens.add_argument(
        "--int-columns", action="store_true",
        help="parse every CSV column as int",
    )
    sens.add_argument(
        "--backend", default=DEFAULT_BACKEND, choices=BACKEND_NAMES,
        help="execution backend for the engine (default: %(default)s)",
    )
    sens.add_argument(
        "--where", action="append",
        help="selection clause 'RELATION: predicate', repeatable "
             "(e.g. --where \"R: A = 1 and B in {2, 3}\")",
    )
    sens.set_defaults(handler=_cmd_sensitivity)

    count = subparsers.add_parser("count", help="compute |Q(D)|")
    count.add_argument("--query", required=True)
    count.add_argument("--data", required=True)
    count.add_argument("--int-columns", action="store_true")
    count.add_argument(
        "--backend", default=DEFAULT_BACKEND, choices=BACKEND_NAMES,
        help="execution backend for the engine (default: %(default)s)",
    )
    count.add_argument("--where", action="append")
    count.set_defaults(handler=_cmd_count)

    explain_cmd = subparsers.add_parser(
        "explain", help="profile a TSens run (intermediate sizes, factors)"
    )
    explain_cmd.add_argument("--query", required=True)
    explain_cmd.add_argument("--data", required=True)
    explain_cmd.add_argument("--int-columns", action="store_true")
    explain_cmd.add_argument(
        "--backend", default=DEFAULT_BACKEND, choices=BACKEND_NAMES,
        help="execution backend for the engine (default: %(default)s)",
    )
    explain_cmd.add_argument("--where", action="append")
    explain_cmd.add_argument("--skip", nargs="*")
    explain_cmd.set_defaults(handler=_cmd_explain)

    experiment = subparsers.add_parser(
        "experiment", help="re-run a paper experiment"
    )
    experiment.add_argument(
        "name",
        choices=["fig6a", "fig6b", "fig7", "table1", "table2", "params"],
    )
    experiment.add_argument("--scales", nargs="*", type=float)
    experiment.add_argument("--runs", type=int, default=20)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.set_defaults(handler=_cmd_experiment)

    generate = subparsers.add_parser(
        "generate", help="write a synthetic dataset to JSON"
    )
    generate.add_argument("dataset", choices=["tpch", "facebook"])
    generate.add_argument("--scale", type=float, default=0.001)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)
    generate.set_defaults(handler=_cmd_generate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
