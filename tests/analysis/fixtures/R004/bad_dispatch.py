"""Known-bad for R004: backend branch with no fallback.

Fixture only — parsed by the analyzer, never imported or executed.
"""


def join(left, right):
    if isinstance(left, ColumnarRelation):
        return columnar_join(left, right)
    # function ends: dict-backend relations silently get None
