"""Benchmark — worker-resident fold pipelines vs per-op sharding.

The resident chain path compiles a component's whole botjoin/topjoin fold
chain into one per-shard program: intermediates stay in the workers' own
shared-memory arenas across steps and only final per-shard aggregates
return for the overflow-checked reduction.  The PR 7 per-op path
(``chains=False``) round-trips every operator's output through the
coordinator instead.  This module pins, per fig-7 TPC-H workload:

* **exactness** — resident, per-op and serial sessions agree on count,
  sensitivity and witness on every run;
* **the speedup claim** — on the fig-7 q3 botjoin chain (the deep fold
  the pipeline exists for), the resident chain is >= 2x the per-op path
  (columnar engine, machines with >= 4 cores).

The module doubles as a standalone script recording the resident-chain
trajectory for :mod:`benchmarks.trend`::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --backend columnar --workers 2

writes ``benchmarks/BENCH_<backend>_pipeline.json`` (payload ``backend``
key ``"<backend>_pipeline"``), which ``trend.py`` renders as an extra
column next to the serial backends.
"""

import os

import pytest

from repro.engine.parallel import ParallelContext
from repro.session import prepare
from repro.workloads import q1_workload, q2_workload, q3_workload

WORKLOADS = {
    "q1": q1_workload(),
    "q2": q2_workload(),
    "q3": q3_workload(),
}

#: Worker count for the pytest-mode timings (script mode takes ``--workers``).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _witness_key(result):
    witness = result.witness
    if witness is None:
        return None
    return (witness.relation, tuple(sorted(witness.assignment.items())),
            witness.sensitivity)


def _run_workload(workload, db, context=None):
    """Fresh session per call: count + TSens, the fig-7 hot path."""
    with prepare(workload.query, db, tree=workload.tree,
                 parallel=context) as session:
        count = session.count()
        result = session.sensitivity(skip_relations=workload.skip_relations)
    return count, result


def _assert_agreement(name, label, serial, candidate):
    s_count, s_result = serial
    c_count, c_result = candidate
    assert c_count == s_count, (
        f"{name}: {label} count {c_count} != serial {s_count}"
    )
    assert c_result.local_sensitivity == s_result.local_sensitivity, (
        f"{name}: {label} sensitivity {c_result.local_sensitivity} "
        f"!= serial {s_result.local_sensitivity}"
    )
    assert _witness_key(c_result) == _witness_key(s_result), (
        f"{name}: {label} witness {_witness_key(c_result)} "
        f"!= serial {_witness_key(s_result)}"
    )


# ------------------------------------------------------------- pytest mode
@pytest.fixture(scope="module")
def contexts():
    pools = {
        "resident": ParallelContext(BENCH_WORKERS, chains=True),
        "per-op": ParallelContext(BENCH_WORKERS, chains=False),
    }
    yield pools
    for context in pools.values():
        context.close()


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_pipeline_agreement(tpch_base, name, contexts):
    workload = WORKLOADS[name]
    db = workload.prepared(tpch_base)
    serial = _run_workload(workload, db)
    for label, context in contexts.items():
        _assert_agreement(
            name, label, serial, _run_workload(workload, db, context)
        )


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_pipeline_tsens_time(benchmark, tpch_base, name, contexts):
    workload = WORKLOADS[name]
    db = workload.prepared(tpch_base)
    benchmark.pedantic(
        lambda: _run_workload(workload, db, contexts["resident"]),
        rounds=3,
        iterations=1,
    )


#: Scale for the gated speedup measurement — the q3 botjoin chain must
#: take long enough per sweep that dispatch overheads are noise.
SPEEDUP_SCALE = float(os.environ.get("REPRO_SPEEDUP_SCALE", "0.2"))


def _botjoin_chain_speedup(backend, scale, seed, workers, rounds=3):
    """Resident vs per-op wall time of the fig-7 q3 botjoin chain.

    Both paths run the same bottom-up sweep over the same bound tree and
    worker count; the only difference is residency — the per-op path
    imports every botjoin back to the coordinator and re-exports it as
    the next operator's operand, the resident chain keeps all of them in
    the worker arenas and returns only the root aggregate.  Exact bag
    equality of the root botjoin (the |Q(D)| carrier) is asserted before
    timing.
    """
    from repro.datasets import generate_tpch
    from repro.engine import symmetric_difference_size
    from repro.engine.sharding import ShardMap
    from repro.evaluation import compute_botjoins, bind
    from repro.evaluation.yannakakis import ResidentFoldPipeline

    workload = WORKLOADS["q3"]
    base = generate_tpch(scale, seed=seed, backend=backend)
    db = workload.prepared(base)
    tree = workload.tree
    bound = bind(workload.query, tree, db)
    root = tree.root
    serial_root = compute_botjoins(bound)[root]

    with ParallelContext(workers, chains=False) as per_op_context, \
            ParallelContext(workers, chains=True) as chain_context:

        def per_op_run():
            cache = ShardMap()
            try:
                return compute_botjoins(
                    bound, parallel=per_op_context, shard_cache=cache
                )[root]
            finally:
                cache.close()

        def resident_run():
            pipeline = ResidentFoldPipeline.try_create(
                bound, chain_context, None
            )
            assert pipeline is not None, (
                "q3 botjoin chain did not compile for the resident path"
            )
            try:
                return pipeline.botjoins()[root]
            finally:
                pipeline.close()

        assert symmetric_difference_size(per_op_run(), serial_root) == 0, (
            "per-op sharded botjoins disagree with serial"
        )
        assert symmetric_difference_size(resident_run(), serial_root) == 0, (
            "resident chain botjoins disagree with serial"
        )
        per_op = _best_of(per_op_run, rounds)
        resident = _best_of(resident_run, rounds)
    return per_op, resident


@pytest.mark.skipif(
    _cores() < 4,
    reason="speedup assertion needs >= 4 cores for an honest measurement",
)
def test_resident_chain_speedup_fig7_q3(backend):
    """Resident chain >= 2x the per-op path on the q3 botjoin chain."""
    if backend != "columnar":
        pytest.skip(
            "resident-chain speedup is a columnar-engine claim; the "
            "python backend exists for semantics, not speed"
        )
    workers = min(_cores(), 4)
    per_op, resident = _botjoin_chain_speedup(
        backend, SPEEDUP_SCALE, 0, workers
    )
    speedup = per_op / max(resident, 1e-9)
    assert speedup >= 2.0, (
        f"fig-7 q3 botjoin chain: resident ({workers} workers) is only "
        f"{speedup:.2f}x the per-op path at scale {SPEEDUP_SCALE} "
        "(need >= 2x)"
    )


# --------------------------------------------------------------- script mode
def _best_of(fn, rounds):
    import time

    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_comparison(backend, workers, scale, seed, rounds):
    """Serial vs per-op vs resident wall times, with agreement checks."""
    from repro.datasets import generate_tpch

    base = generate_tpch(scale, seed=seed, backend=backend)
    results = {}
    with ParallelContext(workers, chains=True) as resident_context, \
            ParallelContext(workers, chains=False) as per_op_context:
        for name, workload in WORKLOADS.items():
            db = workload.prepared(base)
            serial_out = _run_workload(workload, db)
            for label, context in (
                ("resident", resident_context),
                ("per-op", per_op_context),
            ):
                _assert_agreement(
                    name, label, serial_out, _run_workload(workload, db, context)
                )
            results[name] = {
                "serial_seconds": _best_of(
                    lambda: _run_workload(workload, db), rounds
                ),
                "per_op_seconds": _best_of(
                    lambda: _run_workload(workload, db, per_op_context), rounds
                ),
                "resident_seconds": _best_of(
                    lambda: _run_workload(workload, db, resident_context),
                    rounds,
                ),
            }
            results[name]["speedup_vs_per_op"] = (
                results[name]["per_op_seconds"]
                / max(results[name]["resident_seconds"], 1e-9)
            )
    return results


def write_bench_report(path, backend, workers, scale, seed, results):
    """Merge resident timings into BENCH_<backend>_pipeline.json."""
    import json

    timings = {}
    if path.exists():
        try:
            timings = json.loads(path.read_text()).get("timings_seconds", {})
        except (ValueError, OSError):
            timings = {}
    for name, entry in results.items():
        timings[f"bench_pipeline.py::{name}::tsens"] = round(
            entry["resident_seconds"], 6
        )
    payload = {
        "backend": f"{backend}_pipeline",
        "workers": workers,
        "tpch_scale": scale,
        "seed": seed,
        "timings_seconds": dict(sorted(timings.items())),
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


if __name__ == "__main__":
    import argparse
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from conftest import SEED, TPCH_SCALE

    parser = argparse.ArgumentParser(
        description="Resident-chain vs per-op fig-7 runtimes with "
        "exactness checks."
    )
    parser.add_argument(
        "--backend", default="columnar", choices=("python", "columnar")
    )
    parser.add_argument("--workers", type=int, default=BENCH_WORKERS)
    parser.add_argument("--scale", type=float, default=TPCH_SCALE)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--speedup-scale", type=float, default=SPEEDUP_SCALE,
        help="scale for the q3 botjoin-chain speedup measurement",
    )
    parser.add_argument(
        "--no-report", action="store_true",
        help="skip writing benchmarks/BENCH_<backend>_pipeline.json",
    )
    args = parser.parse_args()

    cores = _cores()
    print(
        f"pipeline bench  backend={args.backend}  workers={args.workers}"
        f"  scale={args.scale}  seed={args.seed}  cores={cores}"
    )
    results = run_comparison(
        args.backend, args.workers, args.scale, args.seed, args.rounds
    )
    for name, entry in results.items():
        print(
            f"  {name}: serial={entry['serial_seconds']*1e3:8.2f}ms"
            f"  per-op={entry['per_op_seconds']*1e3:8.2f}ms"
            f"  resident={entry['resident_seconds']*1e3:8.2f}ms"
            f"  resident/per-op={entry['speedup_vs_per_op']:.2f}x"
        )
    print("  exact agreement: count, sensitivity, witness — all workloads")

    if not args.no_report:
        out = Path(__file__).resolve().parent / (
            f"BENCH_{args.backend}_pipeline.json"
        )
        write_bench_report(
            out, args.backend, args.workers, args.scale, args.seed, results
        )
        print(f"wrote {out}")

    if cores >= 4 and args.backend == "columnar":
        workers = min(cores, 4)
        per_op, resident = _botjoin_chain_speedup(
            args.backend, args.speedup_scale, args.seed, workers, args.rounds
        )
        speedup = per_op / max(resident, 1e-9)
        print(
            f"  q3 botjoin chain (scale {args.speedup_scale}, "
            f"{workers} workers): per-op={per_op*1e3:.0f}ms "
            f"resident={resident*1e3:.0f}ms speedup={speedup:.2f}x"
        )
        assert speedup >= 2.0, (
            f"fig-7 q3 botjoin chain: resident is only {speedup:.2f}x "
            "the per-op path (need >= 2x)"
        )
        print(f"  speedup assertion passed ({speedup:.2f}x >= 2x)")
    else:
        print(
            f"  speedup assertion skipped: needs >= 4 cores (have {cores}) "
            "and the columnar backend"
        )
