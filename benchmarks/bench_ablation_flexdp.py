"""Ablation — FlexDP (smooth elastic sensitivity) vs TSensDP noise scales.

The TSens paper's DP claim in one number: the noise scale FlexDP must use
(2·smooth-elastic/ε) dwarfs TSensDP's learned τ/ε′ whenever elastic is
loose.  This bench times both mechanisms on the triangle query and asserts
the scale gap.
"""

import numpy as np
import pytest

from repro.dp import run_flex_dp, run_tsens_dp
from repro.dp.truncation import TruncationOracle
from repro.experiments.table2 import loose_bound
from repro.workloads import triangle_workload

_state = {}


def _oracle(db):
    if "oracle" not in _state:
        workload = triangle_workload()
        _state["oracle"] = TruncationOracle(
            workload.query, db, workload.primary, tree=workload.tree
        )
    return _state["oracle"]


def test_flexdp_triangle(benchmark, facebook_base):
    workload = triangle_workload()
    db = workload.prepared(facebook_base)
    rng = np.random.default_rng(0)
    outcome = benchmark.pedantic(
        lambda: run_flex_dp(
            workload.query, db, primary=workload.primary,
            epsilon=1.0, tree=workload.tree, rng=rng,
        ),
        rounds=2,
        iterations=1,
    )
    _state["flex_scale"] = 2 * outcome.smooth_sensitivity
    benchmark.extra_info["noise_scale"] = _state["flex_scale"]


def test_tsensdp_triangle(benchmark, facebook_base):
    workload = triangle_workload()
    db = workload.prepared(facebook_base)
    oracle = _oracle(db)
    ell = loose_bound(oracle.max_primary_sensitivity, floor=workload.ell)
    rng = np.random.default_rng(0)
    outcome = benchmark.pedantic(
        lambda: run_tsens_dp(
            workload.query, db, primary=workload.primary,
            epsilon=1.0, ell=ell, tree=workload.tree, oracle=oracle, rng=rng,
        ),
        rounds=3,
        iterations=1,
    )
    tsens_scale = outcome.tau / (1.0 - outcome.epsilon_threshold)
    benchmark.extra_info["noise_scale"] = tsens_scale
    if "flex_scale" in _state:
        assert tsens_scale < _state["flex_scale"]
