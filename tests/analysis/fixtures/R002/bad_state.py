"""Known-bad for R002: committed state assigned outside a commit method.

Fixture only — parsed by the analyzer, never imported or executed.
"""


class JoinState:
    def apply_update(self, relation, row, insert):
        delta = self._stage(relation, row, insert)
        self.botjoins[relation] = delta  # committed write mid-update
        self._tables = {}  # and another one


class IncrementalEvaluator:
    def apply_insert(self, relation, row):
        self._db = self._db.with_relation(relation, row)  # no commit method
        return self._base_count
