"""Unit tests for :mod:`repro.query.jointree` — tree validation/traversal."""

import pytest

from repro.query import parse_query
from repro.query.jointree import DecompositionTree, TreeNode, join_tree_from_parents
from repro.exceptions import DecompositionError


def node(nid, rels, attrs):
    return TreeNode(nid, tuple(rels), frozenset(attrs))


@pytest.fixture
def chain_tree():
    nodes = [
        node("a", ["Ra"], {"A", "B"}),
        node("b", ["Rb"], {"B", "C"}),
        node("c", ["Rc"], {"C", "D"}),
    ]
    return DecompositionTree(nodes, root="a", parent={"b": "a", "c": "b"})


class TestValidation:
    def test_duplicate_node_id(self):
        with pytest.raises(DecompositionError):
            DecompositionTree(
                [node("a", ["R"], {"A"}), node("a", ["S"], {"A"})],
                root="a",
                parent={},
            )

    def test_unknown_root(self):
        with pytest.raises(DecompositionError):
            DecompositionTree([node("a", ["R"], {"A"})], root="z", parent={})

    def test_root_with_parent(self):
        with pytest.raises(DecompositionError):
            DecompositionTree(
                [node("a", ["R"], {"A"}), node("b", ["S"], {"A"})],
                root="a",
                parent={"a": "b", "b": "a"},
            )

    def test_orphan_node(self):
        with pytest.raises(DecompositionError):
            DecompositionTree(
                [node("a", ["R"], {"A"}), node("b", ["S"], {"A"})],
                root="a",
                parent={},
            )

    def test_relation_in_two_nodes(self):
        with pytest.raises(DecompositionError):
            DecompositionTree(
                [node("a", ["R"], {"A"}), node("b", ["R"], {"A"})],
                root="a",
                parent={"b": "a"},
            )

    def test_running_intersection_violation(self):
        # A appears at both ends of a chain but not in the middle.
        nodes = [
            node("a", ["Ra"], {"A", "B"}),
            node("b", ["Rb"], {"B", "C"}),
            node("c", ["Rc"], {"C", "A"}),
        ]
        with pytest.raises(DecompositionError):
            DecompositionTree(nodes, root="a", parent={"b": "a", "c": "b"})


class TestTraversal:
    def test_post_order_children_first(self, chain_tree):
        order = chain_tree.post_order()
        assert order.index("c") < order.index("b") < order.index("a")

    def test_pre_order_parents_first(self, chain_tree):
        order = chain_tree.pre_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_parent_children_neighbours(self, chain_tree):
        assert chain_tree.parent("b") == "a"
        assert chain_tree.parent("a") is None
        assert chain_tree.children("a") == ("b",)
        assert chain_tree.neighbours("b") == ()
        assert chain_tree.is_leaf("c")

    def test_shared_with_parent(self, chain_tree):
        assert chain_tree.shared_with_parent("b") == frozenset({"B"})
        assert chain_tree.shared_with_parent("a") == frozenset()

    def test_node_of_relation(self, chain_tree):
        assert chain_tree.node_of_relation("Rb") == "b"
        with pytest.raises(DecompositionError):
            chain_tree.node_of_relation("Rz")


class TestStatistics:
    def test_max_degree_counts_parent_edge(self, chain_tree):
        assert chain_tree.max_degree() == 2  # middle node: child + parent

    def test_width(self, chain_tree):
        assert chain_tree.width() == 1

    def test_star_degree(self):
        nodes = [node("hub", ["H"], {"A"})] + [
            node(f"s{i}", [f"S{i}"], {"A"}) for i in range(3)
        ]
        tree = DecompositionTree(
            nodes, root="hub", parent={f"s{i}": "hub" for i in range(3)}
        )
        assert tree.max_degree() == 3


class TestRerooting:
    def test_reroot_preserves_nodes(self, chain_tree):
        rerooted = chain_tree.rerooted("c")
        assert rerooted.root == "c"
        assert set(rerooted.node_ids) == set(chain_tree.node_ids)
        assert rerooted.parent("a") == "b"

    def test_reroot_same_root_is_identity(self, chain_tree):
        assert chain_tree.rerooted("a") is chain_tree


class TestCoversQuery:
    def test_covers(self):
        q = parse_query("Ra(A,B), Rb(B,C)")
        tree = join_tree_from_parents(q, root="Ra", parent={"Rb": "Ra"})
        assert tree.covers_query(q)

    def test_wrong_attributes_do_not_cover(self):
        q = parse_query("Ra(A,B), Rb(B,C)")
        nodes = [node("Ra", ["Ra"], {"A", "B"}), node("Rb", ["Rb"], {"B"})]
        tree = DecompositionTree(nodes, root="Ra", parent={"Rb": "Ra"})
        assert not tree.covers_query(q)
