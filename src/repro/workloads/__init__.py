"""The paper's evaluation workloads (Fig. 5)."""

from repro.workloads.base import Workload
from repro.workloads.facebook_queries import (
    cycle_workload,
    facebook_workloads,
    path_workload,
    star_workload,
    triangle_workload,
)
from repro.workloads.tpch_queries import (
    q1_workload,
    q2_workload,
    q3_workload,
    tpch_workloads,
)

__all__ = [
    "Workload",
    "cycle_workload",
    "facebook_workloads",
    "path_workload",
    "q1_workload",
    "q2_workload",
    "q3_workload",
    "star_workload",
    "tpch_workloads",
    "triangle_workload",
]
