"""Snapshot epochs: pinned multi-reader / single-writer session state.

The :class:`~repro.session.PreparedQuery` contract gives *per-call*
atomicity — one lock serialises every read against every committed
batch.  That is not enough for a server: a caller issuing "count, then
sensitivity, then three probes" must see all five answers from the
*same* database version, even while a writer keeps folding update
batches in between.  This module adds that missing layer, in the spirit
of MVCC engines and of maintained query answering under updates
(Berkholz, Keppeler & Schweikardt):

* An :class:`Epoch` is an immutable snapshot handle — an epoch id plus
  the session's immutable :class:`~repro.engine.database.Database`
  snapshot at one commit point.  Epochs form a chain; exactly one is the
  *head*.
* Readers pin an epoch with a refcounted :class:`EpochLease`
  (:meth:`EpochManager.acquire`).  Every read through a lease
  (:meth:`~EpochManager.count`, :meth:`~EpochManager.sensitivity`,
  :meth:`~EpochManager.probe`, ...) answers exactly at the pinned
  epoch — never newer, never torn.
* A **single writer thread** drains queued update batches
  (:meth:`EpochManager.submit`), folds each one into the live session
  (:meth:`~repro.session.PreparedQuery.apply` — compaction + one
  staged-then-committed vectorized fold per maintained level) while
  holding the session lock, and *atomically swaps in* the next epoch
  under the same lock.  A batch that raises commits nothing: the head
  epoch, and every answer served from it, stays bit-identical.
* A superseded epoch lives as long as its leases: reads against it are
  answered from a lazily *forked* session over its frozen snapshot
  (:meth:`~repro.session.PreparedQuery.fork`), entirely outside the
  writer's lock.  When the last lease drains the epoch retires and its
  resources are dropped.

Head reads hit the maintained state (botjoins/topjoins/tables folded
under updates — fast), stragglers on old epochs pay a rebuild but stay
consistent, and the writer never blocks on readers longer than one
session call.  Everything else in :mod:`repro.serve` — the coalescing
admission queue, the asyncio front end — goes through this module; lint
rule R007 pins that layering by banning direct maintained-state access
(``_evaluator``, ``JoinState``, ...) anywhere else under ``serve/``.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.exceptions import ServeError
from repro.session import PreparedQuery, Update

#: Sentinel shutting the writer thread down.
_STOP = object()


class Epoch:
    """One immutable snapshot of the served session's state.

    An epoch never changes once created: it carries the epoch id, the
    immutable database snapshot taken at its commit point, and the
    update-stream position (:attr:`updates_applied`).  Mutable
    bookkeeping (refcount, superseded/retired flags, the lazily built
    frozen reader) belongs to the :class:`EpochManager` and is guarded by
    its locks, not by this object.
    """

    def __init__(self, epoch_id: int, db: Database, updates_applied: int):
        self.epoch_id = epoch_id
        self.db = db
        self.updates_applied = updates_applied
        self._refcount = 0
        self._superseded = False
        self._retired = False
        self._frozen: Optional[PreparedQuery] = None
        self._frozen_lock = threading.Lock()

    @property
    def refcount(self) -> int:
        """Number of live leases pinning this epoch."""
        return self._refcount

    @property
    def superseded(self) -> bool:
        """True once a newer epoch has been swapped in as head."""
        return self._superseded

    @property
    def retired(self) -> bool:
        """True once the last lease drained and resources were dropped."""
        return self._retired

    def __repr__(self) -> str:
        state = (
            "retired"
            if self._retired
            else ("superseded" if self._superseded else "head")
        )
        return (
            f"Epoch({self.epoch_id}, {state}, leases={self._refcount}, "
            f"updates={self.updates_applied})"
        )


class EpochLease:
    """A refcounted pin on one epoch.

    Acquired from :meth:`EpochManager.acquire`; usable as a context
    manager.  Every manager read takes a lease and answers exactly at
    its epoch.  Release is idempotent; reading through a released lease
    raises :class:`~repro.exceptions.ServeError`.
    """

    def __init__(self, manager: "EpochManager", epoch: Epoch):
        self._manager = manager
        self._epoch = epoch
        self._released = False

    @property
    def epoch(self) -> Epoch:
        return self._epoch

    @property
    def epoch_id(self) -> int:
        return self._epoch.epoch_id

    @property
    def db(self) -> Database:
        """The immutable database snapshot this lease pins."""
        return self._epoch.db

    def release(self) -> None:
        """Drop the pin (idempotent).  May retire the epoch."""
        if not self._released:
            self._released = True
            self._manager._release(self._epoch)

    def _require_active(self) -> None:
        if self._released:
            raise ServeError(
                f"lease on epoch {self._epoch.epoch_id} was already released"
            )

    def __enter__(self) -> "EpochLease":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        state = "released" if self._released else "active"
        return f"EpochLease(epoch={self._epoch.epoch_id}, {state})"


@dataclass(frozen=True)
class AppliedBatch:
    """Outcome of one committed writer batch."""

    #: The epoch the batch created (the new head at commit time).
    epoch_id: int
    #: Maintained ``|Q(D)|`` after the batch.
    count: int
    #: Number of stream elements in the batch (pre-compaction).
    applied: int


class EpochManager:
    """Owns the session, the epoch chain, and the single writer thread.

    Parameters
    ----------
    session:
        The live maintained :class:`~repro.session.PreparedQuery`.  The
        manager takes over all mutation: callers must stop calling
        ``session.apply``/``insert``/``delete`` directly and go through
        :meth:`submit` / :meth:`apply` instead (reads through leases).
    max_queue:
        Bound on queued-but-unapplied writer batches; submissions beyond
        it block, back-pressuring producers.

    Locking protocol (the heart of the epoch guarantee): the writer
    thread holds ``session.lock`` across *both* the fold and the head
    swap, and head reads check ``lease.epoch.superseded`` under that
    same lock before touching the session — so a read through a lease
    either sees the session exactly at its epoch, or detects the swap
    and falls back to the epoch's frozen fork.  The manager's own mutex
    only guards the epoch map and refcounts and is never held across
    engine work.
    """

    def __init__(self, session: PreparedQuery, max_queue: int = 1024):
        self._session = session
        self._mutex = threading.Lock()
        head = Epoch(0, session.db, session.updates_applied)
        self._head = head
        self._epochs: Dict[int, Epoch] = {head.epoch_id: head}
        self._retired_count = 0
        self._batches_applied = 0
        self._batches_failed = 0
        self._closed = False
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-serve-writer", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------- accessors
    @property
    def session(self) -> PreparedQuery:
        """The live maintained session (head state).  Do not mutate it
        directly; use :meth:`submit`."""
        return self._session

    @property
    def head(self) -> Epoch:
        """The current head epoch."""
        return self._head

    @property
    def closed(self) -> bool:
        return self._closed

    # ---------------------------------------------------------------- leases
    def acquire(self) -> EpochLease:
        """Pin the current head epoch and return the lease."""
        with self._mutex:
            if self._closed:
                raise ServeError("epoch manager is closed")
            epoch = self._head
            epoch._refcount += 1
            return EpochLease(self, epoch)

    def _release(self, epoch: Epoch) -> None:
        with self._mutex:
            epoch._refcount -= 1
            self._maybe_retire(epoch)

    def _maybe_retire(self, epoch: Epoch) -> None:
        """Retire a drained, superseded epoch (mutex held)."""
        if epoch._superseded and epoch._refcount <= 0 and not epoch._retired:
            epoch._retired = True
            self._epochs.pop(epoch.epoch_id, None)
            self._retired_count += 1
            frozen, epoch._frozen = epoch._frozen, None
            if frozen is not None:
                frozen.close()

    # ----------------------------------------------------------------- reads
    def read(self, lease: EpochLease, fn: Callable[[PreparedQuery], object]):
        """Run ``fn`` against a session view pinned to ``lease``'s epoch.

        While the lease's epoch is head, ``fn`` runs on the maintained
        session under the session lock (so it cannot interleave with the
        writer's fold-and-swap).  Once superseded, ``fn`` runs lock-free
        on the epoch's frozen fork over its immutable snapshot — the
        answer is identical to what the head read would have produced at
        that epoch, pinned by the serving-equivalence property suite.
        """
        lease._require_active()
        epoch = lease.epoch
        if not epoch._superseded:
            with self._session.lock:
                # Re-check under the lock: the writer swaps heads while
                # holding it, so a non-superseded epoch here is proof the
                # session state still belongs to this epoch.
                if not epoch._superseded:
                    return fn(self._session)
        return fn(self._frozen_session(epoch))

    def _frozen_session(self, epoch: Epoch) -> PreparedQuery:
        """The epoch's lazily built read-only fork (one per epoch)."""
        with epoch._frozen_lock:
            if epoch._retired:
                raise ServeError(
                    f"epoch {epoch.epoch_id} already retired"
                )
            if epoch._frozen is None:
                epoch._frozen = self._session.fork(epoch.db)
            return epoch._frozen

    def count(self, lease: EpochLease) -> int:
        """``|Q(D)|`` at the lease's epoch."""
        return self.read(lease, lambda s: s.count())

    def probe(
        self, lease: EpochLease, relation: str, rows: Sequence[Sequence[object]]
    ) -> List[int]:
        """Hypothetical count-change magnitudes ``w(t)`` at the epoch.

        All rows ride one probe-id-tagged vectorized pass; the admission
        queue coalesces concurrent requests onto this call.
        """
        return self.read(lease, lambda s: s.probe(relation, rows))

    def sensitivity(
        self,
        lease: EpochLease,
        method: str = "auto",
        skip_relations: Iterable[str] = (),
        top_k: Optional[int] = None,
    ):
        """``LS(Q, D)`` (a ``SensitivityResult``) at the lease's epoch."""
        skip = tuple(skip_relations)
        return self.read(
            lease,
            lambda s: s.sensitivity(
                method=method, skip_relations=skip, top_k=top_k
            ),
        )

    def top_k(
        self, lease: EpochLease, k: int, skip_relations: Iterable[str] = ()
    ):
        """The top-k clamping upper bound at the lease's epoch."""
        skip = tuple(skip_relations)
        return self.read(lease, lambda s: s.top_k(k, skip_relations=skip))

    def explain(self, lease: EpochLease, skip_relations: Iterable[str] = ()):
        """The TSens cost profile at the lease's epoch."""
        skip = tuple(skip_relations)
        return self.read(lease, lambda s: s.explain(skip_relations=skip))

    def release(self, lease: EpochLease, epsilon: float, **kwargs):
        """A DP release computed at the lease's epoch.

        Unlike the other reads this draws fresh noise per call, so the
        admission queue never coalesces or dedups it; the tenant's
        accountant (``kwargs["accountant"]``) is spent exactly once.
        """
        return self.read(lease, lambda s: s.release(epsilon, **kwargs))

    def session_stats(self, lease: EpochLease) -> Dict[str, object]:
        """:meth:`PreparedQuery.stats` of the lease's epoch view."""
        return self.read(lease, lambda s: s.stats())

    # ---------------------------------------------------------------- writes
    def submit(self, batch: Iterable[Update]):
        """Queue one update batch for the writer thread; returns a
        ``concurrent.futures.Future`` resolving to :class:`AppliedBatch`
        (or raising the batch's error).

        Batches commit in submission order, each creating one new epoch.
        A failed batch (unknown relation, malformed element, count
        overflow) commits nothing and does not advance the epoch — the
        error surfaces on this future only.
        """
        from concurrent.futures import Future

        if self._closed:
            raise ServeError("epoch manager is closed")
        future: "Future" = Future()
        self._queue.put((list(batch), future))
        return future

    def apply(self, batch: Iterable[Update]) -> AppliedBatch:
        """Synchronous :meth:`submit` — blocks until the batch commits."""
        return self.submit(batch).result()

    def _writer_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            batch, future = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                with self._session.lock:
                    count = self._session.apply(batch)
                    new_head = self._advance()
            except Exception as exc:
                # The session's staged-then-commit contract already
                # guarantees its state is untouched; reporting the error
                # on the future (not crashing the writer) keeps the head
                # epoch serving.
                with self._mutex:
                    self._batches_failed += 1
                future.set_exception(exc)
            else:
                with self._mutex:
                    self._batches_applied += 1
                future.set_result(
                    AppliedBatch(
                        epoch_id=new_head.epoch_id,
                        count=count,
                        applied=len(batch),
                    )
                )

    def _advance(self) -> Epoch:
        """Swap in the next head epoch (session lock held by the writer)."""
        with self._mutex:
            old = self._head
            new = Epoch(
                old.epoch_id + 1,
                self._session.db,
                self._session.updates_applied,
            )
            self._epochs[new.epoch_id] = new
            self._head = new
            old._superseded = True
            self._maybe_retire(old)
            return new

    # ------------------------------------------------------------ lifecycle
    def stats(self) -> Dict[str, object]:
        """Operational snapshot: epoch chain, leases, writer counters."""
        with self._mutex:
            live = {
                epoch.epoch_id: epoch.refcount
                for epoch in self._epochs.values()
            }
            info = {
                "head_epoch": self._head.epoch_id,
                "head_updates_applied": self._head.updates_applied,
                "live_epochs": live,
                "active_leases": sum(live.values()),
                "retired_epochs": self._retired_count,
                "queued_batches": self._queue.qsize(),
                "batches_applied": self._batches_applied,
                "batches_failed": self._batches_failed,
                "closed": self._closed,
            }
        return info

    def close(self) -> None:
        """Drain the writer queue, stop the writer thread and refuse new
        leases/batches.  Idempotent.  Already-pinned leases keep reading
        (their epochs' frozen forks stay valid until released)."""
        with self._mutex:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
        if already:
            return
        self._queue.put(_STOP)
        self._writer.join()

    def __enter__(self) -> "EpochManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"EpochManager(head={self._head.epoch_id}, "
            f"live={len(self._epochs)}, closed={self._closed})"
        )
