"""Inline suppression comments for ``repro lint``.

Two forms, parsed from comment tokens only (string literals that merely
*contain* the marker text never count):

* ``# repro-lint: disable=R001`` — silences the named rule(s) on the
  comment's own line.  When the comment stands alone on its line, it
  silences the *next* code line instead, so wide findings can be
  suppressed without stretching the offending line.
* ``# repro-lint: disable-file=R001`` — silences the named rule(s) for
  the whole file.

Multiple rules are comma-separated (``disable=R001,R005``).  ``disable=all``
matches every rule.  Unknown text after the marker is ignored so the
comment can carry a justification: ``# repro-lint: disable=R002 -- lazy fill``.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Set

_MARKER = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)


def _parse_rules(raw: str) -> FrozenSet[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


class Suppressions:
    """Parsed suppression comments of one file."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]], file_wide: FrozenSet[str]):
        self._by_line = by_line
        self._file_wide = file_wide

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        by_line: Dict[int, Set[str]] = {}
        file_wide: Set[str] = set()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return cls({}, frozenset())
        lines = source.splitlines()
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _MARKER.search(token.string)
            if match is None:
                continue
            rules = _parse_rules(match.group("rules"))
            if match.group("kind") == "disable-file":
                file_wide |= rules
                continue
            lineno = token.start[0]
            before = lines[lineno - 1][: token.start[1]] if lineno <= len(lines) else ""
            target = lineno if before.strip() else _next_code_line(lines, lineno)
            by_line.setdefault(target, set()).update(rules)
        return cls(
            {line: frozenset(rules) for line, rules in by_line.items()},
            frozenset(file_wide),
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "all" in self._file_wide or rule in self._file_wide:
            return True
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return "all" in rules or rule in rules


def _next_code_line(lines, comment_line: int) -> int:
    """First non-blank, non-comment line after a standalone comment."""
    for offset, text in enumerate(lines[comment_line:], start=comment_line + 1):
        stripped = text.strip()
        if stripped and not stripped.startswith("#"):
            return offset
    return comment_line
