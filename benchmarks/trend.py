#!/usr/bin/env python
"""Render the BENCH_<backend>.json timing trajectory as one table.

The benchmark conftest merges per-test wall times into
``benchmarks/BENCH_<backend>.json`` after every successful run.  This
script is the read side: one row per benchmark, one column per backend,
plus the python/columnar ratio — so CI logs (and anyone running the
suite locally) see the performance trajectory instead of a pair of
opaque JSON blobs.

Run with::

    python benchmarks/trend.py [--json]

``--json`` emits the merged structure for machine consumption (the CI
artifact upload keeps the raw files as well).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent


def load_reports() -> dict:
    """``backend -> {test node id -> seconds}`` from every BENCH file."""
    reports = {}
    for path in sorted(BENCH_DIR.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError) as error:
            print(f"warning: skipping {path.name}: {error}", file=sys.stderr)
            continue
        backend = payload.get("backend", path.stem.replace("BENCH_", ""))
        reports[backend] = payload.get("timings_seconds", {})
    return reports


def render(reports: dict) -> str:
    if not reports:
        return "no BENCH_<backend>.json files found — run the benchmarks first"
    backends = sorted(reports)
    tests = sorted({node for timings in reports.values() for node in timings})
    name_width = max(len(t) for t in tests)
    header = f"{'benchmark':<{name_width}}" + "".join(
        f"  {b:>10}" for b in backends
    )
    show_ratio = {"python", "columnar"} <= set(backends)
    if show_ratio:
        header += f"  {'py/col':>7}"
    lines = [header, "-" * len(header)]
    for test in tests:
        row = f"{test:<{name_width}}"
        for backend in backends:
            seconds = reports[backend].get(test)
            row += f"  {seconds:>10.3f}" if seconds is not None else f"  {'-':>10}"
        if show_ratio:
            py = reports["python"].get(test)
            col = reports["columnar"].get(test)
            if py is not None and col:
                row += f"  {py / col:>6.1f}x"
            else:
                row += f"  {'-':>7}"
        lines.append(row)
    for backend in backends:
        total = sum(reports[backend].values())
        lines.append(f"total {backend}: {total:.2f}s over "
                     f"{len(reports[backend])} benchmarks")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", action="store_true", help="emit the merged JSON instead"
    )
    args = parser.parse_args()
    reports = load_reports()
    if args.json:
        print(json.dumps(reports, indent=1, sort_keys=True))
    else:
        print(render(reports))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
