"""Project-specific static analysis (``repro lint``).

See :mod:`repro.analysis.framework` for the driver,
:mod:`repro.analysis.rules` for the rule catalog, and
``docs/lint-rules.md`` for the human-oriented reference.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.framework import (
    FileContext,
    Finding,
    LintConfigError,
    LintResult,
    LintRunner,
    Rule,
)
from repro.analysis.rules import builtin_rules, load_rules
from repro.analysis.suppressions import Suppressions

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintConfigError",
    "LintResult",
    "LintRunner",
    "Rule",
    "Suppressions",
    "builtin_rules",
    "load_rules",
]
