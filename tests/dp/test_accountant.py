"""Unit tests for the privacy accountant."""

import pytest

from repro.dp import BudgetAccountant
from repro.exceptions import MechanismConfigError, PrivacyBudgetError


class TestAccountant:
    def test_spend_and_remaining(self):
        acct = BudgetAccountant(1.0)
        acct.spend(0.25, "estimate")
        acct.spend(0.25, "svt")
        assert acct.spent == pytest.approx(0.5)
        assert acct.remaining == pytest.approx(0.5)

    def test_overdraft_rejected(self):
        acct = BudgetAccountant(1.0)
        acct.spend(0.9)
        with pytest.raises(PrivacyBudgetError):
            acct.spend(0.2)

    def test_float_drift_tolerated(self):
        acct = BudgetAccountant(1.0)
        for _ in range(10):
            acct.spend(0.1)
        assert acct.remaining == pytest.approx(0.0, abs=1e-9)

    def test_ledger_groups_labels(self):
        acct = BudgetAccountant(2.0)
        acct.spend(0.5, "svt")
        acct.spend(0.25, "svt")
        acct.spend(1.0, "answer")
        assert acct.ledger() == {"svt": 0.75, "answer": 1.0}

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(MechanismConfigError):
            BudgetAccountant(0.0)

    def test_nonpositive_spend_rejected(self):
        with pytest.raises(MechanismConfigError):
            BudgetAccountant(1.0).spend(0.0)
