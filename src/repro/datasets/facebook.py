"""Synthetic Facebook ego-network generator (Sec. 7.1 "Facebook").

Substitution note (DESIGN.md): the paper uses SNAP's Facebook ego-network
of user 348 (225 nodes, 6 384 directed edges, 567 circles).  That file is
unavailable offline, so we synthesise a clustered social graph with matched
statistics and reproduce the paper's table construction exactly:

1. build a Watts–Strogatz small-world graph (high clustering — the
   property the triangle/cycle queries exercise) with the target node and
   edge counts, all edges bidirected;
2. draw ``num_circles`` circles: node subsets with heavy-tailed sizes
   (social circles are mostly small with a few large ones);
3. per circle ``i`` build the edge table ``E_i`` of directed edges with
   both endpoints inside the circle;
4. sort the ``E_i`` by size descending and insert ``E_j`` into ``R_i``
   when ``rank(E_j) mod 4`` selects table ``i`` — bag union, so an edge in
   several circles gets multiplicity > 1, matching the paper's setup;
5. build the triangle table ``TRI(x, y, z) :- R4(x,y), R4(y,z), R4(z,x)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.engine.database import Database
from repro.engine.operators import join
from repro.engine.relation import Relation
from repro.exceptions import MechanismConfigError

#: Defaults matching the SNAP ego-network of user 348 used in the paper.
DEFAULT_NODES = 225
DEFAULT_DIRECTED_EDGES = 6384
DEFAULT_CIRCLES = 567


def _ring_degree(nodes: int, directed_edges: int) -> int:
    """Even ring degree giving approximately the requested edge count."""
    undirected = directed_edges // 2
    k = max(2, int(round(2 * undirected / nodes)))
    return k if k % 2 == 0 else k + 1


def generate_ego_network(
    nodes: int = DEFAULT_NODES,
    directed_edges: int = DEFAULT_DIRECTED_EDGES,
    num_circles: int = DEFAULT_CIRCLES,
    rewire_probability: float = 0.1,
    seed: int = 0,
    backend: str = "python",
) -> Database:
    """Build the four edge tables ``R1..R4`` plus the triangle table ``TRI``.

    Returns a :class:`~repro.engine.database.Database` with relations
    ``R1(X, Y) .. R4(X, Y)`` and ``TRI(X, Y, Z)``.  No foreign keys: the
    Facebook queries have none, which is exactly why PrivSQL performs no
    truncation on them (Sec. 7.3).
    """
    if nodes < 8:
        raise MechanismConfigError(f"need at least 8 nodes, got {nodes}")
    rng = np.random.default_rng(seed)
    k = _ring_degree(nodes, directed_edges)
    graph = nx.watts_strogatz_graph(
        nodes, k, rewire_probability, seed=int(rng.integers(0, 2**31))
    )
    directed: List[Tuple[int, int]] = []
    for u, v in graph.edges():
        directed.append((u, v))
        directed.append((v, u))
    adjacency = {node: set(graph.neighbors(node)) for node in graph.nodes()}

    # Heavy-tailed circle sizes: mostly tiny cliques, occasionally large
    # communities — mirrors the SNAP circle-size distribution.
    circle_edge_tables: List[List[Tuple[int, int]]] = []
    for _ in range(num_circles):
        size = 2 + int(rng.pareto(2.0) * 2)
        size = min(size, nodes)
        # Grow the circle around a seed node so members tend to be linked.
        seed_node = int(rng.integers(0, nodes))
        members = {seed_node}
        frontier = [seed_node]
        while len(members) < size and frontier:
            current = frontier.pop(0)
            neighbours = sorted(adjacency[current] - members)
            rng.shuffle(neighbours)
            for other in neighbours:
                if len(members) >= size:
                    break
                members.add(other)
                frontier.append(other)
        if len(members) < size:
            extra = rng.choice(nodes, size=size - len(members), replace=False)
            members |= {int(x) for x in extra}
        edges = [
            (u, v)
            for u in members
            for v in adjacency[u] & members
        ]
        circle_edge_tables.append(edges)

    # Rank circles by edge-table size descending; table = rank mod 4.
    order = sorted(
        range(num_circles), key=lambda i: (-len(circle_edge_tables[i]), i)
    )
    buckets: Dict[int, List[Tuple[int, int]]] = {1: [], 2: [], 3: [], 4: []}
    for rank, circle_index in enumerate(order, start=1):
        table = ((rank - 1) % 4) + 1
        buckets[table].extend(circle_edge_tables[circle_index])

    relations = {
        f"R{i}": Relation(["X", "Y"], buckets[i]) for i in range(1, 5)
    }
    relations["TRI"] = triangle_table(relations["R4"])
    return Database(relations, backend=backend)


def triangle_table(edges: Relation) -> Relation:
    """``TRI(X,Y,Z) :- E(X,Y), E(Y,Z), E(Z,X)`` over one edge bag.

    Multiplicities multiply along the three hops, matching the paper's
    bag-semantics triangle construction from ``R4``.
    """
    e_xy = edges  # (X, Y)
    e_yz = edges.rename({"X": "Y", "Y": "Z"})
    partial = join(e_xy, e_yz)  # (X, Y, Z)
    e_zx = edges.rename({"X": "Z", "Y": "X"})
    closed = join(partial, e_zx)
    # Reorder columns to (X, Y, Z) for a stable public schema.
    from repro.engine.operators import group_by

    return group_by(closed, ("X", "Y", "Z"))


def graph_statistics(db: Database) -> Dict[str, int]:
    """Sizes of the generated tables, for reports and sanity tests."""
    return {name: db.relation(name).total_count() for name in db.relation_names}
