"""Ablation — join-tree root choice (the ``d`` parameter of Theorem 5.1).

Algorithm 2's cost depends on the tree shape: re-rooting a chain at its
middle halves the topjoin depth but the degree stays ≤ 2, so runtimes stay
comparable; the local sensitivity must be identical for every rooting.
"""

import pytest

from repro.core import tsens_connected
from repro.query import gyo_join_tree
from repro.workloads import path_workload


@pytest.mark.parametrize("root_index", [0, 1, 3])
def test_rerooted_tree_same_result(benchmark, facebook_base, root_index):
    workload = path_workload()
    db = workload.prepared(facebook_base)
    tree = gyo_join_tree(workload.query)
    new_root = sorted(tree.node_ids)[root_index]
    rerooted = tree.rerooted(new_root)

    result = benchmark.pedantic(
        lambda: tsens_connected(workload.query, db, tree=rerooted),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["root"] = new_root
    benchmark.extra_info["ls"] = result.local_sensitivity
    baseline = tsens_connected(workload.query, db, tree=tree)
    assert result.local_sensitivity == baseline.local_sensitivity
