"""Decomposition trees: join trees and generalized hypertree decompositions.

A :class:`DecompositionTree` is a rooted tree whose nodes each cover one or
more query atoms.  Two uses:

* **Join tree** (Sec. 2.2): every node covers exactly one atom; produced by
  GYO decomposition of an acyclic query (:func:`repro.query.gyo.gyo_join_tree`).
* **Generalized hypertree decomposition** (Sec. 5.4 "General joins"): nodes
  may cover several atoms; each atom is assigned to exactly one node and the
  node's attribute set is the union of its atoms' variables.  Algorithm 2
  then runs over the node tree with each node materialised as the bag join
  of its atoms.

The class enforces the *running intersection property* — for every variable,
the nodes whose attribute sets contain it form a connected subtree — which
is exactly the property Theorems 4.1/5.1 rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.exceptions import DecompositionError


@dataclass(frozen=True)
class TreeNode:
    """One node of a decomposition tree.

    Attributes
    ----------
    node_id:
        Unique identifier within the tree.
    relations:
        The atoms (by relation name) materialised at this node.  Singleton
        for plain join trees.
    attributes:
        Variables covered by the node: the union of its atoms' variables.
    """

    node_id: str
    relations: Tuple[str, ...]
    attributes: FrozenSet[str]


class DecompositionTree:
    """A rooted decomposition tree with the running-intersection property.

    Parameters
    ----------
    nodes:
        The tree nodes.  ``node_id`` values must be unique.
    root:
        ``node_id`` of the root.
    parent:
        Mapping from non-root ``node_id`` to its parent's ``node_id``.
    """

    def __init__(
        self,
        nodes: Iterable[TreeNode],
        root: str,
        parent: Mapping[str, str],
    ):
        self._nodes: Dict[str, TreeNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise DecompositionError(f"duplicate node id {node.node_id!r}")
            self._nodes[node.node_id] = node
        if root not in self._nodes:
            raise DecompositionError(f"root {root!r} is not a node")
        self._root = root
        self._parent: Dict[str, str] = dict(parent)
        self._children: Dict[str, List[str]] = {nid: [] for nid in self._nodes}
        for child, par in self._parent.items():
            if child not in self._nodes or par not in self._nodes:
                raise DecompositionError(f"parent edge {child!r}->{par!r} uses unknown node")
            self._children[par].append(child)
        self._validate_tree_shape()
        self._validate_relation_assignment()
        self._validate_running_intersection()

    # ------------------------------------------------------------ validation
    def _validate_tree_shape(self) -> None:
        if self._root in self._parent:
            raise DecompositionError("root must not have a parent")
        non_root = set(self._nodes) - {self._root}
        if set(self._parent) != non_root:
            missing = non_root - set(self._parent)
            raise DecompositionError(f"nodes without a parent edge: {sorted(missing)}")
        # Reachability check also rejects cycles: every node must be reached
        # exactly once walking down from the root.
        seen = set()
        stack = [self._root]
        while stack:
            nid = stack.pop()
            if nid in seen:
                raise DecompositionError("parent edges contain a cycle")
            seen.add(nid)
            stack.extend(self._children[nid])
        if seen != set(self._nodes):
            raise DecompositionError("tree is disconnected")

    def _validate_relation_assignment(self) -> None:
        assigned: Dict[str, str] = {}
        for node in self._nodes.values():
            for rel in node.relations:
                if rel in assigned:
                    raise DecompositionError(
                        f"relation {rel!r} assigned to both {assigned[rel]!r} "
                        f"and {node.node_id!r}"
                    )
                assigned[rel] = node.node_id

    def _validate_running_intersection(self) -> None:
        variables = set()
        for node in self._nodes.values():
            variables |= node.attributes
        for var in variables:
            holders = {nid for nid, n in self._nodes.items() if var in n.attributes}
            # The subgraph induced by `holders` must be connected.  Walk the
            # tree from any holder, moving only through holder nodes.
            start = next(iter(holders))
            seen = {start}
            stack = [start]
            while stack:
                nid = stack.pop()
                neighbours = list(self._children[nid])
                if nid in self._parent:
                    neighbours.append(self._parent[nid])
                for other in neighbours:
                    if other in holders and other not in seen:
                        seen.add(other)
                        stack.append(other)
            if seen != holders:
                raise DecompositionError(
                    f"running intersection violated for variable {var!r}: "
                    f"nodes {sorted(holders)} are not connected"
                )

    # -------------------------------------------------------------- accessors
    @property
    def root(self) -> str:
        return self._root

    @property
    def node_ids(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def node(self, node_id: str) -> TreeNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise DecompositionError(f"unknown node {node_id!r}") from None

    def parent(self, node_id: str) -> Optional[str]:
        """Parent id, or ``None`` for the root."""
        return self._parent.get(node_id)

    def children(self, node_id: str) -> Tuple[str, ...]:
        return tuple(self._children[node_id])

    def neighbours(self, node_id: str) -> Tuple[str, ...]:
        """Siblings of ``node_id`` — the paper's ``N(R_j)``."""
        par = self.parent(node_id)
        if par is None:
            return ()
        return tuple(c for c in self._children[par] if c != node_id)

    def is_leaf(self, node_id: str) -> bool:
        return not self._children[node_id]

    def node_of_relation(self, relation: str) -> str:
        """The node id to which ``relation`` is assigned."""
        for node in self._nodes.values():
            if relation in node.relations:
                return node.node_id
        raise DecompositionError(f"relation {relation!r} not assigned to any node")

    @property
    def relations(self) -> Tuple[str, ...]:
        out: List[str] = []
        for node in self._nodes.values():
            out.extend(node.relations)
        return tuple(out)

    def shared_with_parent(self, node_id: str) -> FrozenSet[str]:
        """``A_i ∩ A_p(i)`` — the botjoin/topjoin grouping attributes."""
        par = self.parent(node_id)
        if par is None:
            return frozenset()
        return self.node(node_id).attributes & self.node(par).attributes

    # ------------------------------------------------------------- traversal
    def post_order(self) -> List[str]:
        """Children before parents (botjoin order)."""
        order: List[str] = []

        def visit(nid: str) -> None:
            for child in self._children[nid]:
                visit(child)
            order.append(nid)

        visit(self._root)
        return order

    def pre_order(self) -> List[str]:
        """Parents before children (topjoin order)."""
        order: List[str] = []
        stack = [self._root]
        while stack:
            nid = stack.pop()
            order.append(nid)
            stack.extend(reversed(self._children[nid]))
        return order

    # ------------------------------------------------------------ statistics
    def max_degree(self) -> int:
        """The paper's ``d``: max over nodes of (#children + 1 for the parent
        edge of non-root nodes).  Drives the ``O(m d n^d log n)`` bound of
        Theorem 5.1."""
        best = 0
        for nid in self._nodes:
            degree = len(self._children[nid]) + (0 if nid == self._root else 1)
            best = max(best, degree)
        return best

    def width(self) -> int:
        """Max number of relations per node (1 for plain join trees; the
        paper's ``p`` for generalized hypertree decompositions)."""
        return max(len(node.relations) for node in self._nodes.values())

    def rerooted(self, new_root: str) -> "DecompositionTree":
        """The same tree re-rooted at ``new_root`` (edges reoriented)."""
        self.node(new_root)
        if new_root == self._root:
            return self
        parent: Dict[str, str] = {}
        seen = {new_root}
        stack = [new_root]
        while stack:
            nid = stack.pop()
            neighbours = list(self._children[nid])
            if nid in self._parent:
                neighbours.append(self._parent[nid])
            for other in neighbours:
                if other not in seen:
                    seen.add(other)
                    parent[other] = nid
                    stack.append(other)
        return DecompositionTree(self._nodes.values(), new_root, parent)

    def covers_query(self, query: ConjunctiveQuery) -> bool:
        """True iff every atom of ``query`` is assigned to exactly one node
        and each node's attributes equal the union of its atoms' variables."""
        assigned = set(self.relations)
        if assigned != set(query.relation_names):
            return False
        for node in self._nodes.values():
            union: FrozenSet[str] = frozenset()
            for rel in node.relations:
                union = union | query.atom(rel).variable_set
            if union != node.attributes:
                return False
        return True

    def __repr__(self) -> str:
        lines: List[str] = []

        def visit(nid: str, depth: int) -> None:
            node = self._nodes[nid]
            rels = ",".join(node.relations)
            lines.append("  " * depth + f"{nid}[{rels}]({','.join(sorted(node.attributes))})")
            for child in self._children[nid]:
                visit(child, depth + 1)

        visit(self._root, 0)
        return "DecompositionTree:\n" + "\n".join(lines)


def join_tree_from_parents(
    query: ConjunctiveQuery, root: str, parent: Mapping[str, str]
) -> DecompositionTree:
    """Build a single-relation-per-node join tree from explicit parent edges.

    ``root`` and the keys/values of ``parent`` are relation names; node ids
    equal relation names.  Validation (running intersection) happens in the
    :class:`DecompositionTree` constructor.
    """
    nodes = [
        TreeNode(atom.relation, (atom.relation,), atom.variable_set)
        for atom in query.atoms
    ]
    return DecompositionTree(nodes, root, parent)
