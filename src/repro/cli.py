"""Command-line interface: ``python -m repro <command>``.

Five commands cover the library's day-to-day uses:

``sensitivity``
    Local sensitivity of a query over data on disk (CSV directory or JSON
    database), with the most sensitive tuple per relation.
``count``
    The bag count ``|Q(D)|``.
``explain``
    TSens cost profile (intermediate sizes, table factors).
``bench-session``
    Drive an insert/delete stream through one maintained
    :class:`~repro.session.PreparedQuery` and through rebuild-per-update,
    verify they agree, and report the speedup.
``experiment``
    Re-run one of the paper's experiments (fig6a, fig6b, fig7, table1,
    table2, params) and print its table.
``generate``
    Materialise a synthetic dataset (tpch or facebook) to a JSON database
    file for use with the other commands.
``lint``
    Run the project's static-analysis rules (privacy taint, staged
    commit, cache invalidation, dispatch completeness, checked overflow,
    no bare asserts, epoch-lease boundary) over a source tree; see
    ``docs/lint-rules.md``.
``serve``
    Boot the snapshot-epoch session server
    (:class:`~repro.serve.server.SessionServer`) over a prepared query:
    concurrent coalesced reads, a single-writer update pipeline, and
    per-tenant DP budgets over newline-delimited JSON.
``client``
    Issue one request against a running ``repro serve`` endpoint and
    print the response frame.

``sensitivity``, ``count``, ``explain``, ``bench-session`` and ``serve``
all go through one shared prepare step (:func:`repro.session.prepare`):
load, parse, attach selections, plan — then ask the session.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.engine.backend import BACKEND_NAMES, DEFAULT_BACKEND
from repro.engine.io import load_database, load_database_csv_dir, save_database
from repro.query import parse_query
from repro.session import PreparedQuery, prepare, rebuild_per_update_counts
from repro.exceptions import ReproError


def _load_data(path_text: str, int_columns: bool, backend: str = DEFAULT_BACKEND):
    path = Path(path_text)
    if path.is_dir():
        converters = None
        if int_columns:
            # Apply int() to every column of every relation lazily: build
            # a mapping-of-mappings that defaults to int.
            class _AllInt(dict):
                def get(self, key, default=None):
                    return _IntColumns()

            class _IntColumns(dict):
                def get(self, key, default=None):
                    return int

            converters = _AllInt()
        return load_database_csv_dir(path, converters=converters, backend=backend)
    return load_database(path, backend=backend)


def _apply_where(query, clauses):
    """Attach ``--where "REL: <predicate>"`` clauses to the query."""
    from repro.query import parse_predicate

    for clause in clauses or ():
        if ":" not in clause:
            raise ReproError(
                f"--where needs the form 'RELATION: predicate', got {clause!r}"
            )
        relation, text = clause.split(":", 1)
        query = query.with_selection(relation.strip(), parse_predicate(text))
    return query


def _session_from_args(args: argparse.Namespace) -> PreparedQuery:
    """The shared prepare step: load → parse → selections → plan."""
    db = _load_data(args.data, args.int_columns, args.backend)
    query = _apply_where(parse_query(args.query), args.where)
    return prepare(query, db, workers=getattr(args, "workers", 1))


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    session = _session_from_args(args)
    result = session.sensitivity(
        method=args.method,
        top_k=args.top_k,
        skip_relations=tuple(args.skip or ()),
        reeval_mode=args.reeval_mode,
    )
    print(f"query            : {session.query}")
    print(f"method           : {result.method}")
    print(f"local sensitivity: {result.local_sensitivity}")
    if result.witness is not None:
        print(
            f"witness          : {result.witness.relation} "
            f"{dict(result.witness.assignment)}"
        )
    print("per relation:")
    for relation, witness in result.per_relation.items():
        detail = dict(witness.assignment) if witness.assignment else "-"
        print(f"  {relation}: δ={witness.sensitivity}  {detail}")
    return 0


def _cmd_count(args: argparse.Namespace) -> int:
    print(_session_from_args(args).count())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    session = _session_from_args(args)
    print(session.explain(skip_relations=tuple(args.skip or ())))
    print("session stats:")
    print(json.dumps(session.stats(), indent=2))
    return 0


def _cmd_bench_session(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.datasets import random_update_stream

    session = _session_from_args(args)
    query, base = session.query, session.db
    rng = np.random.default_rng(args.seed)
    stream = random_update_stream(
        query, base, rng, args.updates, insert_fraction=args.insert_fraction
    )

    start = time.perf_counter()
    maintained_counts = [session.apply([update]) for update in stream]
    maintained_seconds = time.perf_counter() - start

    start = time.perf_counter()
    rebuilt_counts = rebuild_per_update_counts(query, base, stream)
    rebuild_seconds = time.perf_counter() - start

    agreement = maintained_counts == rebuilt_counts
    speedup = rebuild_seconds / max(maintained_seconds, 1e-9)
    print(f"query              : {query}")
    print(f"backend            : {session.backend}")
    print(f"updates applied    : {len(stream)} "
          f"(count probed after each)")
    print(f"final |Q(D)|       : {maintained_counts[-1] if stream else session.count()}")
    print(f"maintained session : {maintained_seconds:.3f}s")
    print(f"rebuild per update : {rebuild_seconds:.3f}s")
    print(f"speedup            : {speedup:.1f}x")
    print(f"counts agree       : {'yes' if agreement else 'NO'}")
    if not agreement:
        raise ReproError(
            "maintained counts diverged from rebuild-per-update counts"
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import fig6a, fig6b, fig7, param_analysis, table1, table2

    name = args.name
    if name == "fig6a":
        scales = tuple(args.scales) if args.scales else fig6a.DEFAULT_SCALES
        print(fig6a.report(fig6a.run(scales=scales, seed=args.seed)))
    elif name == "fig6b":
        scale = args.scales[0] if args.scales else fig6b.DEFAULT_SCALE
        print(fig6b.report(fig6b.run(scale=scale, seed=args.seed)))
    elif name == "fig7":
        scales = tuple(args.scales) if args.scales else fig6a.DEFAULT_SCALES
        print(fig7.report(fig7.run(scales=scales, seed=args.seed)))
    elif name == "table1":
        print(table1.report(table1.run(seed=args.seed)))
    elif name == "table2":
        scale = args.scales[0] if args.scales else table2.DEFAULT_TPCH_SCALE
        print(
            table2.report(
                table2.run(tpch_scale=scale, n_runs=args.runs, seed=args.seed)
            )
        )
    elif name == "params":
        print(
            param_analysis.report(
                param_analysis.run(n_runs=args.runs, seed=args.seed)
            )
        )
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown experiment {name}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "tpch":
        from repro.datasets import generate_tpch

        db = generate_tpch(args.scale, seed=args.seed)
    else:
        from repro.datasets import generate_ego_network

        db = generate_ego_network(seed=args.seed)
    save_database(db, args.output)
    sizes = {name: db.relation(name).total_count() for name in db.relation_names}
    print(f"wrote {args.output}: {sizes}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import Baseline, LintRunner, load_rules
    from repro.analysis.reporters import render_json, render_rule_list, render_text

    rules = load_rules(only=args.rules)
    if args.list_rules:
        print(render_rule_list(rules))
        return 0
    runner = LintRunner(rules)
    paths = [Path(p) for p in (args.paths or ["src"])]
    baseline_path = Path(args.baseline) if args.baseline else None
    if args.update_baseline:
        if baseline_path is None:
            raise ReproError("--update-baseline requires --baseline PATH")
        findings = []
        for path in runner.iter_python_files(paths):
            findings.extend(runner.check_file(path))
        count = Baseline.write(baseline_path, findings)
        print(f"wrote {baseline_path} with {count} entr{'y' if count == 1 else 'ies'}")
        return 0
    baseline = Baseline.load(baseline_path) if baseline_path else None
    result = runner.run(paths, baseline=baseline)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.clean else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import serve

    budgets = {}
    for spec in args.tenant or ():
        if "=" not in spec:
            raise ReproError(
                f"--tenant needs the form NAME=EPSILON, got {spec!r}"
            )
        name, epsilon = spec.split("=", 1)
        try:
            budgets[name.strip()] = float(epsilon)
        except ValueError:
            raise ReproError(
                f"--tenant budget must be a number, got {epsilon!r}"
            ) from None
    session = _session_from_args(args)
    server = serve(
        session,
        host=args.host,
        port=args.port,
        default_epsilon=args.default_epsilon,
        tenant_budgets=budgets,
        max_batch=args.max_batch,
    )
    server.start_background()
    print(
        f"serving {session.query.name} [{session.backend}] on "
        f"{server.host}:{server.port}",
        flush=True,
    )
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        session.close()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServeClient

    try:
        params = json.loads(args.params)
    except json.JSONDecodeError as error:
        raise ReproError(f"--params must be a JSON object: {error}") from None
    if not isinstance(params, dict):
        raise ReproError("--params must be a JSON object")
    if args.tenant is not None:
        params.setdefault("tenant", args.tenant)
    with ServeClient(args.host, args.port, timeout=args.timeout) as client:
        payload = client.call(args.op, **params)
    print(json.dumps(payload, indent=2))
    return 0


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    """Options every prepare-based command shares."""
    parser.add_argument("--query", required=True, help='e.g. "R(A,B), S(B,C)"')
    parser.add_argument(
        "--data", required=True, help="CSV directory or JSON database file"
    )
    parser.add_argument(
        "--int-columns", action="store_true",
        help="parse every CSV column as int",
    )
    parser.add_argument(
        "--backend", default=DEFAULT_BACKEND, choices=BACKEND_NAMES,
        help="execution backend for the engine (default: %(default)s)",
    )
    parser.add_argument(
        "--where", action="append",
        help="selection clause 'RELATION: predicate', repeatable "
             "(e.g. --where \"R: A = 1 and B in {2, 3}\")",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="sharded-execution worker processes; 1 (default) runs the "
             "serial path, N>1 hash-shards the heavy joins across N workers",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Local sensitivities of counting queries with joins (TSens).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sens = subparsers.add_parser(
        "sensitivity", help="compute LS(Q, D) and the most sensitive tuple"
    )
    _add_data_arguments(sens)
    sens.add_argument(
        "--method",
        default="auto",
        choices=["auto", "path", "tsens", "naive", "reeval"],
    )
    sens.add_argument(
        "--reeval-mode",
        default="incremental",
        choices=["incremental", "full"],
        dest="reeval_mode",
        help="probe engine for --method reeval: cached-delta propagation "
             "(incremental) or one full re-evaluation per candidate (full)",
    )
    sens.add_argument("--top-k", type=int, default=None, dest="top_k")
    sens.add_argument(
        "--skip", nargs="*", help="relations with certified δ ≤ 1 to skip"
    )
    sens.set_defaults(handler=_cmd_sensitivity)

    count = subparsers.add_parser("count", help="compute |Q(D)|")
    _add_data_arguments(count)
    count.set_defaults(handler=_cmd_count)

    explain_cmd = subparsers.add_parser(
        "explain", help="profile a TSens run (intermediate sizes, factors)"
    )
    _add_data_arguments(explain_cmd)
    explain_cmd.add_argument("--skip", nargs="*")
    explain_cmd.set_defaults(handler=_cmd_explain)

    bench = subparsers.add_parser(
        "bench-session",
        help="maintained session vs rebuild-per-update on an update stream",
    )
    _add_data_arguments(bench)
    bench.add_argument(
        "--updates", type=int, default=200,
        help="stream length (default: %(default)s)",
    )
    bench.add_argument(
        "--insert-fraction", type=float, default=0.5, dest="insert_fraction",
        help="fraction of inserts in the stream (default: %(default)s)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(handler=_cmd_bench_session)

    experiment = subparsers.add_parser(
        "experiment", help="re-run a paper experiment"
    )
    experiment.add_argument(
        "name",
        choices=["fig6a", "fig6b", "fig7", "table1", "table2", "params"],
    )
    experiment.add_argument("--scales", nargs="*", type=float)
    experiment.add_argument("--runs", type=int, default=20)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.set_defaults(handler=_cmd_experiment)

    generate = subparsers.add_parser(
        "generate", help="write a synthetic dataset to JSON"
    )
    generate.add_argument("dataset", choices=["tpch", "facebook"])
    generate.add_argument("--scale", type=float, default=0.001)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)
    generate.set_defaults(handler=_cmd_generate)

    lint = subparsers.add_parser(
        "lint", help="run the project's static-analysis rules"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="report format (default: %(default)s)",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="baseline JSON file; findings recorded there do not fail the run",
    )
    lint.add_argument(
        "--update-baseline", action="store_true", dest="update_baseline",
        help="rewrite --baseline from the current findings (stale entries age out)",
    )
    lint.add_argument(
        "--rules", nargs="*", default=None,
        help="restrict to these rule ids (e.g. --rules R001 R006)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", dest="list_rules",
        help="print the rule catalog and exit",
    )
    lint.set_defaults(handler=_cmd_lint)

    serve_cmd = subparsers.add_parser(
        "serve",
        help="boot the snapshot-epoch session server over a prepared query",
    )
    _add_data_arguments(serve_cmd)
    serve_cmd.add_argument(
        "--host", default="127.0.0.1",
        help="listen address (default: %(default)s)",
    )
    serve_cmd.add_argument(
        "--port", type=int, default=0,
        help="listen port; 0 (default) binds an ephemeral port, echoed "
             "on stdout once ready",
    )
    serve_cmd.add_argument(
        "--default-epsilon", type=float, default=None, dest="default_epsilon",
        help="open-door tenant mode: auto-register unknown tenants with "
             "this total privacy budget (default: strict, pre-registered "
             "tenants only)",
    )
    serve_cmd.add_argument(
        "--tenant", action="append",
        help="pre-register a tenant budget as NAME=EPSILON, repeatable",
    )
    serve_cmd.add_argument(
        "--max-batch", type=int, default=4096, dest="max_batch",
        help="probe-coalescing cap per vectorized pass (default: %(default)s)",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    client_cmd = subparsers.add_parser(
        "client", help="issue one request against a running repro serve"
    )
    client_cmd.add_argument(
        "op",
        choices=[
            "count", "probe", "sensitivity", "top_k", "explain",
            "release", "apply", "stats", "epoch", "shutdown",
        ],
    )
    client_cmd.add_argument("--host", default="127.0.0.1")
    client_cmd.add_argument("--port", type=int, required=True)
    client_cmd.add_argument(
        "--params", default="{}",
        help='JSON object of op parameters, e.g. '
             '\'{"relation": "R", "rows": [[1, 2]]}\'',
    )
    client_cmd.add_argument(
        "--tenant", default=None, help="tenant id (release requests)"
    )
    client_cmd.add_argument("--timeout", type=float, default=60.0)
    client_cmd.set_defaults(handler=_cmd_client)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
