"""Unit tests for the sharded execution layer.

Covers the partitioning invariants (disjoint, exact, co-partitioned),
the shared-memory export/import round trips in both directions, the
vocabulary discipline (picklable replicas, frozen worker encode, the
reset-under-workers guard), the ShardMap identity cache, the
``workers=1`` identity guarantee, and the `_match_pairs` sort cache.
"""

import gc
import os
import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.engine import (
    ColumnarRelation,
    ParallelContext,
    Relation,
    ShardMap,
    ShardedRelation,
    WorkerPool,
    group_by,
    join,
    semijoin,
    symmetric_difference_size,
    union_all,
)
from repro.engine import columnar as columnar_mod
from repro.engine.columnar import current_vocabulary, reset_vocabulary
from repro.engine.parallel import _FrozenVocabulary
from repro.engine.sharding import (
    decode_relation,
    encode_relation,
    encode_result,
    export_columnar,
    import_result,
    partition_by_attribute,
    partition_by_blocks,
)
from repro.exceptions import InternalError, SessionError

R_ROWS = [(i % 7, i % 5, i) for i in range(200)]


def _vocab_for(generation):
    return current_vocabulary()


def _reassemble(shards):
    counts = {}
    for shard in shards:
        for row, count in shard.items():
            counts[row] = counts.get(row, 0) + count
    return counts


class TestPartitioning:
    @pytest.mark.parametrize("backend_cls", [Relation, ColumnarRelation])
    def test_partition_is_exact_and_disjoint(self, backend_cls):
        relation = backend_cls(["A", "B", "C"], R_ROWS)
        shards = partition_by_attribute(relation, "A", 3)
        assert len(shards) == 3
        assert _reassemble(shards) == dict(relation.items())
        seen = set()
        for shard in shards:
            rows = set(dict(shard.items()))
            assert not rows & seen
            seen |= rows

    def test_copartitioning_preserves_joins(self):
        left = ColumnarRelation(["A", "B"], [(i % 5, i) for i in range(50)])
        right = ColumnarRelation(["A", "C"], [(i % 5, -i) for i in range(50)])
        serial = join(left, right)
        left_shards = partition_by_attribute(left, "A", 4)
        right_shards = partition_by_attribute(right, "A", 4)
        sharded = union_all(
            [join(a, b) for a, b in zip(left_shards, right_shards)]
        )
        assert symmetric_difference_size(serial, sharded) == 0

    @pytest.mark.parametrize("backend_cls", [Relation, ColumnarRelation])
    def test_blocks_cover_exactly(self, backend_cls):
        relation = backend_cls(["A", "B", "C"], R_ROWS)
        shards = partition_by_blocks(relation, 4)
        assert _reassemble(shards) == dict(relation.items())

    def test_empty_relation_partitions(self):
        relation = ColumnarRelation(["A", "B"], [])
        for shard in partition_by_attribute(relation, "A", 2):
            assert shard.is_empty()


class TestSharedMemoryRoundTrip:
    def test_export_decode_roundtrip(self):
        relation = ColumnarRelation(["A", "B", "C"], R_ROWS)
        payload, block = export_columnar(relation)
        assert payload[0] == "shm"
        try:
            decoded, segment = decode_relation(payload, _vocab_for)
            assert symmetric_difference_size(relation, decoded) == 0
            del decoded
            segment.close()
        finally:
            block.close()

    def test_empty_export_is_inline(self):
        relation = ColumnarRelation(["A"], [])
        payload, block = export_columnar(relation)
        assert payload[0] == "col" and block is None

    def test_shard_payload_gathers_worker_side(self):
        relation = ColumnarRelation(["A", "B", "C"], R_ROWS)
        sharded = ShardedRelation(relation, "A", 3, share=True)
        try:
            shards = []
            for payload in sharded.payloads:
                assert payload[0] == "shard"
                shard, segment = decode_relation(payload, _vocab_for)
                shards.append(dict(shard.items()))
                del shard
                if segment is not None:
                    segment.close()
            merged = {}
            for counts in shards:
                for row, count in counts.items():
                    assert row not in merged
                    merged[row] = count
            assert merged == dict(relation.items())
        finally:
            sharded.close()

    def test_result_roundtrip_inline_and_shm(self):
        small = ColumnarRelation(["A", "B"], [(1, 2), (3, 4)])
        assert encode_result(small)[0] == "col"
        assert symmetric_difference_size(
            import_result(encode_result(small), small._vocab), small
        ) == 0
        big = ColumnarRelation(
            ["A"], {(i,): 1 for i in range(70_000)}
        )
        payload = encode_result(big)
        assert payload[0] == "shm"
        imported = import_result(payload, big._vocab)
        assert symmetric_difference_size(imported, big) == 0

    def test_python_backend_stays_inline(self):
        relation = Relation(["A", "B"], [(1, 2), (1, 2)])
        payload = encode_relation(relation)
        assert payload[0] == "py"
        decoded, segment = decode_relation(payload, _vocab_for)
        assert segment is None
        assert dict(decoded.items()) == dict(relation.items())


class TestVocabularyDiscipline:
    def test_vocabulary_pickle_roundtrip(self):
        relation = ColumnarRelation(["A"], [("x",), ("y",)])
        vocab = relation._vocab
        clone = pickle.loads(pickle.dumps(vocab))
        assert clone.values == vocab.values
        assert clone.generation == vocab.generation
        assert clone.code_of == vocab.code_of

    def test_frozen_vocabulary_refuses_encode(self):
        frozen = _FrozenVocabulary(values=["a", "b"], generation=0)
        assert frozen.lookup("a") == 0
        with pytest.raises(InternalError, match="coordinator"):
            frozen.encode("new-value")

    def test_reset_vocabulary_under_workers_raises(self):
        """reset_vocabulary() while a sharded context holds exported codes
        is a programming error with a clear message — codes already
        shipped to workers would decode against the wrong dictionary."""
        with ParallelContext(2, min_shard_rows=0) as context:
            left = ColumnarRelation(["A", "B"], [(i % 3, i) for i in range(30)])
            right = ColumnarRelation(["A", "C"], [(i % 3, -i) for i in range(30)])
            out = context.join(left, right)
            assert symmetric_difference_size(out, join(left, right)) == 0
            with pytest.raises(InternalError, match="reset_vocabulary"):
                reset_vocabulary()
        # Once the context is closed the reset goes through again.
        reset_vocabulary()

    def test_stale_vocabulary_operand_rejected(self):
        relation = ColumnarRelation(["A", "B"], [(i % 3, i) for i in range(30)])
        reset_vocabulary()
        with ParallelContext(2, min_shard_rows=0) as context:
            with pytest.raises(InternalError, match="retired"):
                context.join(relation, relation)


class TestShardMap:
    def test_identity_cache_hits_and_invalidation(self):
        relation = ColumnarRelation(["A", "B"], [(i % 3, i) for i in range(40)])
        cache = ShardMap()
        try:
            first = cache.get("bot:1", relation, "A", 2, share=True)
            assert cache.get("bot:1", relation, "A", 2, share=True) is first
            # Same relation under another name reuses the same entry.
            assert cache.get("node:7", relation, "A", 2, share=True) is first
            assert len(cache) == 1
            replacement = ColumnarRelation(["A", "B"], [(0, 99)])
            rebuilt = cache.get("bot:1", replacement, "A", 2, share=True)
            assert rebuilt is not first
            cache.invalidate(["bot:1", "node:7"])
            assert len(cache) == 0
        finally:
            cache.close()

    def test_shared_export_across_attributes(self):
        """One whole-relation export serves partitionings on different
        attributes (the export is attribute-independent)."""
        relation = ColumnarRelation(["A", "B"], [(i % 3, i % 4) for i in range(40)])
        cache = ShardMap()
        try:
            on_a = cache.get("x", relation, "A", 2, share=True)
            on_b = cache.get("x", relation, "B", 2, share=True)
            assert on_a is not on_b
            # Neither partitioning owns a block; the map holds the one base.
            assert on_a.blocks == [] and on_b.blocks == []
            assert on_a.payloads[0][1] is on_b.payloads[0][1]
        finally:
            cache.close()

    def test_invalidate_unknown_name_is_noop(self):
        cache = ShardMap()
        cache.invalidate(["never-registered"])
        cache.close()


class TestParallelContext:
    def test_workers_1_is_serial_identity(self):
        context = ParallelContext(1)
        assert not context.active
        left = ColumnarRelation(["A", "B"], [(1, 2), (1, 3)])
        right = ColumnarRelation(["A", "C"], [(1, 9)])
        assert symmetric_difference_size(
            context.join(left, right), join(left, right)
        ) == 0
        context.close()

    def test_invalid_worker_counts_raise(self):
        with pytest.raises(SessionError):
            ParallelContext(0)
        with pytest.raises(SessionError):
            WorkerPool(0)

    def test_sharded_operators_match_serial(self):
        left = ColumnarRelation(["A", "B"], [(i % 5, i % 7) for i in range(300)])
        right = ColumnarRelation(["A", "C"], [(i % 5, i % 3) for i in range(300)])
        with ParallelContext(2, min_shard_rows=0) as context:
            assert symmetric_difference_size(
                context.join(left, right), join(left, right)
            ) == 0
            assert symmetric_difference_size(
                context.join(left, right, group=["B"]),
                group_by(join(left, right), ["B"]),
            ) == 0
            assert symmetric_difference_size(
                context.semijoin(left, right), semijoin(left, right)
            ) == 0
            assert symmetric_difference_size(
                context.group_by(left, ["A"]), group_by(left, ["A"])
            ) == 0

    def test_overflow_propagates_from_workers(self):
        from repro.exceptions import MultiplicityOverflowError

        huge = 2**40
        left = ColumnarRelation(["A", "B"], {(1, i): huge for i in range(4)})
        right = ColumnarRelation(["A", "C"], {(1, i): huge for i in range(4)})
        with ParallelContext(2, min_shard_rows=0) as context:
            with pytest.raises(MultiplicityOverflowError):
                context.join(left, right)


class TestSortCache:
    def test_small_and_view_arrays_bypass_cache(self):
        columnar_mod._SORT_CACHE.clear()
        small = np.arange(10, dtype=np.int64)[::-1].copy()
        order, sorted_key = columnar_mod._sorted_key(small)
        assert list(sorted_key) == sorted(small.tolist())
        assert len(columnar_mod._SORT_CACHE) == 0
        big = np.random.default_rng(0).integers(
            0, 100, columnar_mod._SORT_CACHE_MIN_SIZE + 1
        )
        view = big[1:]
        columnar_mod._sorted_key(view)
        assert len(columnar_mod._SORT_CACHE) == 0

    def test_cache_hit_returns_same_arrays(self):
        columnar_mod._SORT_CACHE.clear()
        key = np.random.default_rng(1).integers(
            0, 1000, columnar_mod._SORT_CACHE_MIN_SIZE + 5
        )
        order1, sorted1 = columnar_mod._sorted_key(key)
        order2, sorted2 = columnar_mod._sorted_key(key)
        assert order1 is order2 and sorted1 is sorted2
        assert len(columnar_mod._SORT_CACHE) == 1

    def test_cache_evicts_by_capacity(self):
        columnar_mod._SORT_CACHE.clear()
        keys = [
            np.random.default_rng(i).integers(
                0, 1000, columnar_mod._SORT_CACHE_MIN_SIZE
            )
            for i in range(columnar_mod._SORT_CACHE_MAX_ENTRIES + 4)
        ]
        for key in keys:
            columnar_mod._sorted_key(key)
        assert (
            len(columnar_mod._SORT_CACHE)
            <= columnar_mod._SORT_CACHE_MAX_ENTRIES
        )

    def test_join_correct_with_cache_across_calls(self):
        rows = [(i % 97, i) for i in range(3000)]
        left = ColumnarRelation(["A", "B"], rows)
        right = ColumnarRelation(["A", "C"], [(i % 97, -i) for i in range(3000)])
        once = join(left, right)
        again = join(left, right)
        assert symmetric_difference_size(once, again) == 0


class TestApplyDelta:
    """Commit-path delta patching of cached partitionings."""

    @staticmethod
    def _delta_patched_map(cls):
        from repro.engine import difference

        base = cls(["A", "B"], {(i % 7, i): 1 + i % 3 for i in range(50)})
        cache = ShardMap()
        cache.get("bot:n1", base, "A", 4, share=False)
        delta_plus = cls(["A", "B"], {(3, 100): 2, (5, 101): 1})
        delta_minus = cls(["A", "B"], {(0, 0): 1})
        new_source = difference(union_all([base, delta_plus]), delta_minus)
        folds = [(delta_minus, False), (delta_plus, True)]
        return cache, base, new_source, folds

    @pytest.mark.parametrize("cls", [Relation, ColumnarRelation])
    def test_patched_shards_union_to_updated_bag(self, cls):
        cache, _, new_source, folds = self._delta_patched_map(cls)
        assert cache.apply_delta("bot:n1", new_source, folds)
        entry = cache.get("bot:n1", new_source, "A", 4, share=False)
        # get() found the patched entry current — same object, no rebuild.
        assert entry.source is new_source
        total = 0
        for payload in entry.payloads:
            shard, _ = decode_relation(
                payload, lambda g: getattr(new_source, "_vocab", None)
            )
            total += shard.total_count()
            for row, cnt in shard.items():
                assert new_source.multiplicity(row) == cnt
        assert total == new_source.total_count()

    @pytest.mark.parametrize("cls", [Relation, ColumnarRelation])
    def test_shared_entry_not_double_patched(self, cls):
        cache, base, new_source, folds = self._delta_patched_map(cls)
        # The same relation object registered under a second logical name
        # (a single-atom node): both names patch once between them.
        cache.get("atom:R", base, "A", 4, share=False)
        assert cache.apply_delta("bot:n1", new_source, folds)
        assert cache.apply_delta("atom:R", new_source, folds)
        entry = cache.get("atom:R", new_source, "A", 4, share=False)
        assert entry.source is new_source
        total = sum(
            decode_relation(
                p, lambda g: getattr(new_source, "_vocab", None)
            )[0].total_count()
            for p in entry.payloads
        )
        assert total == new_source.total_count()

    def test_shared_memory_export_falls_back_to_invalidate(self):
        base = ColumnarRelation(["A", "B"], {(i % 5, i): 1 for i in range(30)})
        cache = ShardMap()
        cache.get("node:x", base, "A", 2, share=True)
        delta = ColumnarRelation(["A", "B"], {(1, 99): 1})
        new_source = union_all([base, delta])
        assert cache.apply_delta("node:x", new_source, [(delta, True)]) is False
        assert len(cache) == 0  # invalidated, rebuilt lazily on next get

    def test_unregistered_name_is_a_noop(self):
        cache = ShardMap()
        delta = Relation(["A"], {(1,): 1})
        assert cache.apply_delta("bot:ghost", delta, [(delta, True)])
        assert len(cache) == 0

    def test_count_mismatch_falls_back(self):
        # A new_source that the folds cannot explain (stale entry guard).
        base = Relation(["A", "B"], {(1, 2): 3})
        cache = ShardMap()
        cache.get("bot:n1", base, "A", 2, share=False)
        delta = Relation(["A", "B"], {(1, 3): 1})
        wrong_source = Relation(["A", "B"], {(1, 2): 3, (1, 3): 5})
        assert cache.apply_delta("bot:n1", wrong_source, [(delta, True)]) is False
        assert len(cache) == 0


def _segment_exists(name: str) -> bool:
    try:
        shared_memory.SharedMemory(name=name).close()
    except FileNotFoundError:
        return False
    return True


def _base_segment_names(entry) -> list:
    return [
        payload[1][1]
        for payload in entry.payloads
        if payload[0] == "shard" and payload[1][0] == "shm"
    ]


def _exit_worker(row) -> bool:
    """A predicate that kills the executing worker (death mid-fold)."""
    os._exit(1)


class TestWorkerDeathCleanup:
    """A crashed worker mid-fold must not strand shared-memory exports."""

    def test_shard_map_bases_unlink_without_close(self):
        """The ShardMap finalizer sweep releases base exports even when a
        worker death raised through the session before close() ran."""
        with ParallelContext(2, min_shard_rows=0) as context:
            relation = ColumnarRelation(["A", "B"], [(i % 3, i) for i in range(60)])
            other = ColumnarRelation(["A", "C"], [(i % 3, -i) for i in range(60)])
            cache = ShardMap()
            entry = cache.get("bot:x", relation, "A", 2, share=True)
            names = _base_segment_names(entry)
            assert names and all(_segment_exists(n) for n in names)
            context.join(relation, other)  # spawn the workers
            # A worker dying *while folding* surfaces as InternalError,
            # tearing down the session without an orderly ShardMap.close().
            with pytest.raises(InternalError, match="died"):
                context._pool.run(
                    [
                        (
                            "filter",
                            {
                                "relation": ("py", ("A",), {(1,): 1}),
                                "predicate": _exit_worker,
                            },
                        )
                        for _ in range(2)
                    ]
                )
            del entry
            del cache  # abandoned mid-error: the weakref sweep must fire
            gc.collect()
            assert not any(_segment_exists(n) for n in names)

    def test_shard_map_close_remains_idempotent(self):
        relation = ColumnarRelation(["A", "B"], [(i % 3, i) for i in range(30)])
        cache = ShardMap()
        entry = cache.get("x", relation, "A", 2, share=True)
        names = _base_segment_names(entry)
        cache.close()
        cache.close()
        assert not any(_segment_exists(n) for n in names)


class TestWorkerPoolLifecycle:
    def test_pool_restarts_after_crashed_worker(self):
        """A killed worker bumps the epoch on the next dispatch and the
        fresh set answers normally."""
        with ParallelContext(2, min_shard_rows=0) as context:
            left = ColumnarRelation(["A", "B"], [(i % 3, i) for i in range(30)])
            right = ColumnarRelation(["A", "C"], [(i % 3, -i) for i in range(30)])
            serial = join(left, right)
            assert symmetric_difference_size(context.join(left, right), serial) == 0
            pool = context._pool
            first_epoch = pool.epoch
            os.kill(pool._handles[1].process.pid, 9)
            pool._handles[1].process.join(timeout=5)
            # The next operation restarts the whole set and succeeds.
            assert symmetric_difference_size(context.join(left, right), serial) == 0
            assert pool.epoch == first_epoch + 1
            assert all(h.process.is_alive() for h in pool._handles)

    def test_more_workers_than_cores(self):
        """Oversubscription is legal: correctness never depends on the
        worker count matching the host."""
        workers = (os.cpu_count() or 1) + 2
        with ParallelContext(workers, min_shard_rows=0) as context:
            left = ColumnarRelation(["A", "B"], [(i % 7, i) for i in range(100)])
            right = ColumnarRelation(["A", "C"], [(i % 7, -i) for i in range(100)])
            assert symmetric_difference_size(
                context.join(left, right), join(left, right)
            ) == 0

    def test_double_close_is_idempotent(self):
        context = ParallelContext(2, min_shard_rows=0)
        left = ColumnarRelation(["A", "B"], [(1, 2)])
        right = ColumnarRelation(["A", "C"], [(1, 3)])
        context.join(left, right)  # spawn the workers
        pool = context._pool
        context.close()
        context.close()
        pool.close()
        pool.close()
        assert not pool._handles
        with pytest.raises(SessionError):
            pool.run([("group_by", {"relation": ("py", ("A",), {}), "attrs": ()})])
