"""Columnar bag-semantics relations backed by dictionary-encoded numpy arrays.

A :class:`ColumnarRelation` stores the same logical object as
:class:`~repro.engine.relation.Relation` — a finite bag of tuples over a
fixed :class:`~repro.engine.schema.Schema` — but physically as

* one ``int64`` *code* array per attribute (dictionary encoding: codes
  index a process-wide value vocabulary, so equal values always share a
  code and joins compare plain integers), and
* one ``int64`` *multiplicity* array, positionally aligned with the code
  arrays (the paper's appended ``cnt`` column).

Rows are kept distinct, mirroring the dict representation of the Python
backend, so the two backends are observationally identical: every operator
in :mod:`repro.engine.operators` dispatches on the relation type and the
columnar implementations below (`join`, `group_by`, `semijoin`,
`cross_product`, `union_all`, `difference`) produce bags equal to the
per-tuple versions, only via vectorized kernels:

* joins match packed key codes with ``argsort`` + ``searchsorted`` and
  expand match ranges without a Python-level loop;
* group-by deduplicates with ``np.unique`` on the stacked key columns and
  sums multiplicities with ``np.add.at``;
* semijoin is an ``np.isin`` mask; union/difference are concatenate +
  regroup.

Multiplicities use ``int64``: this engine targets counting workloads whose
counts fit machine integers (the Python backend's arbitrary-precision ints
remain available for adversarial inputs).
"""

from __future__ import annotations

import itertools
import weakref
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.engine.relation import same_bag_counts
from repro.engine.schema import Schema
from repro.exceptions import InternalError, MultiplicityOverflowError, SchemaError

Row = Tuple[object, ...]

_EMPTY_INT64 = np.empty(0, dtype=np.int64)
_INT64_MAX = 2**63 - 1


#: Monotonic ids for vocabularies created in this process.  A vocabulary's
#: ``generation`` travels with it through pickling, so shard workers can
#: tell codes from different coordinator vocabularies apart.
_VOCAB_GENERATIONS = itertools.count()


class _Vocabulary:
    """Process-wide value dictionary: every attribute value maps to one code.

    Sharing a single vocabulary across all relations means codes are
    directly comparable between any two columns — joins never reconcile
    per-column dictionaries.  Values that compare equal (``1``, ``1.0``,
    ``True``) share a code, matching Python-dict key semantics of the
    Python backend.

    A vocabulary's state is exactly its ordered ``values`` list (``code_of``
    is the derived inverse) plus a process-unique ``generation`` id, and it
    pickles as that pair — sharded worker processes rebuild an equivalent
    read-only dictionary from it (:mod:`repro.engine.parallel`).
    """

    __slots__ = ("code_of", "values", "generation", "__weakref__")

    def __init__(
        self,
        values: Optional[Sequence[object]] = None,
        generation: Optional[int] = None,
    ) -> None:
        self.values: List[object] = list(values) if values is not None else []
        self.code_of: Dict[object, int] = {
            value: code for code, value in enumerate(self.values)
        }
        self.generation: int = (
            next(_VOCAB_GENERATIONS) if generation is None else generation
        )

    def encode(self, value: object) -> int:
        code = self.code_of.get(value)
        if code is None:
            code = len(self.values)
            self.code_of[value] = code
            self.values.append(value)
        return code

    def lookup(self, value: object) -> Optional[int]:
        """Code of ``value`` or ``None`` when never seen (multiplicity 0)."""
        return self.code_of.get(value)

    def __reduce__(self):
        return (_restore_vocabulary, (self.values, self.generation))


def _restore_vocabulary(values: Sequence[object], generation: int) -> "_Vocabulary":
    """Unpickle hook: rebuild a vocabulary from its explicit state."""
    return _Vocabulary(values=values, generation=generation)


_VOCAB = _Vocabulary()

#: Hooks run *before* :func:`reset_vocabulary` swaps the dictionary.  A hook
#: may raise to veto the reset — the sharded execution layer registers one
#: so a reset cannot silently invalidate codes already exported to worker
#: processes (see :mod:`repro.engine.parallel`).
_RESET_GUARDS: List[Callable[[], None]] = []


def register_reset_guard(guard: Callable[[], None]) -> None:
    """Register a veto hook consulted by :func:`reset_vocabulary`."""
    _RESET_GUARDS.append(guard)


def current_vocabulary() -> _Vocabulary:
    """The live process vocabulary new relations encode under."""
    return _VOCAB


def reset_vocabulary() -> None:
    """Swap in a fresh process vocabulary.

    The shared vocabulary only grows (every distinct value ever encoded is
    retained), so long-lived processes that churn through many transient
    relations can call this to reclaim memory and keep code ranges small
    (large codes push joins off the fast mixed-radix packing path).
    Existing relations stay valid: each keeps a reference to the
    vocabulary it was encoded under, and operators transparently re-encode
    when operands disagree.

    Raises
    ------
    InternalError
        When a registered guard vetoes the reset — e.g. a sharded
        :class:`~repro.engine.parallel.ParallelContext` has exported code
        arrays to worker processes, which would silently decode stale
        codes under a fresh dictionary.  Guards run before the swap, so a
        vetoed reset leaves the vocabulary untouched.
    """
    for guard in _RESET_GUARDS:
        guard()
    global _VOCAB
    _VOCAB = _Vocabulary()


def _max_mult(relation: "ColumnarRelation") -> int:
    return int(relation._mult.max()) if relation._mult.size else 0


def _pair_products(left_mult: np.ndarray, right_mult: np.ndarray) -> np.ndarray:
    """Element-wise multiplicity products, overflow-checked.

    The cheap ``max * max`` bound covers the common case without touching
    Python ints; when it trips, the products are recomputed exactly and
    only a genuinely overflowing *matched pair* raises
    :class:`MultiplicityOverflowError` — large counts whose rows never
    combine are fine."""
    if left_mult.size == 0:
        return left_mult
    if int(left_mult.max()) * int(right_mult.max()) <= _INT64_MAX:
        return left_mult * right_mult
    exact = left_mult.astype(object) * right_mult.astype(object)
    if max(exact.tolist()) > _INT64_MAX:
        raise MultiplicityOverflowError(
            "join would overflow int64 multiplicities on the columnar "
            "backend; use the python backend for counts this large"
        )
    return exact.astype(np.int64)


def _checked_scale(mult: np.ndarray, factor: int) -> np.ndarray:
    """Multiplicities times a positive scalar, overflow-checked.

    ``max * factor`` bounds every product, so unlike the pairwise helpers
    no exact recomputation pass is needed — the bound tripping means some
    actual slot overflows."""
    if mult.size and int(mult.max()) * factor > _INT64_MAX:
        raise MultiplicityOverflowError(
            "scale_counts would overflow int64 multiplicities on the "
            "columnar backend; use the python backend"
        )
    return mult * np.int64(factor)


def _group_sums(inverse: np.ndarray, mult: np.ndarray, n_groups: int) -> np.ndarray:
    """Per-group multiplicity sums, overflow-checked.

    ``max * count`` cheaply bounds every possible group sum; when that
    bound trips, the sums are recomputed exactly in Python ints — so
    huge-but-fitting inputs still pass and only true int64 overflow raises
    :class:`MultiplicityOverflowError`."""
    if int(mult.max()) * mult.size <= _INT64_MAX:
        sums = np.zeros(n_groups, dtype=np.int64)
        np.add.at(sums, inverse, mult)
        return sums
    exact = np.zeros(n_groups, dtype=object)
    np.add.at(exact, inverse, mult.astype(object))
    if exact.size and max(exact.tolist()) > _INT64_MAX:
        raise MultiplicityOverflowError(
            "aggregation would overflow int64 multiplicities on the "
            "columnar backend; use the python backend for counts this large"
        )
    return exact.astype(np.int64)


def _predicate_mask(relation: "ColumnarRelation", predicate) -> Optional[np.ndarray]:
    """Row mask for a structural DSL predicate, or ``None`` when unsupported.

    Predicates from :mod:`repro.query.predicates` are trees of
    comparisons/memberships over single attributes, so they evaluate once
    per *distinct dictionary code* instead of once per row — the classic
    dictionary-encoding selection win.  Anything else (plain callables,
    predicates over attributes this relation lacks) returns ``None`` and
    the caller falls back to the per-row path, keeping the two routes
    observationally identical.
    """
    from repro.query import predicates as _dsl  # lazy: engine must not import query at module load

    if isinstance(predicate, _dsl.TruePredicate):
        return np.ones(relation._mult.size, dtype=bool)
    if isinstance(predicate, _dsl.Not):
        inner = _predicate_mask(relation, predicate.inner)
        return None if inner is None else ~inner
    if isinstance(predicate, (_dsl.And, _dsl.Or)):
        left = _predicate_mask(relation, predicate.left)
        if left is None:
            return None
        right = _predicate_mask(relation, predicate.right)
        if right is None:
            return None
        return (left & right) if isinstance(predicate, _dsl.And) else (left | right)
    if isinstance(predicate, (_dsl.Compare, _dsl.Member)):
        attribute = predicate.attribute
        if attribute not in relation._schema:
            return None  # per-row path raises KeyError, as callers expect
        column = relation._codes[relation._schema.index_of(attribute)]
        values = relation._vocab.values
        passing = np.asarray(
            [
                code
                for code in np.unique(column).tolist()
                if predicate({attribute: values[code]})
            ],
            dtype=np.int64,
        )
        return np.isin(column, passing)
    return None


def intersect_column_values(
    relations: Sequence["ColumnarRelation"], attribute: str
) -> Optional[frozenset]:
    """Intersection of an attribute's active domains, at the code level.

    The shared process vocabulary gives equal values equal codes, so the
    intersection is ``np.intersect1d`` over per-relation unique code
    arrays, decoding only the final survivors.  Returns ``None`` when the
    relations span different vocabulary generations (caller falls back to
    the value-level path).
    """
    vocab = relations[0]._vocab
    if any(rel._vocab is not vocab for rel in relations):
        return None
    codes: Optional[np.ndarray] = None
    for rel in relations:
        column = rel._codes[rel._schema.index_of(attribute)]
        uniq = np.unique(column)
        codes = uniq if codes is None else np.intersect1d(
            codes, uniq, assume_unique=True
        )
        if codes.size == 0:
            break
    if codes is None:
        raise InternalError("intersect_column_values called with no relations")
    values = vocab.values
    return frozenset(values[c] for c in codes.tolist())


# ----------------------------------------------------------------- kernels
def _pack_single(cols: Sequence[np.ndarray]) -> Optional[np.ndarray]:
    """Mixed-radix pack of several code columns into one ``int64`` key.

    Preserves lexicographic row order (first column most significant).
    Returns ``None`` when the combined range would overflow 63 bits.
    """
    radices = []
    for col in cols:
        top = int(col.max()) if col.size else 0
        radices.append(top + 1)
    span = 1
    for radix in radices:
        span *= radix
    if span >= 2**62:
        return None
    packed = np.zeros(cols[0].shape, dtype=np.int64)
    for col, radix in zip(cols, radices):
        packed = packed * radix + col
    return packed


def _dedupe_sum(
    codes: Sequence[np.ndarray], mult: np.ndarray
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Group identical code rows, summing multiplicities; drop zero groups."""
    if mult.size == 0:
        return [c[:0] for c in codes], _EMPTY_INT64
    if not codes:
        total = _group_sums(np.zeros(mult.size, dtype=np.int64), mult, 1)[0]
        if total == 0:
            return [], _EMPTY_INT64
        return [], np.array([total], dtype=np.int64)
    if len(codes) == 1:
        uniq, inverse = np.unique(codes[0], return_inverse=True)
        out = [uniq]
    else:
        packed = _pack_single(codes)
        if packed is not None:
            _, first_index, inverse = np.unique(
                packed, return_index=True, return_inverse=True
            )
            out = [c[first_index] for c in codes]
        else:
            stacked = np.column_stack(codes)
            uniq_rows, inverse = np.unique(stacked, axis=0, return_inverse=True)
            out = [
                np.ascontiguousarray(uniq_rows[:, j])
                for j in range(uniq_rows.shape[1])
            ]
    inverse = np.ravel(inverse)
    sums = _group_sums(inverse, mult, out[0].shape[0])
    keep = sums != 0
    if not keep.all():
        out = [c[keep] for c in out]
        sums = sums[keep]
    return out, sums


def _pack_keys(
    cols_a: Sequence[np.ndarray], cols_b: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Single ``int64`` key per row for two aligned column sets.

    Equal keys ⇔ equal code rows.  Multi-column keys use mixed-radix
    packing when the combined range fits 63 bits, otherwise a joint
    ``np.unique`` renumbering (exact, never overflows).
    """
    if len(cols_a) == 1:
        return cols_a[0], cols_b[0]
    radices = []
    for ca, cb in zip(cols_a, cols_b):
        top = 0
        if ca.size:
            top = max(top, int(ca.max()))
        if cb.size:
            top = max(top, int(cb.max()))
        radices.append(top + 1)
    span = 1
    for radix in radices:
        span *= radix
    if span < 2**62:
        a = np.zeros(cols_a[0].shape, dtype=np.int64)
        b = np.zeros(cols_b[0].shape, dtype=np.int64)
        for ca, cb, radix in zip(cols_a, cols_b, radices):
            a = a * radix + ca
            b = b * radix + cb
        return a, b
    stacked = np.concatenate(
        [np.column_stack(cols_a), np.column_stack(cols_b)], axis=0
    )
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = np.ravel(inverse).astype(np.int64)
    split = cols_a[0].shape[0]
    return inverse[:split], inverse[split:]


#: Sorted-key memo for :func:`_match_pairs`, keyed by key-array identity.
#: Code columns are immutable once built (bag updates copy), so a key
#: array's sort permutation can be reused every time the same keyed side
#: is probed again — repeated joins against one cached relation (benchmark
#: loops, maintained-state folds re-probing botjoins) skip the argsort.
#: Entries hold a weakref so a dead array's slot is reclaimed; the id()
#: key is validated against the weakref before use in case ids get reused.
_SORT_CACHE: "OrderedDict[int, Tuple[weakref.ref, np.ndarray, np.ndarray]]" = (
    OrderedDict()
)
_SORT_CACHE_MIN_SIZE = 1024
_SORT_CACHE_MAX_ENTRIES = 32


def _sorted_key(key: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(argsort(key), key[argsort(key)])``, memoized per array object.

    Only owning arrays at least :data:`_SORT_CACHE_MIN_SIZE` long are
    cached: small sorts are cheaper than the bookkeeping, and views
    (``key.base is not None`` — e.g. shared-memory shard columns whose
    buffer lifetime is managed elsewhere) are excluded so cache entries
    never pin or outlive foreign buffers.
    """
    if key.size < _SORT_CACHE_MIN_SIZE or key.base is not None:
        order = np.argsort(key, kind="stable")
        return order, key[order]
    slot = id(key)
    entry = _SORT_CACHE.get(slot)
    if entry is not None:
        ref, order, sorted_key = entry
        if ref() is key:
            _SORT_CACHE.move_to_end(slot)
            return order, sorted_key
        del _SORT_CACHE[slot]
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    try:
        ref = weakref.ref(key)
    except TypeError:
        return order, sorted_key
    _SORT_CACHE[slot] = (ref, order, sorted_key)
    while len(_SORT_CACHE) > _SORT_CACHE_MAX_ENTRIES:
        _SORT_CACHE.popitem(last=False)
    return order, sorted_key


def _match_pairs(lkey: np.ndarray, rkey: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Index pairs ``(lidx, ridx)`` with ``lkey[lidx] == rkey[ridx]``.

    The vectorized hash-join core: sort the *smaller* key array once,
    locate each probe key's match range with two ``searchsorted`` calls,
    then expand the ranges into explicit pairs with ``repeat``/``cumsum``
    arithmetic.  Sorting the smaller side matters for the maintained
    join-state folds, whose joins are one tiny delta against one large
    cached relation — argsorting the large side would dominate the probe.
    The argsort itself is memoized per key array (:func:`_sorted_key`), so
    repeatedly probing the same keyed side sorts once.
    """
    if lkey.size < rkey.size:
        ridx, lidx = _match_pairs(rkey, lkey)
        return lidx, ridx
    order, sorted_r = _sorted_key(rkey)
    start = np.searchsorted(sorted_r, lkey, side="left")
    stop = np.searchsorted(sorted_r, lkey, side="right")
    counts = stop - start
    total = int(counts.sum())
    lidx = np.repeat(np.arange(lkey.size), counts)
    offsets = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    ridx = order[np.repeat(start, counts) + within]
    return lidx, ridx


# ------------------------------------------------------------------ class
class ColumnarRelation:
    """A finite bag of tuples over a fixed schema, stored columnar.

    Drop-in duck-type for :class:`~repro.engine.relation.Relation`: the
    constructor, accessors, and bag-update helpers match signature for
    signature, so every layer above the engine runs unchanged on either
    backend.

    Examples
    --------
    >>> r = ColumnarRelation(["A", "B"], [("a1", "b1"), ("a1", "b1"), ("a2", "b1")])
    >>> r.total_count()
    3
    >>> r.multiplicity(("a1", "b1"))
    2
    """

    __slots__ = (
        "_schema", "_codes", "_mult", "_counts_cache", "_vocab",
        "_column_values_cache",
    )

    def __init__(
        self,
        schema: Union[Schema, Iterable[str]],
        rows: Union[Iterable[Row], Mapping[Row, int], None] = None,
    ):
        self._schema = schema if isinstance(schema, Schema) else Schema(schema)
        arity = self._schema.arity
        encode = _VOCAB.encode
        columns: List[List[int]] = [[] for _ in range(arity)]
        mults: List[int] = []
        if rows is None:
            rows = ()
        if isinstance(rows, Mapping):
            for row, cnt in rows.items():
                row = tuple(row)
                self._check_row(row)
                if cnt < 0:
                    raise SchemaError(f"negative multiplicity {cnt} for row {row!r}")
                if cnt:
                    for column, value in zip(columns, row):
                        column.append(encode(value))
                    mults.append(cnt)
        else:
            for row in rows:
                row = tuple(row)
                self._check_row(row)
                for column, value in zip(columns, row):
                    column.append(encode(value))
                mults.append(1)
        if mults and max(mults) > _INT64_MAX:
            raise MultiplicityOverflowError(
                "multiplicity exceeds int64 on the columnar backend; "
                "use the python backend for counts this large"
            )
        codes = [np.asarray(column, dtype=np.int64) for column in columns]
        mult = np.asarray(mults, dtype=np.int64)
        codes, mult = _dedupe_sum(codes, mult)
        self._codes = tuple(codes)
        self._mult = mult
        self._counts_cache: Optional[Dict[Row, int]] = None
        self._vocab = _VOCAB
        self._column_values_cache: Optional[Dict[str, frozenset]] = None

    def _check_row(self, row: Sequence[object]) -> None:
        if len(row) != self._schema.arity:
            raise SchemaError(
                f"row {tuple(row)!r} has arity {len(row)}, "
                f"schema {self._schema.attributes} expects {self._schema.arity}"
            )

    @classmethod
    def _from_parts(
        cls,
        schema: Schema,
        codes: Sequence[np.ndarray],
        mult: np.ndarray,
        deduped: bool = True,
        vocab: Optional[_Vocabulary] = None,
    ) -> "ColumnarRelation":
        """Fast constructor for already-encoded columns (internal).

        ``vocab`` is the vocabulary the codes were encoded under; defaults
        to the current process vocabulary."""
        if not deduped:
            codes, mult = _dedupe_sum(codes, mult)
        rel = cls.__new__(cls)
        rel._schema = schema
        rel._codes = tuple(codes)
        rel._mult = mult
        rel._counts_cache = None
        rel._vocab = vocab if vocab is not None else _VOCAB
        rel._column_values_cache = None
        return rel

    @classmethod
    def _from_counts(cls, schema: Schema, counts: Mapping[Row, int]) -> "ColumnarRelation":
        """Constructor from a tuple→multiplicity mapping (mirrors
        :meth:`Relation._from_counts`, used by backend-generic code)."""
        return cls(schema, counts)

    # ------------------------------------------------------------------ basics
    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attribute names, in positional order."""
        return self._schema.attributes

    @property
    def counts(self) -> Mapping[Row, int]:
        """Tuple→multiplicity view, decoded lazily and cached."""
        if self._counts_cache is None:
            values = self._vocab.values
            if not self._codes:
                self._counts_cache = (
                    {(): int(self._mult[0])} if self._mult.size else {}
                )
            else:
                decoded = [
                    [values[c] for c in column.tolist()] for column in self._codes
                ]
                self._counts_cache = {
                    row: int(cnt)
                    for row, cnt in zip(zip(*decoded), self._mult.tolist())
                }
        return self._counts_cache

    def distinct_count(self) -> int:
        """Number of distinct tuples."""
        return int(self._mult.size)

    def total_count(self) -> int:
        """Total multiplicity (bag cardinality) — the paper's ``|Q(D)|``."""
        return int(self._mult.sum()) if self._mult.size else 0

    def multiplicity(self, row: Sequence[object]) -> int:
        """Multiplicity of ``row`` (0 if absent)."""
        row = tuple(row)
        self._check_row(row)
        index = self._row_index(row)
        return int(self._mult[index]) if index is not None else 0

    def multiplicities(self, rows: Sequence[Sequence[object]]) -> list:
        """Bulk :meth:`multiplicity` lookup: one count per input row.

        One vectorized key probe for the whole batch instead of a
        per-row mask scan — batched update compaction asks for every
        mixed-sign tuple's pre-batch count at once."""
        rows = [tuple(row) for row in rows]
        for row in rows:
            self._check_row(row)
        out = [0] * len(rows)
        if not rows or self._mult.size == 0:
            return out
        if not self._codes:
            cnt = int(self._mult[0])
            return [cnt] * len(rows)
        lookup = self._vocab.lookup
        present: List[int] = []
        encoded: List[Tuple[int, ...]] = []
        for i, row in enumerate(rows):
            codes = tuple(lookup(value) for value in row)
            if None not in codes:
                present.append(i)
                encoded.append(codes)
        if not present:
            return out
        qarrays = [
            np.asarray([codes[j] for codes in encoded], dtype=np.int64)
            for j in range(self._schema.arity)
        ]
        lkey, rkey = _pack_keys(list(self._codes), qarrays)
        lidx, ridx = _match_pairs(lkey, rkey)
        for li, ri in zip(lidx.tolist(), ridx.tolist()):
            out[present[ri]] = int(self._mult[li])
        return out

    def is_empty(self) -> bool:
        """True iff the bag holds no tuples."""
        return self._mult.size == 0

    def __contains__(self, row: object) -> bool:
        if not isinstance(row, tuple) or len(row) != self._schema.arity:
            return False
        return self.multiplicity(row) > 0

    def __iter__(self) -> Iterator[Row]:
        """Iterate over *distinct* tuples."""
        return iter(self.counts)

    def __len__(self) -> int:
        """Number of distinct tuples (``distinct_count``)."""
        return int(self._mult.size)

    def items(self) -> Iterable[Tuple[Row, int]]:
        """Iterate over (tuple, multiplicity) pairs."""
        return self.counts.items()

    # ------------------------------------------------------- value extraction
    def column_values(self, attribute: str) -> frozenset:
        """The active domain of ``attribute`` in this relation (Sec. 3.1).

        Memoised per attribute (relations are logically immutable): the
        ``np.unique`` over a full code column is far more expensive than
        the lookups maintained sensitivity reads issue repeatedly."""
        if self._column_values_cache is None:
            self._column_values_cache = {}
        cached = self._column_values_cache.get(attribute)
        if cached is None:
            pos = self._schema.index_of(attribute)
            values = self._vocab.values
            cached = frozenset(
                values[c] for c in np.unique(self._codes[pos]).tolist()
            )
            self._column_values_cache[attribute] = cached
        return cached

    def max_frequency(self, attributes: Sequence[str]) -> int:
        """Largest bag-count of any single value combination of ``attributes``."""
        if self._mult.size == 0:
            return 0
        positions = self._schema.project_positions(attributes)
        if not positions:
            return self.total_count()
        _, sums = _dedupe_sum([self._codes[p] for p in positions], self._mult)
        return int(sums.max())

    def argmax_count(self) -> Tuple[Optional[Row], int]:
        """The (tuple, multiplicity) pair with the largest multiplicity.

        Ties break on the smallest tuple under Python ordering, matching
        the Python backend exactly; the count scan is vectorized.
        """
        if self._mult.size == 0:
            return None, 0
        best_cnt = int(self._mult.max())
        candidates = np.nonzero(self._mult == best_cnt)[0]
        values = self._vocab.values
        if candidates.size == 1 or not self._codes:
            i = int(candidates[0])
            return tuple(values[column[i]] for column in self._codes), best_cnt
        # Tie-break on the smallest decoded tuple.  When every candidate
        # column is numeric the lexicographic min vectorises with lexsort;
        # otherwise fall back to Python tuple ordering (identical result).
        decoded_columns = []
        numeric = True
        for column in self._codes:
            vals = [values[c] for c in column[candidates].tolist()]
            arr = np.asarray(vals)
            if arr.dtype.kind not in "biuf":
                numeric = False
                break
            decoded_columns.append(arr)
        if numeric:
            order = np.lexsort(tuple(reversed(decoded_columns)))
            i = int(candidates[order[0]])
            best_row = tuple(values[column[i]] for column in self._codes)
        else:
            best_row = min(
                tuple(values[column[i]] for column in self._codes)
                for i in candidates.tolist()
            )
        return best_row, best_cnt

    # ----------------------------------------------------------- bag updates
    def _row_index(self, row: Row) -> Optional[int]:
        """Position of ``row`` among the distinct tuples, or ``None``."""
        if not self._codes:
            return 0 if self._mult.size else None
        mask: Optional[np.ndarray] = None
        for column, value in zip(self._codes, row):
            code = self._vocab.lookup(value)
            if code is None:
                return None
            hit = column == code
            mask = hit if mask is None else (mask & hit)
        if mask is None:
            raise InternalError("_row_index reached an empty column set")
        index = np.nonzero(mask)[0]
        return int(index[0]) if index.size else None

    def add(self, row: Sequence[object], multiplicity: int = 1) -> "ColumnarRelation":
        """Return a copy with ``multiplicity`` extra occurrences of ``row``.

        Array-level: an existing row bumps one slot of a copied count
        vector (code columns are shared); a new row appends one slot —
        no dict round-trip, no re-sort.
        """
        if multiplicity < 0:
            raise SchemaError("use remove() to delete tuples")
        row = tuple(row)
        self._check_row(row)
        if multiplicity == 0:
            return self
        index = self._row_index(row)
        current = int(self._mult[index]) if index is not None else 0
        if current + multiplicity > _INT64_MAX:
            raise MultiplicityOverflowError(
                "multiplicity exceeds int64 on the columnar backend; "
                "use the python backend for counts this large"
            )
        if index is not None:
            mult = self._mult.copy()
            mult[index] = current + multiplicity
            return ColumnarRelation._from_parts(
                self._schema, self._codes, mult, vocab=self._vocab
            )
        codes = [
            np.append(column, self._vocab.encode(value))
            for column, value in zip(self._codes, row)
        ]
        mult = np.append(self._mult, np.int64(multiplicity))
        return ColumnarRelation._from_parts(
            self._schema, codes, mult, vocab=self._vocab
        )

    def remove(self, row: Sequence[object], multiplicity: int = 1) -> "ColumnarRelation":
        """Return a copy with up to ``multiplicity`` occurrences of ``row``
        removed.  Removing an absent tuple is a no-op.

        Array-level, like :meth:`add`: decrement one slot of a copied
        count vector, or mask the row out when its count hits zero.
        """
        row = tuple(row)
        self._check_row(row)
        index = self._row_index(row)
        if index is None:
            return self
        remaining = int(self._mult[index]) - multiplicity
        if remaining > 0:
            mult = self._mult.copy()
            mult[index] = remaining
            return ColumnarRelation._from_parts(
                self._schema, self._codes, mult, vocab=self._vocab
            )
        keep = np.ones(self._mult.size, dtype=bool)
        keep[index] = False
        return ColumnarRelation._from_parts(
            self._schema,
            [column[keep] for column in self._codes],
            self._mult[keep],
            vocab=self._vocab,
        )

    def filter(self, predicate) -> "ColumnarRelation":
        """Keep tuples satisfying ``predicate`` (a selection σ).

        Structural predicates from :mod:`repro.query.predicates` evaluate
        once per distinct dictionary code and reduce to vectorized masks
        (:func:`_predicate_mask`); arbitrary Python predicates force
        per-distinct-row evaluation, as in the Python backend.  Survivors
        keep their columnar form either way.
        """
        attrs = self._schema.attributes
        if not self._codes:
            keep_all = self._mult.size and predicate({})
            mult = self._mult if keep_all else _EMPTY_INT64
            return ColumnarRelation._from_parts(
                self._schema, (), mult, vocab=self._vocab
            )
        mask = _predicate_mask(self, predicate)
        if mask is not None:
            return ColumnarRelation._from_parts(
                self._schema,
                [c[mask] for c in self._codes],
                self._mult[mask],
                vocab=self._vocab,
            )
        values = self._vocab.values
        decoded = [[values[c] for c in column.tolist()] for column in self._codes]
        mask = np.fromiter(
            (bool(predicate(dict(zip(attrs, row)))) for row in zip(*decoded)),
            dtype=bool,
            count=self._mult.size,
        )
        return ColumnarRelation._from_parts(
            self._schema,
            [c[mask] for c in self._codes],
            self._mult[mask],
            vocab=self._vocab,
        )

    def rename(self, mapping: Mapping[str, str]) -> "ColumnarRelation":
        """Return the same bag under renamed attributes — O(arity)."""
        new_attrs = [mapping.get(a, a) for a in self._schema.attributes]
        return ColumnarRelation._from_parts(
            Schema(new_attrs), self._codes, self._mult, vocab=self._vocab
        )

    def scale_counts(self, factor: int) -> "ColumnarRelation":
        """Multiply every multiplicity by a positive integer ``factor``."""
        if factor <= 0:
            raise SchemaError(f"scale factor must be positive, got {factor}")
        return ColumnarRelation._from_parts(
            self._schema, self._codes, _checked_scale(self._mult, factor), vocab=self._vocab
        )

    # ------------------------------------------------------------- comparison
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarRelation):
            counts = getattr(other, "counts", None)
            schema = getattr(other, "schema", None)
            if counts is None or schema is None:
                return NotImplemented
            return self._schema == schema and dict(self.counts) == dict(counts)
        return self._schema == other._schema and self.counts == other.counts

    def __hash__(self) -> int:  # pragma: no cover - relations are dict-like
        raise TypeError("ColumnarRelation is not hashable")

    def same_bag(self, other) -> bool:
        """Bag equality up to attribute order (works across backends)."""
        return same_bag_counts(self, other)

    def __repr__(self) -> str:
        return (
            f"ColumnarRelation({list(self._schema.attributes)!r}, "
            f"{self.distinct_count()} distinct / {self.total_count()} total)"
        )


# ------------------------------------------------------------- operators
def _reencode(relation: ColumnarRelation, vocab: _Vocabulary) -> ColumnarRelation:
    """The same bag with codes re-encoded under ``vocab``."""
    source = relation._vocab.values
    encode = vocab.encode
    codes = [
        np.fromiter(
            (encode(source[c]) for c in column.tolist()),
            dtype=np.int64,
            count=column.size,
        )
        for column in relation._codes
    ]
    return ColumnarRelation._from_parts(
        relation.schema, codes, relation._mult, vocab=vocab
    )


def _aligned(
    left: ColumnarRelation, right: ColumnarRelation
) -> Tuple[ColumnarRelation, ColumnarRelation]:
    """Ensure both operands share one vocabulary (codes comparable).

    Only does work after :func:`reset_vocabulary` split generations —
    the common case is a pointer comparison."""
    if left._vocab is not right._vocab:
        right = _reencode(right, left._vocab)
    return left, right


def join(left: ColumnarRelation, right: ColumnarRelation) -> ColumnarRelation:
    """Vectorized natural join multiplying multiplicities (``r̃join``)."""
    common = left.schema.common(right.schema)
    if not common:
        return cross_product(left, right)
    left, right = _aligned(left, right)
    left_key = left.schema.project_positions(common)
    right_key = right.schema.project_positions(common)
    lkey, rkey = _pack_keys(
        [left._codes[p] for p in left_key], [right._codes[p] for p in right_key]
    )
    lidx, ridx = _match_pairs(lkey, rkey)
    out_schema = left.schema.union(right.schema)
    right_extra = [
        i for i, a in enumerate(right.attributes) if a not in left.schema
    ]
    codes = [column[lidx] for column in left._codes]
    codes.extend(right._codes[i][ridx] for i in right_extra)
    mult = _pair_products(left._mult[lidx], right._mult[ridx])
    # Distinct inputs give distinct outputs (all left attributes plus the
    # right extras pin the pair), so no regrouping pass is needed.
    return ColumnarRelation._from_parts(out_schema, codes, mult, vocab=left._vocab)


def cross_product(left: ColumnarRelation, right: ColumnarRelation) -> ColumnarRelation:
    """Bag cross product (multiplicities multiply)."""
    overlap = left.schema.common(right.schema)
    if overlap:
        raise SchemaError(f"cross product with overlapping attributes {overlap}")
    left, right = _aligned(left, right)
    out_schema = left.schema.union(right.schema)
    n_left, n_right = left._mult.size, right._mult.size
    lidx = np.repeat(np.arange(n_left), n_right)
    ridx = np.tile(np.arange(n_right), n_left)
    codes = [column[lidx] for column in left._codes]
    codes.extend(column[ridx] for column in right._codes)
    mult = _pair_products(left._mult[lidx], right._mult[ridx])
    return ColumnarRelation._from_parts(out_schema, codes, mult, vocab=left._vocab)


def group_by(relation: ColumnarRelation, attributes: Sequence[str]) -> ColumnarRelation:
    """Vectorized ``γ_A``: project onto ``attributes`` summing counts."""
    positions = relation.schema.project_positions(attributes)
    codes, mult = _dedupe_sum([relation._codes[p] for p in positions], relation._mult)
    return ColumnarRelation._from_parts(
        Schema(attributes), codes, mult, vocab=relation._vocab
    )


def semijoin(left: ColumnarRelation, right: ColumnarRelation) -> ColumnarRelation:
    """Yannakakis reducer: keep ``left`` rows matching some ``right`` row."""
    common = left.schema.common(right.schema)
    if not common:
        if right.is_empty():
            return ColumnarRelation._from_parts(
                left.schema, [c[:0] for c in left._codes], _EMPTY_INT64,
                vocab=left._vocab,
            )
        return left
    left, right = _aligned(left, right)
    left_key = left.schema.project_positions(common)
    right_key = right.schema.project_positions(common)
    lkey, rkey = _pack_keys(
        [left._codes[p] for p in left_key], [right._codes[p] for p in right_key]
    )
    mask = np.isin(lkey, rkey)
    return ColumnarRelation._from_parts(
        left.schema, [c[mask] for c in left._codes], left._mult[mask],
        vocab=left._vocab,
    )


def union_all(relations: Sequence[ColumnarRelation]) -> ColumnarRelation:
    """Bag union (multiplicities add).  All schemas must match exactly."""
    if not relations:
        raise SchemaError("union_all requires at least one relation")
    schema = relations[0].schema
    for rel in relations:
        if rel.schema != schema:
            raise SchemaError(f"union_all schema mismatch: {rel.schema} vs {schema}")
    vocab = relations[0]._vocab
    relations = [
        rel if rel._vocab is vocab else _reencode(rel, vocab) for rel in relations
    ]
    codes = [
        np.concatenate([rel._codes[i] for rel in relations])
        for i in range(schema.arity)
    ]
    mult = np.concatenate([rel._mult for rel in relations])
    codes, mult = _dedupe_sum(codes, mult)
    return ColumnarRelation._from_parts(schema, codes, mult, vocab=vocab)


def difference(left: ColumnarRelation, right: ColumnarRelation) -> ColumnarRelation:
    """Bag difference ``left ∸ right`` (monus: counts floor at zero)."""
    if left.schema != right.schema:
        raise SchemaError(f"difference schema mismatch: {left.schema} vs {right.schema}")
    if left.schema.arity == 0:
        remaining = left.total_count() - right.total_count()
        return ColumnarRelation(
            left.schema, {(): remaining} if remaining > 0 else {}
        )
    left, right = _aligned(left, right)
    lkey, rkey = _pack_keys(left._codes, right._codes)
    lidx, ridx = _match_pairs(lkey, rkey)
    mult = left._mult.copy()
    mult[lidx] -= right._mult[ridx]
    keep = mult > 0
    return ColumnarRelation._from_parts(
        left.schema, [c[keep] for c in left._codes], mult[keep], vocab=left._vocab
    )


def clamp_counts_to_top_k(relation: ColumnarRelation, k: int) -> ColumnarRelation:
    """Vectorized top-k clamp (Sec. 5.4): counts below the k-th largest rise
    to it.  Used by :func:`repro.core.topk.clamp_to_top_k`."""
    mult = relation._mult
    if mult.size <= k:
        return relation
    threshold = np.partition(mult, mult.size - k)[mult.size - k]
    return ColumnarRelation._from_parts(
        relation._schema, relation._codes, np.maximum(mult, threshold),
        vocab=relation._vocab,
    )
