"""Independent verification of sensitivity results.

``verify_result`` re-measures every claim a
:class:`~repro.core.result.SensitivityResult` makes — the overall witness,
each per-relation witness, and (optionally) every table entry for tuples
present in the database — by direct re-evaluation (Definition 2.1).  It is
deliberately slow and independent of the TSens code paths: the point is to
let a user (or a test) confirm a result against first principles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine.database import Database
from repro.query.conjunctive import ConjunctiveQuery
from repro.core.naive import naive_tuple_sensitivity
from repro.core.result import SensitivityResult


@dataclass
class VerificationReport:
    """Outcome of re-measuring a sensitivity result.

    ``ok`` is True when every re-measured value matches the claim;
    ``mismatches`` lists human-readable discrepancies otherwise.
    """

    ok: bool
    checked: int
    mismatches: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"verification {status}: {self.checked} claims checked"]
        lines.extend(f"  mismatch: {m}" for m in self.mismatches)
        return "\n".join(lines)


def verify_result(
    result: SensitivityResult,
    query: ConjunctiveQuery,
    db: Database,
    check_tables: bool = False,
    max_table_rows: int = 200,
) -> VerificationReport:
    """Re-measure a result's claims by direct re-evaluation.

    Parameters
    ----------
    result:
        The result to audit (from any method that reports witnesses).
    query, db:
        The query and instance the result was computed on.
    check_tables:
        Also re-measure the tuple sensitivity of existing database tuples
        against the result's multiplicity tables (up to ``max_table_rows``
        per relation) — the strongest, slowest check.
    """
    mismatches: List[str] = []
    checked = 0

    def check(relation: str, row, claimed: int, what: str) -> None:
        nonlocal checked
        checked += 1
        measured = naive_tuple_sensitivity(query, db, relation, row)
        if measured != claimed:
            mismatches.append(
                f"{what} {relation}{tuple(row)}: claimed {claimed}, "
                f"measured {measured}"
            )

    if result.witness is not None and result.witness.assignment:
        atom = query.atom(result.witness.relation)
        check(
            result.witness.relation,
            result.witness.as_row(atom.variables),
            result.witness.sensitivity,
            "witness",
        )

    for relation, witness in result.per_relation.items():
        if not witness.assignment:
            continue
        atom = query.atom(relation)
        check(relation, witness.as_row(atom.variables), witness.sensitivity,
              "per-relation witness")

    if check_tables:
        for relation, table in result.tables.items():
            atom = query.atom(relation)
            for index, row in enumerate(db.relation(relation)):
                if index >= max_table_rows:
                    break
                assignment = dict(zip(atom.variables, row))
                predicate = query.selections.get(relation)
                if predicate is not None and not predicate(assignment):
                    claimed = 0
                else:
                    claimed = table.sensitivity_of(assignment)
                check(relation, row, claimed, "table entry")

    return VerificationReport(
        ok=not mismatches, checked=checked, mismatches=mismatches
    )
