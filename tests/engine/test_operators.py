"""Unit tests for :mod:`repro.engine.operators` — the r̃join/γ algebra."""

import pytest

from repro.engine.operators import (
    cross_product,
    difference,
    group_by,
    join,
    join_all,
    project,
    select,
    semijoin,
    symmetric_difference_size,
    union_all,
)
from repro.engine.relation import Relation
from repro.exceptions import SchemaError


@pytest.fixture
def r_ab():
    return Relation(["A", "B"], [(1, 2), (1, 2), (1, 3)])


@pytest.fixture
def r_bc():
    return Relation(["B", "C"], [(2, 9), (3, 9), (3, 8)])


class TestJoin:
    def test_counts_multiply(self, r_ab, r_bc):
        out = join(r_ab, r_bc)
        # (1,2) has multiplicity 2 and joins (2,9) once -> count 2.
        assert out.multiplicity((1, 2, 9)) == 2
        assert out.multiplicity((1, 3, 9)) == 1
        assert out.multiplicity((1, 3, 8)) == 1
        assert out.total_count() == 4

    def test_schema_order(self, r_ab, r_bc):
        assert join(r_ab, r_bc).attributes == ("A", "B", "C")

    def test_symmetric_total(self, r_ab, r_bc):
        assert join(r_ab, r_bc).total_count() == join(r_bc, r_ab).total_count()

    def test_join_on_multiple_attributes(self):
        left = Relation(["A", "B", "C"], [(1, 2, 3), (1, 2, 4)])
        right = Relation(["B", "C", "D"], [(2, 3, 7)])
        out = join(left, right)
        assert dict(out.items()) == {(1, 2, 3, 7): 1}

    def test_no_common_attributes_is_cross_product(self):
        left = Relation(["A"], [(1,), (2,)])
        right = Relation(["B"], [(5,)])
        out = join(left, right)
        assert out.total_count() == 2
        assert out.attributes == ("A", "B")

    def test_empty_side_gives_empty(self, r_ab):
        assert join(r_ab, Relation(["B", "C"], ())).is_empty()

    def test_join_all_left_deep(self, r_ab, r_bc):
        third = Relation(["C", "D"], [(9, 0)])
        assert join_all([r_ab, r_bc, third]).total_count() == 3

    def test_join_all_empty_list_raises(self):
        with pytest.raises(SchemaError):
            join_all([])

    def test_matches_bruteforce_nested_loop(self, r_ab, r_bc):
        expected = {}
        for lrow, lcnt in r_ab.items():
            for rrow, rcnt in r_bc.items():
                if lrow[1] == rrow[0]:
                    key = (lrow[0], lrow[1], rrow[1])
                    expected[key] = expected.get(key, 0) + lcnt * rcnt
        assert dict(join(r_ab, r_bc).items()) == expected


class TestCrossProduct:
    def test_counts_multiply(self):
        left = Relation(["A"], {(1,): 2})
        right = Relation(["B"], {(5,): 3})
        assert cross_product(left, right).multiplicity((1, 5)) == 6

    def test_overlap_rejected(self, r_ab):
        with pytest.raises(SchemaError):
            cross_product(r_ab, r_ab)

    def test_with_zero_arity_unit(self):
        unit = Relation([], {(): 4})
        rel = Relation(["A"], [(1,)])
        assert cross_product(unit, rel).multiplicity((1,)) == 4


class TestGroupBy:
    def test_sums_counts(self, r_ab):
        out = group_by(r_ab, ("A",))
        assert dict(out.items()) == {(1,): 3}

    def test_empty_attributes_counts_all(self, r_ab):
        out = group_by(r_ab, ())
        assert dict(out.items()) == {(): 3}

    def test_project_alias(self, r_ab):
        assert project(r_ab, ("B",)) == group_by(r_ab, ("B",))

    def test_group_by_reorders(self, r_ab):
        out = group_by(r_ab, ("B", "A"))
        assert out.attributes == ("B", "A")
        assert out.multiplicity((2, 1)) == 2


class TestSelect:
    def test_keeps_matching(self, r_ab):
        out = select(r_ab, lambda row: row["B"] == 2)
        assert dict(out.items()) == {(1, 2): 2}


class TestSemijoin:
    def test_filters_without_changing_counts(self, r_ab):
        right = Relation(["B"], [(2,)])
        out = semijoin(r_ab, right)
        assert dict(out.items()) == {(1, 2): 2}

    def test_no_common_attributes_nonempty_right(self, r_ab):
        assert semijoin(r_ab, Relation(["Z"], [(1,)])) == r_ab

    def test_no_common_attributes_empty_right(self, r_ab):
        assert semijoin(r_ab, Relation(["Z"], ())).is_empty()


class TestBagSetOps:
    def test_union_all_adds_counts(self, r_ab):
        out = union_all([r_ab, r_ab])
        assert out.multiplicity((1, 2)) == 4

    def test_union_all_schema_mismatch(self, r_ab, r_bc):
        with pytest.raises(SchemaError):
            union_all([r_ab, r_bc])

    def test_difference_monus(self):
        left = Relation(["A"], {(1,): 3, (2,): 1})
        right = Relation(["A"], {(1,): 1, (2,): 5})
        out = difference(left, right)
        assert dict(out.items()) == {(1,): 2}

    def test_symmetric_difference_size(self):
        left = Relation(["A"], {(1,): 3, (2,): 1})
        right = Relation(["A"], {(1,): 1, (3,): 2})
        # |3-1| + |1-0| + |0-2| = 5
        assert symmetric_difference_size(left, right) == 5

    def test_symmetric_difference_handles_column_order(self):
        left = Relation(["A", "B"], {(1, 2): 1})
        right = Relation(["B", "A"], {(2, 1): 1})
        assert symmetric_difference_size(left, right) == 0

    def test_symmetric_difference_different_attrs_raises(self, r_ab, r_bc):
        with pytest.raises(SchemaError):
            symmetric_difference_size(r_ab, r_bc)
