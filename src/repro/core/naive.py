"""Naive local sensitivity — the Theorem 3.1 brute-force algorithm.

For every relation ``R_i``:

* **downward**: for each distinct tuple ``t ∈ R_i``, re-count the query on
  ``D \\ {t}``; the drop is ``δ⁻(t)``;
* **upward**: for each tuple ``t`` in the *representative domain*
  ``Σ^{A_i}_repr`` (Definition 3.1), re-count on ``D ∪ {t}``; the rise is
  ``δ⁺(t)``.

This runs in polynomial data complexity but is exponentially slower than
TSens in practice (the paper reports ×10k+); it exists as a correctness
oracle for tests and as the re-evaluation baseline the paper discusses in
Sections 4.1/5.2.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.engine.database import Database
from repro.engine.relation import Row
from repro.evaluation.yannakakis import count_query
from repro.query.conjunctive import ConjunctiveQuery
from repro.core.result import SensitiveTuple, SensitivityResult
from repro.exceptions import ReproError


class DomainTooLargeError(ReproError):
    """The representative domain exceeds the configured enumeration cap."""


def _domain_size(db: Database, relation: str) -> int:
    size = 1
    rel = db.relation(relation)
    for attr in rel.schema.attributes:
        size *= max(1, len(db.representative_domain(attr, relation)))
        if size > 10**9:
            break
    return size


def naive_local_sensitivity(
    query: ConjunctiveQuery,
    db: Database,
    max_candidates: int = 200_000,
    relations: Optional[Iterable[str]] = None,
) -> SensitivityResult:
    """Brute-force ``LS(Q, D)`` with witness, via repeated re-counting.

    Parameters
    ----------
    query:
        Full CQ without self-joins (any shape — evaluation picks a
        decomposition automatically).
    db:
        Database instance.
    max_candidates:
        Safety cap on the total number of re-evaluations; raises
        :class:`DomainTooLargeError` beyond it.
    relations:
        Restrict the search to these relations (default: all).

    Returns a :class:`~repro.core.result.SensitivityResult` without
    multiplicity tables (``method="naive"``).
    """
    query.validate_against(db)
    targets = tuple(relations) if relations is not None else query.relation_names

    total_candidates = 0
    for relation in targets:
        total_candidates += db.relation(relation).distinct_count()
        total_candidates += _domain_size(db, relation)
    if total_candidates > max_candidates:
        raise DomainTooLargeError(
            f"naive search would evaluate {total_candidates} candidate tuples "
            f"(cap {max_candidates}); use TSens instead"
        )

    base_count = count_query(query, db)
    per_relation: Dict[str, SensitiveTuple] = {}
    for relation in targets:
        atom = query.atom(relation)
        rel = db.relation(relation)
        best_row: Optional[Row] = None
        best_delta = 0
        # Downward: deleting one occurrence of an existing tuple.
        for row in rel:
            delta = base_count - count_query(query, db.remove_tuple(relation, row))
            if delta > best_delta:
                best_delta, best_row = delta, row
        # Upward: inserting any representative-domain tuple.
        for row in db.representative_tuples(relation):
            delta = count_query(query, db.add_tuple(relation, row)) - base_count
            if delta > best_delta:
                best_delta, best_row = delta, row
        if best_row is None:
            per_relation[relation] = SensitiveTuple(relation, {}, 0)
        else:
            assignment = dict(zip(atom.variables, best_row))
            per_relation[relation] = SensitiveTuple(relation, assignment, best_delta)

    local = max((w.sensitivity for w in per_relation.values()), default=0)
    witness: Optional[SensitiveTuple] = None
    if local > 0:
        witness = next(w for w in per_relation.values() if w.sensitivity == local)
    return SensitivityResult(
        query_name=query.name,
        method="naive",
        local_sensitivity=local,
        witness=witness,
        per_relation=per_relation,
        tables={},
    )


def naive_tuple_sensitivity(
    query: ConjunctiveQuery, db: Database, relation: str, row: Row
) -> int:
    """``δ(t, Q, D)`` for a single tuple, by direct re-evaluation.

    Computes ``max(δ⁺, δ⁻)`` per Definition 2.1 (for counting queries the
    symmetric-difference size equals the count change).
    """
    base = count_query(query, db)
    up = count_query(query, db.add_tuple(relation, row)) - base
    down = base - count_query(query, db.remove_tuple(relation, row))
    return max(up, down)
