"""Workload plumbing: a query plus everything an experiment needs to run it.

A :class:`Workload` bundles the conjunctive query, the decomposition the
paper prescribes for it (Fig. 5), the view-preparation step that derives
the queried tables from the base dataset (e.g. projecting ``Lineitem`` to
``L(OK)`` for q1), and the DP policy parameters used in Table 2 (primary
private relation and the tuple-sensitivity upper bound ``ℓ``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.engine.database import Database
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree


@dataclass
class Workload:
    """One experimental query with its paper-prescribed configuration.

    Attributes
    ----------
    name:
        The paper's query name (``q1`` ... ``q3``, ``q4``/``q_tri``,
        ``qw``, ``q_cycle``, ``q_star``).
    query:
        The conjunctive query over the *prepared* database's relations.
    prepare:
        Derives the queried database (views, key metadata) from the base
        dataset.  Identity for the Facebook workloads.
    tree:
        The decomposition from Fig. 5 (``None`` = let GYO/auto decide).
    primary:
        Primary private relation for the DP experiments.
    ell:
        The paper's assumed upper bound on tuple sensitivity (Table 2).
    skip_relations:
        Relations whose multiplicity table TSens skips because their
        attributes form a superkey of the output (δ ≤ 1) — Lineitem in q3.
    description:
        One-line summary shown in experiment reports.
    """

    name: str
    query: ConjunctiveQuery
    prepare: Callable[[Database], Database]
    tree: Optional[DecompositionTree] = None
    primary: Optional[str] = None
    ell: int = 100
    skip_relations: Tuple[str, ...] = ()
    description: str = ""

    def prepared(self, base: Database) -> Database:
        """The database this workload's query runs over."""
        return self.prepare(base)
