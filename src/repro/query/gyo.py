"""GYO (Graham–Yu–Ozsoyoglu) decomposition (Sec. 2.2).

The GYO algorithm repeatedly finds an *ear*: a hyperedge whose vertices
split into (i) vertices exclusive to that edge and (ii) vertices fully
contained in some other edge (the *witness*).  Removing ears until the
hypergraph is empty certifies acyclicity and, by recording each ear's
witness, yields a join tree.

:func:`gyo_join_tree` returns the join tree of an acyclic connected query
(raising :class:`~repro.exceptions.NotAcyclicError` otherwise);
:func:`is_acyclic` is the predicate form; :func:`gyo_reduce` exposes the raw
reduction for diagnostics and tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.query.hypergraph import Hypergraph
from repro.query.jointree import DecompositionTree, join_tree_from_parents
from repro.exceptions import InternalError, NotAcyclicError, QueryStructureError


def _find_ear(edges: Dict[str, FrozenSet[str]]) -> Optional[Tuple[str, Optional[str]]]:
    """Find an ear in ``edges``.

    Returns ``(ear, witness)`` where ``witness`` is an edge containing all
    the ear's shared vertices, or ``witness is None`` when the ear shares no
    vertex with any other edge (isolated edge — only legal as the last one
    of a connected component).  Returns ``None`` when no ear exists.

    Iteration order follows dict insertion order so results are
    deterministic for a given query.
    """
    names = list(edges)
    for name in names:
        vertices = edges[name]
        shared = frozenset(
            v for v in vertices if any(v in edges[o] for o in names if o != name)
        )
        if not shared:
            if len(names) == 1:
                return name, None
            # An edge sharing nothing in a multi-edge graph belongs to a
            # different connected component; it is still an ear.
            return name, None
        for other in names:
            if other != name and shared <= edges[other]:
                return name, other
    return None


def gyo_reduce(hypergraph: Hypergraph) -> Tuple[bool, List[Tuple[str, Optional[str]]]]:
    """Run GYO to exhaustion.

    Returns ``(is_acyclic, eliminations)`` where ``eliminations`` lists the
    ``(ear, witness)`` pairs in elimination order.  The hypergraph is
    acyclic iff every edge gets eliminated.
    """
    edges = dict(hypergraph.edges)
    eliminations: List[Tuple[str, Optional[str]]] = []
    while edges:
        found = _find_ear(edges)
        if found is None:
            return False, eliminations
        ear, witness = found
        eliminations.append((ear, witness))
        del edges[ear]
    return True, eliminations


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """True iff the query is α-acyclic under GYO reduction."""
    acyclic, _ = gyo_reduce(Hypergraph.of_query(query))
    return acyclic


def gyo_join_tree(query: ConjunctiveQuery) -> DecompositionTree:
    """Join tree of a *connected*, acyclic query via GYO decomposition.

    The ear-elimination witness becomes the ear's parent; the final
    surviving edge is the root.  Raises
    :class:`~repro.exceptions.NotAcyclicError` for cyclic queries and
    :class:`~repro.exceptions.QueryStructureError` for disconnected ones
    (use :func:`gyo_join_forest` for those).
    """
    if not query.is_connected():
        raise QueryStructureError(
            f"query {query.name} is disconnected; build a join forest instead"
        )
    acyclic, eliminations = gyo_reduce(Hypergraph.of_query(query))
    if not acyclic:
        raise NotAcyclicError(f"query {query.name} is cyclic (GYO reduction stuck)")
    parent: Dict[str, str] = {}
    root = eliminations[-1][0]
    for ear, witness in eliminations[:-1]:
        if witness is None:
            # Connected + acyclic guarantees every non-final ear a witness.
            raise InternalError(f"ear {ear} eliminated without a witness")
        parent[ear] = witness
    return join_tree_from_parents(query, root, parent)


def gyo_join_forest(query: ConjunctiveQuery) -> List[DecompositionTree]:
    """One join tree per connected component of an acyclic query."""
    forest: List[DecompositionTree] = []
    for component in query.connected_components():
        sub = query.subquery(component, name=f"{query.name}_component")
        forest.append(gyo_join_tree(sub))
    return forest
