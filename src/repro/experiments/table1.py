"""Experiment E4 — Table 1: Facebook queries, sensitivity and runtime.

One row per Facebook query (q4, qw, q◦, q★) with the local sensitivity
from TSens, the Elastic upper bound, and the three wall-clock times —
exactly the columns of the paper's Table 1.  Shape claims: TSens is tighter
on every query (×3 up to ×80k), slower than Elastic, but comparable to
query-evaluation time.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.experiments.reporting import format_table, ratio
from repro.experiments.runner import facebook_database, measure_workload
from repro.workloads.facebook_queries import facebook_workloads


def run(
    seed: int = 0, queries: Optional[Sequence[str]] = None
) -> List[Mapping[str, object]]:
    """Run all four Facebook workloads once."""
    base = facebook_database(seed)
    rows: List[Mapping[str, object]] = []
    for workload in facebook_workloads():
        if queries is not None and workload.name not in queries:
            continue
        m = measure_workload(workload, base)
        rows.append(
            {
                "query": workload.name,
                "tsens_ls": m.tsens_ls,
                "elastic_ls": m.elastic_ls,
                "elastic_over_tsens": ratio(m.elastic_ls, m.tsens_ls),
                "tsens_seconds": m.tsens_seconds,
                "elastic_seconds": m.elastic_seconds,
                "evaluation_seconds": m.evaluation_seconds,
                "output_count": m.count,
            }
        )
    return rows


def report(rows: Sequence[Mapping[str, object]]) -> str:
    """Text rendering of Table 1."""
    return format_table(
        rows,
        columns=[
            "query",
            "tsens_ls",
            "elastic_ls",
            "elastic_over_tsens",
            "tsens_seconds",
            "elastic_seconds",
            "evaluation_seconds",
            "output_count",
        ],
        title="Table 1 — Facebook queries: local sensitivity and runtime",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
