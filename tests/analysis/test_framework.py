"""Driver-level tests: suppressions, baselines, reporters, and the CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, LintConfigError, LintRunner, builtin_rules, load_rules
from repro.analysis.rules.asserts import NoBareAssertRule
from repro.analysis.suppressions import Suppressions
from repro.cli import main

TWO_ASSERTS = (
    "def f(x):\n"
    "    assert x  # repro-lint: disable=R006\n"
    "    assert x\n"
    "    return x\n"
)


def _lint_file(tmp_path, source, rules=None, name="sample.py"):
    path = tmp_path / name
    path.write_text(source)
    runner = LintRunner(rules if rules is not None else [NoBareAssertRule()])
    return path, runner.check_file(path)


class TestSuppressions:
    def test_inline_disable_silences_exactly_one_finding(self, tmp_path):
        _, findings = _lint_file(tmp_path, TWO_ASSERTS)
        assert len(findings) == 1
        assert findings[0].line == 3  # only the unsuppressed assert

    def test_standalone_comment_suppresses_next_code_line(self, tmp_path):
        source = (
            "def f(x):\n"
            "    # repro-lint: disable=R006 -- justified here\n"
            "    assert x\n"
            "    return x\n"
        )
        _, findings = _lint_file(tmp_path, source)
        assert findings == []

    def test_disable_file_silences_whole_module(self, tmp_path):
        source = "# repro-lint: disable-file=R006\n" + TWO_ASSERTS
        _, findings = _lint_file(tmp_path, source)
        assert findings == []

    def test_disable_all_and_multiple_rules(self):
        s = Suppressions.parse("x = 1  # repro-lint: disable=R001,R005\n")
        assert s.is_suppressed("R001", 1)
        assert s.is_suppressed("R005", 1)
        assert not s.is_suppressed("R006", 1)
        s = Suppressions.parse("x = 1  # repro-lint: disable=all\n")
        assert s.is_suppressed("R999", 1)

    def test_marker_inside_string_literal_does_not_suppress(self, tmp_path):
        source = (
            "def f(x):\n"
            '    note = "# repro-lint: disable=R006"\n'
            "    assert x\n"
            "    return note\n"
        )
        _, findings = _lint_file(tmp_path, source)
        assert len(findings) == 1

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        source = "def f(x):\n    assert x  # repro-lint: disable=R001\n"
        _, findings = _lint_file(tmp_path, source)
        assert len(findings) == 1

    def test_suppressed_count_reported(self, tmp_path):
        path = tmp_path / "sample.py"
        path.write_text(TWO_ASSERTS)
        result = LintRunner([NoBareAssertRule()]).run([tmp_path])
        assert len(result.findings) == 1
        assert result.suppressed == 1


class TestBaseline:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        path = tmp_path / "sample.py"
        path.write_text("def f(x):\n    assert x\n")
        runner = LintRunner([NoBareAssertRule()])
        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, runner.check_file(path))
        result = runner.run([path], baseline=Baseline.load(baseline_path))
        assert result.clean
        assert result.baselined == 1

    def test_new_findings_still_fail(self, tmp_path):
        path = tmp_path / "sample.py"
        path.write_text("def f(x):\n    assert x\n")
        runner = LintRunner([NoBareAssertRule()])
        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, runner.check_file(path))
        path.write_text("def f(x):\n    assert x\n    assert x is not None\n")
        result = runner.run([path], baseline=Baseline.load(baseline_path))
        assert len(result.findings) == 1
        assert "assert x is not None" in result.findings[0].line_text

    def test_matching_is_consuming(self, tmp_path):
        """Duplicating a baselined bad line is a new finding."""
        path = tmp_path / "sample.py"
        path.write_text("def f(x):\n    assert x\n")
        runner = LintRunner([NoBareAssertRule()])
        baseline = Baseline(
            [f.key() for f in runner.check_file(path)]
        )
        path.write_text("def f(x):\n    assert x\n    assert x\n")
        result = runner.run([path], baseline=baseline)
        assert len(result.findings) == 1

    def test_entries_age_out_when_line_disappears(self, tmp_path):
        path = tmp_path / "sample.py"
        path.write_text("def f(x):\n    assert x\n")
        runner = LintRunner([NoBareAssertRule()])
        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, runner.check_file(path))
        # Fix the line; the baseline entry is now stale.
        path.write_text("def f(x):\n    return x\n")
        result = runner.run([path], baseline=Baseline.load(baseline_path))
        assert result.clean
        assert result.stale_baseline == 1
        # Rewriting the baseline drops the stale entry.
        count = Baseline.write(baseline_path, runner.check_file(path))
        assert count == 0
        assert Baseline.load(baseline_path).split([]) == ([], 0, 0)

    def test_entries_survive_line_number_drift(self, tmp_path):
        path = tmp_path / "sample.py"
        path.write_text("def f(x):\n    assert x\n")
        runner = LintRunner([NoBareAssertRule()])
        baseline = Baseline([f.key() for f in runner.check_file(path)])
        # Unrelated code above moves the finding down two lines.
        path.write_text("import os\nimport sys\n\ndef f(x):\n    assert x\n")
        result = runner.run([path], baseline=baseline)
        assert result.clean
        assert result.baselined == 1

    def test_corrupt_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(LintConfigError):
            Baseline.load(bad)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0


class TestRegistry:
    def test_builtin_rules_are_unique_and_complete(self):
        ids = [rule.rule_id for rule in builtin_rules()]
        assert ids == sorted(ids)
        assert set(ids) == {
            "R001", "R002", "R003", "R004", "R005", "R006", "R007",
            "R008",
        }

    def test_load_rules_filter(self):
        assert [r.rule_id for r in load_rules(only=["R006", "R001"])] == [
            "R006",
            "R001",
        ]

    def test_load_rules_unknown_id(self):
        with pytest.raises(LintConfigError):
            load_rules(only=["R999"])

    def test_duplicate_rule_ids_rejected(self):
        with pytest.raises(LintConfigError):
            LintRunner([NoBareAssertRule(), NoBareAssertRule()])


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("def f(x):\n    return x\n")
        assert main(["lint", str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(x):\n    assert x\n")
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "R006" in out and "dirty.py:2" in out

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(x):\n    assert x\n")
        assert main(["lint", str(path), "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1
        assert payload["findings"][0]["rule"] == "R006"
        assert payload["findings"][0]["line"] == 2

    def test_baseline_roundtrip_via_cli(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(x):\n    assert x\n")
        baseline = tmp_path / "baseline.json"
        assert (
            main(["lint", str(path), "--baseline", str(baseline), "--update-baseline"])
            == 0
        )
        capsys.readouterr()
        assert main(["lint", str(path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_update_baseline_requires_baseline_path(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--update-baseline"]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ["R001", "R002", "R003", "R004", "R005", "R006"]:
            assert rule_id in out

    def test_rules_filter(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(x):\n    assert x\n")
        assert main(["lint", str(path), "--rules", "R001"]) == 0
        capsys.readouterr()
        assert main(["lint", str(path), "--rules", "R999"]) == 2

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/nonexistent/path/xyz"]) == 2

    def test_syntax_error_reported_not_crashing(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        assert main(["lint", str(path)]) == 1
        assert "E000" in capsys.readouterr().out
