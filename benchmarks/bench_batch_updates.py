"""Ablation — batched update streams: one compacted apply vs a loop.

The claim behind the batched :meth:`~repro.session.PreparedQuery.apply`:
folding a stream as whole per-relation signed delta relations costs a
constant number of vectorized passes per touched relation, while the
one-at-a-time loop pays the full leaf-to-root fold (plus staging and
cache invalidation) once per element.  Both sides are *maintained*
sessions — the baseline here is already the winner of
``bench_session_updates.py`` — so the measured gap isolates the
batching/compaction layer itself.

The workload is the broom-shaped acyclic query shared with the session
bench, with a 1000-element stream (≈1/6 deletes, duplicates guaranteed
by the narrow key domain, so compaction genuinely coalesces).  The bench
asserts the batched session lands on exactly the same count and database
as the sequential one, and is ≥ 3× faster on either backend.
"""

import time

import numpy as np

from repro.datasets import random_update_stream
from repro.engine import Database, Relation
from repro.query import parse_query
from repro.query.jointree import join_tree_from_parents
from repro.session import prepare

UPDATES = 1000
#: Smaller tables than the rebuild bench: both sides are maintained, so
#: the contrast is per-element fold overhead, not rebuild cost.
ROWS = {"python": 2000, "columnar": 20000}
DOMAIN = 400
SEED = 7

QUERY = parse_query(
    "Q(A,B,C,D,E,F,G) :- Hub(A,B), S1(A,C), S2(A,D), S3(A,E), T1(B,F), T2(F,G)"
)
TREE = join_tree_from_parents(
    QUERY,
    "Hub",
    {"S1": "Hub", "S2": "Hub", "S3": "Hub", "T1": "Hub", "T2": "T1"},
)


def _broom_database(backend: str, rng: np.random.Generator) -> Database:
    n_rows = ROWS[backend]

    def table(attrs):
        rows = rng.integers(0, DOMAIN, size=(n_rows, len(attrs)))
        return Relation(attrs, [tuple(int(v) for v in row) for row in rows])

    return Database(
        {
            "Hub": table(["A", "B"]),
            "S1": table(["A", "C"]),
            "S2": table(["A", "D"]),
            "S3": table(["A", "E"]),
            "T1": table(["B", "F"]),
            "T2": table(["F", "G"]),
        },
        backend=backend,
    )


def test_batched_apply_vs_sequential_loop(benchmark, backend):
    rng = np.random.default_rng(SEED)
    db = _broom_database(backend, rng)
    stream = random_update_stream(QUERY, db, rng, UPDATES)

    def batched_stream():
        session = prepare(QUERY, db, tree=TREE)
        session.count()  # maintained state built on both sides
        return session.apply(stream), session.db

    (batched_count, batched_db) = benchmark.pedantic(
        batched_stream, rounds=2, iterations=1
    )
    batched_seconds = benchmark.stats.stats.min

    sequential = prepare(QUERY, db, tree=TREE)
    sequential.count()
    start = time.perf_counter()
    for update in stream:
        sequential_count = sequential.apply([update])
    sequential_seconds = time.perf_counter() - start

    # Exact agreement: same final count, same final database bag.
    assert batched_count == sequential_count
    for relation in QUERY.relation_names:
        assert batched_db.relation(relation).same_bag(
            sequential.db.relation(relation)
        )

    speedup = sequential_seconds / max(batched_seconds, 1e-9)
    benchmark.extra_info["updates"] = UPDATES
    benchmark.extra_info["batched_seconds"] = batched_seconds
    benchmark.extra_info["sequential_seconds"] = sequential_seconds
    benchmark.extra_info["batched_vs_sequential_speedup"] = speedup

    # The acceptance bar of the batched apply: one compacted batch beats
    # the element-by-element loop by at least 3x.
    assert speedup >= 3.0
