"""Unit tests for the Facebook ego-network generator."""

import pytest

from repro.datasets import generate_ego_network, graph_statistics, triangle_table
from repro.engine import Relation
from repro.exceptions import MechanismConfigError


@pytest.fixture(scope="module")
def db():
    return generate_ego_network(
        nodes=60, directed_edges=600, num_circles=80, seed=5
    )


class TestTables:
    def test_all_tables_present(self, db):
        assert set(db.relation_names) == {"R1", "R2", "R3", "R4", "TRI"}

    def test_edge_tables_are_binary(self, db):
        for i in range(1, 5):
            assert db.relation(f"R{i}").attributes == ("X", "Y")

    def test_edges_bidirected(self, db):
        # Circle edge tables include both directions of every edge.
        for i in range(1, 5):
            rel = db.relation(f"R{i}")
            for (u, v), cnt in rel.items():
                assert rel.multiplicity((v, u)) == cnt

    def test_rank_mod_assignment_balances_tables(self, db):
        # Size-descending round-robin: R1 gets ranks 1,5,9,... so table
        # sizes must be (weakly) decreasing in table index.
        sizes = [db.relation(f"R{i}").total_count() for i in range(1, 5)]
        assert sizes == sorted(sizes, reverse=True)

    def test_no_foreign_keys(self, db):
        assert db.foreign_keys == ()


class TestTriangleTable:
    def test_triangles_close_over_r4(self, db):
        r4 = db.relation("R4")
        tri = db.relation("TRI")
        for x, y, z in tri:
            assert (x, y) in r4 and (y, z) in r4 and (z, x) in r4

    def test_multiplicities_multiply(self):
        edges = Relation(["X", "Y"], {(1, 2): 2, (2, 3): 1, (3, 1): 1})
        tri = triangle_table(edges)
        assert tri.multiplicity((1, 2, 3)) == 2

    def test_empty_edges_no_triangles(self):
        assert triangle_table(Relation(["X", "Y"], ())).is_empty()


class TestDeterminismAndValidation:
    def test_same_seed_same_graph(self):
        a = generate_ego_network(nodes=40, directed_edges=300, num_circles=30, seed=2)
        b = generate_ego_network(nodes=40, directed_edges=300, num_circles=30, seed=2)
        for name in a.relation_names:
            assert a.relation(name) == b.relation(name)

    def test_statistics_report(self, db):
        stats = graph_statistics(db)
        assert set(stats) == set(db.relation_names)
        assert all(size >= 0 for size in stats.values())

    def test_too_few_nodes_rejected(self):
        with pytest.raises(MechanismConfigError):
            generate_ego_network(nodes=4)

    def test_default_parameters_match_snap_profile(self):
        db = generate_ego_network(seed=1)
        total_edges = sum(
            db.relation(f"R{i}").distinct_count() for i in range(1, 5)
        )
        # Same order of magnitude as the 6384 directed edges of ego 348.
        assert 2000 <= total_edges <= 40000
