#!/usr/bin/env python
"""Render every BENCH_*.json timing artifact as one trajectory report.

The benchmark conftest merges per-test wall times into
``benchmarks/BENCH_<backend>.json`` after every successful run, and the
script-mode benchmarks record execution-strategy flavours alongside:
``BENCH_<backend>_w<N>.json`` (per-op sharded, ``bench_sharded.py``),
``BENCH_<backend>_serve.json`` (epoch server, ``bench_serving.py``) and
``BENCH_<backend>_pipeline.json`` (worker-resident chains,
``bench_pipeline.py``).  This script is the read side: it folds all of
them into one table — one row per benchmark, one column per backend
flavour, serial first and its strategies beside it — plus a fig-7
summary that lines the strategies up per workload, so CI logs (and
anyone running the suite locally) see the performance trajectory
instead of a pile of opaque JSON blobs.

Run with::

    python benchmarks/trend.py [--json]

``--json`` emits the merged structure for machine consumption (the CI
artifact upload keeps the raw files as well).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

#: Known execution-strategy suffixes, in display order after the serial
#: column.  ``w<N>`` worker counts sort numerically between ``serial``
#: and ``pipeline``.
_VARIANT_ORDER = {"serial": (0, 0), "pipeline": (2, 0), "serve": (3, 0)}

#: Where each strategy records the fig-7 per-workload TSens time.
_FIG7_KEYS = {
    "serial": "bench_fig7_runtime.py::test_fig7_tsens_time[{q}]",
    "sharded": "bench_sharded.py::{q}::tsens",
    "pipeline": "bench_pipeline.py::{q}::tsens",
}


def split_backend(name: str) -> tuple[str, str]:
    """``"columnar_w2"`` -> ``("columnar", "w2")``; bare names -> serial."""
    match = re.fullmatch(r"(.+?)_(w\d+|serve|pipeline)", name)
    if match:
        return match.group(1), match.group(2)
    return name, "serial"


def _variant_rank(variant: str) -> tuple[int, int]:
    if variant in _VARIANT_ORDER:
        return _VARIANT_ORDER[variant]
    match = re.fullmatch(r"w(\d+)", variant)
    if match:
        return (1, int(match.group(1)))
    return (9, 0)


def ordered_backends(reports: dict) -> list[str]:
    """Serial backends first (alphabetical), each followed by its own
    strategy flavours: ``w<N>`` (ascending), ``pipeline``, ``serve``."""
    return sorted(
        reports, key=lambda b: (split_backend(b)[0],
                                _variant_rank(split_backend(b)[1]))
    )


def load_reports() -> dict:
    """``backend -> {test node id -> seconds}`` from every BENCH file."""
    reports = {}
    for path in sorted(BENCH_DIR.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError) as error:
            print(f"warning: skipping {path.name}: {error}", file=sys.stderr)
            continue
        backend = payload.get("backend", path.stem.replace("BENCH_", ""))
        reports[backend] = payload.get("timings_seconds", {})
    return reports


def render(reports: dict) -> str:
    if not reports:
        return "no BENCH_<backend>.json files found — run the benchmarks first"
    backends = ordered_backends(reports)
    tests = sorted({node for timings in reports.values() for node in timings})
    name_width = max(len(t) for t in tests)
    col_width = max(10, max(len(b) for b in backends))
    header = f"{'benchmark':<{name_width}}" + "".join(
        f"  {b:>{col_width}}" for b in backends
    )
    show_ratio = {"python", "columnar"} <= set(backends)
    if show_ratio:
        header += f"  {'py/col':>7}"
    lines = [header, "-" * len(header)]
    for test in tests:
        row = f"{test:<{name_width}}"
        for backend in backends:
            seconds = reports[backend].get(test)
            row += (f"  {seconds:>{col_width}.3f}" if seconds is not None
                    else f"  {'-':>{col_width}}")
        if show_ratio:
            py = reports["python"].get(test)
            col = reports["columnar"].get(test)
            if py is not None and col:
                row += f"  {py / col:>6.1f}x"
            else:
                row += f"  {'-':>7}"
        lines.append(row)
    for backend in backends:
        total = sum(reports[backend].values())
        lines.append(f"total {backend}: {total:.2f}s over "
                     f"{len(reports[backend])} benchmarks")
    fig7 = render_fig7(reports)
    if fig7:
        lines += ["", fig7]
    return "\n".join(lines)


def render_fig7(reports: dict) -> str:
    """Per-workload TSens time, execution strategies side by side.

    Each strategy records the same measurement — a fresh prepared
    session's count + TSens on the fig-7 workload — under its own node
    id, so a plain per-node table never lines them up.  This one does:
    serial (``bench_fig7_runtime``), per-op sharded (``bench_sharded``)
    and worker-resident chains (``bench_pipeline``), one block per base
    backend that has at least one strategy flavour recorded.
    """
    blocks = []
    for base in sorted({split_backend(b)[0] for b in reports}):
        flavours = {
            split_backend(b)[1]: timings
            for b, timings in reports.items()
            if split_backend(b)[0] == base
        }
        # serial times live in the base artifact; sharded in any w<N>.
        strategies = {"serial": flavours.get("serial", {})}
        for variant in sorted(flavours, key=_variant_rank):
            if variant.startswith("w"):
                strategies[f"sharded {variant}"] = flavours[variant]
            elif variant == "pipeline":
                strategies["pipeline"] = flavours[variant]
        if len(strategies) < 2:
            continue
        cols = list(strategies)
        header = f"{base + ' fig-7 tsens':<24}" + "".join(
            f"  {c:>12}" for c in cols
        )
        rows = [header, "-" * len(header)]
        for q in ("q1", "q2", "q3"):
            row = f"{q:<24}"
            for col in cols:
                kind = "sharded" if col.startswith("sharded") else col
                seconds = strategies[col].get(_FIG7_KEYS[kind].format(q=q))
                row += (f"  {seconds:>12.3f}" if seconds is not None
                        else f"  {'-':>12}")
            rows.append(row)
        blocks.append("\n".join(rows))
    return "\n\n".join(blocks)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", action="store_true", help="emit the merged JSON instead"
    )
    args = parser.parse_args()
    reports = load_reports()
    if args.json:
        print(json.dumps(reports, indent=1, sort_keys=True))
    else:
        print(render(reports))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
