"""Columnar selection / domain fast paths stay observationally identical.

The columnar backend evaluates structural DSL predicates once per distinct
dictionary code (``repro.engine.columnar._predicate_mask``) and intersects
representative domains at the code level — both must return exactly what
the per-row / value-level paths return.
"""

import numpy as np
import pytest

from repro.engine import Database, Relation
from repro.engine.columnar import (
    ColumnarRelation,
    intersect_column_values,
    reset_vocabulary,
)
from repro.query import parse_predicate, parse_query

PREDICATES = [
    "A = 1",
    "A != 1",
    "B >= 4",
    "A in {0, 2}",
    "C in {'u', 'v'}",
    "A = 0 and B < 6",
    "A = 0 or (not B = 4)",
    "not (A in {1} and C = 'u')",
    "true",
    "A > 99",
]


def _instances():
    rng = np.random.default_rng(7)
    rows = [
        (int(a), int(b), ["u", "v", "w"][int(c)])
        for a, b, c in zip(
            rng.integers(0, 3, 60), rng.integers(0, 9, 60), rng.integers(0, 3, 60)
        )
    ]
    return Relation(["A", "B", "C"], rows), ColumnarRelation(["A", "B", "C"], rows)


class TestPredicateFastPath:
    @pytest.mark.parametrize("text", PREDICATES)
    def test_matches_python_backend(self, text):
        python_rel, columnar_rel = _instances()
        predicate = parse_predicate(text)
        assert columnar_rel.filter(predicate).same_bag(python_rel.filter(predicate))

    def test_callable_fallback_matches(self):
        python_rel, columnar_rel = _instances()
        predicate = lambda row: row["A"] == row["B"] % 3
        assert columnar_rel.filter(predicate).same_bag(python_rel.filter(predicate))

    def test_missing_attribute_raises_like_per_row(self):
        _, columnar_rel = _instances()
        with pytest.raises(KeyError):
            columnar_rel.filter(parse_predicate("Z = 1"))

    def test_empty_relation(self):
        empty = ColumnarRelation(["A", "B"], [])
        assert empty.filter(parse_predicate("A = 1")).is_empty()

    def test_bound_relation_uses_fast_path_result(self):
        query = parse_query("Q(A,B) :- R(A,B)").with_selection(
            "R", parse_predicate("A = 1")
        )
        rows = [(1, 2), (1, 3), (2, 2)]
        db_py = Database({"R": Relation(["X", "Y"], rows)})
        db_col = db_py.with_backend("columnar")
        bound_py = query.bound_relation(db_py, "R")
        bound_col = query.bound_relation(db_col, "R")
        assert isinstance(bound_col, ColumnarRelation)
        assert bound_col.same_bag(bound_py)


class TestRepresentativeDomainFastPath:
    def _db_pair(self):
        db_py = Database(
            {
                "R": Relation(["A", "B"], [(1, 2), (3, 4), (5, 6)]),
                "S": Relation(["A", "C"], [(1, 9), (5, 9), (7, 7)]),
                "T": Relation(["A"], [(1,), (7,)]),
            }
        )
        return db_py, db_py.with_backend("columnar")

    def test_matches_value_level_intersection(self):
        db_py, db_col = self._db_pair()
        for relation in ("R", "S", "T"):
            assert db_py.representative_domain(
                "A", relation
            ) == db_col.representative_domain("A", relation)
            assert sorted(db_py.representative_tuples(relation), key=repr) == sorted(
                db_col.representative_tuples(relation), key=repr
            )

    def test_intersect_column_values_kernel(self):
        _, db_col = self._db_pair()
        others = [db_col.relation("S"), db_col.relation("T")]
        assert intersect_column_values(others, "A") == frozenset({1, 7})

    def test_cross_vocabulary_falls_back(self):
        first = ColumnarRelation(["A"], [(1,), (2,)])
        reset_vocabulary()
        second = ColumnarRelation(["A", "B"], [(2, 5), (3, 5)])
        third = ColumnarRelation(["A"], [(2,), (3,)])
        assert intersect_column_values([first, second], "A") is None
        db = Database({"R": first, "S": second, "T": third})
        assert db.representative_domain("A", "R") == frozenset({2, 3})
