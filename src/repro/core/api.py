"""Public dispatch API for local-sensitivity computation.

:func:`local_sensitivity` picks the right algorithm for the query shape:

=======================  ==================================================
query shape              algorithm
=======================  ==================================================
path join                Algorithm 1 (:func:`repro.core.path.ls_path_join`)
acyclic / cyclic /       Algorithm 2 with join tree or GHD
disconnected             (:func:`repro.core.general.tsens`)
any, ``method="naive"``  brute force (:func:`repro.core.naive`)
any, ``method="reeval"`` per-candidate count probes
                         (:func:`repro.baselines.reeval`), incremental
                         delta propagation or full re-runs per
                         ``reeval_mode``
=======================  ==================================================

All algorithms return the same :class:`~repro.core.result.SensitivityResult`.

Since the session API landed these functions are thin one-shot wrappers
over :func:`repro.session.prepare`: each call plans a throwaway
:class:`~repro.session.PreparedQuery` and asks it once.  Callers issuing
repeated queries, DP releases or updates against the same instance should
hold the session instead — same results, none of the re-planning.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.engine.database import Database
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.core.naive import naive_local_sensitivity
from repro.core.result import SensitivityResult
from repro.session import prepare
from repro.exceptions import MechanismConfigError


def local_sensitivity(
    query: ConjunctiveQuery,
    db: Database,
    method: str = "auto",
    tree: Optional[DecompositionTree] = None,
    skip_relations: Iterable[str] = (),
    top_k: Optional[int] = None,
    max_width: int = 3,
    reeval_mode: str = "incremental",
) -> SensitivityResult:
    """Compute ``LS(Q, D)`` and a most sensitive tuple (Definition 2.3).

    Parameters
    ----------
    query:
        Full conjunctive query without self-joins, optionally with
        per-atom selections.
    db:
        Database instance.
    method:
        ``"auto"`` (path algorithm for path queries, TSens otherwise),
        ``"path"``, ``"tsens"``, ``"naive"``, or ``"reeval"`` (the
        re-evaluation baseline, exact but slower than TSens).
    tree:
        Decomposition override for TSens on connected queries.
    skip_relations:
        Relations certified to have tuple sensitivity ≤ 1 (e.g. their
        attributes form a superkey of the output); their tables are skipped.
    top_k:
        When set, uses the clamping approximation of Sec. 5.4 — the result
        is an upper bound on the true local sensitivity.
    max_width:
        GHD node-size cap for automatic decomposition of cyclic queries.
    reeval_mode:
        For ``method="reeval"``: ``"incremental"`` answers every probe
        from cached join-tree counts via delta propagation (near-linear
        total), ``"full"`` re-runs the count per probe (the paper's
        strawman, kept as a cross-check).

    Examples
    --------
    >>> from repro.query import parse_query
    >>> from repro.engine import Database, Relation
    >>> q = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
    >>> db = Database({
    ...     "R": Relation(["A", "B"], [(1, 2), (3, 2)]),
    ...     "S": Relation(["B", "C"], [(2, 4)]),
    ... })
    >>> result = local_sensitivity(q, db)
    >>> result.local_sensitivity
    2
    >>> result.witness.relation
    'S'
    """
    if method not in ("auto", "path", "tsens", "naive", "reeval"):
        raise MechanismConfigError(f"unknown method {method!r}")
    if method == "naive":
        # Dispatched before planning: brute force needs no decomposition,
        # so it must keep working on queries no GHD search can cover.
        return naive_local_sensitivity(query, db)
    session = prepare(query, db, tree=tree, max_width=max_width)
    return session.sensitivity(
        method=method,
        skip_relations=skip_relations,
        top_k=top_k,
        reeval_mode=reeval_mode,
    )


def most_sensitive_tuples(
    query: ConjunctiveQuery,
    db: Database,
    tree: Optional[DecompositionTree] = None,
    skip_relations: Iterable[str] = (),
    max_width: int = 3,
) -> Mapping[str, object]:
    """Per-relation most sensitive tuples (the paper's Fig. 6b report).

    Returns a mapping ``relation -> SensitiveTuple``, skipping relations in
    ``skip_relations`` (reported with bound 1, as the paper does for
    LINEITEM in q3).  ``max_width`` caps the automatic GHD node size for
    cyclic queries, like everywhere else in the stack.
    """
    session = prepare(query, db, tree=tree, max_width=max_width)
    return session.most_sensitive(skip_relations=skip_relations)
