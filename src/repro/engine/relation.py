"""Bag-semantics relations.

A :class:`Relation` is a multiset of tuples stored as a mapping from a value
tuple to its (positive integer) multiplicity.  This is exactly the paper's
representation of a relation with an appended ``cnt`` column: the paper's

* ``r̃join`` (join that multiplies ``cnt`` columns) becomes a hash join that
  multiplies multiplicities (:func:`repro.engine.operators.join`), and
* ``γ_A`` (group-by that sums ``cnt``) becomes a projection that sums
  multiplicities (:func:`repro.engine.operators.group_by`).

Relations are *logically* immutable: every operator returns a new relation.
A handful of ``add`` / ``remove`` helpers return modified copies so the
sensitivity definitions (``Q(D ∪ {t})``, ``Q(D \\ {t})``) read naturally.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.schema import Schema
from repro.exceptions import SchemaError

Row = Tuple[object, ...]


class Relation:
    """A finite bag of tuples over a fixed :class:`Schema`.

    Parameters
    ----------
    schema:
        The relation schema, or an iterable of attribute names.
    rows:
        Either an iterable of tuples (each occurrence counts once) or a
        mapping from tuple to multiplicity.  Multiplicities must be
        positive; zero-count entries are dropped.

    Examples
    --------
    >>> r = Relation(["A", "B"], [("a1", "b1"), ("a1", "b1"), ("a2", "b1")])
    >>> r.total_count()
    3
    >>> r.multiplicity(("a1", "b1"))
    2
    """

    __slots__ = ("_schema", "_counts", "_column_values_cache")

    def __init__(
        self,
        schema: Union[Schema, Iterable[str]],
        rows: Union[Iterable[Row], Mapping[Row, int], None] = None,
    ):
        self._schema = schema if isinstance(schema, Schema) else Schema(schema)
        counts: Dict[Row, int] = {}
        if rows is None:
            rows = ()
        if isinstance(rows, Mapping):
            items: Iterable[Tuple[Row, int]] = rows.items()
            for row, cnt in items:
                self._check_row(row)
                if cnt < 0:
                    raise SchemaError(f"negative multiplicity {cnt} for row {row!r}")
                if cnt:
                    counts[tuple(row)] = counts.get(tuple(row), 0) + cnt
        else:
            for row in rows:
                row = tuple(row)
                self._check_row(row)
                counts[row] = counts.get(row, 0) + 1
        self._counts = counts
        self._column_values_cache: Optional[Dict[str, frozenset]] = None

    def _check_row(self, row: Sequence[object]) -> None:
        if len(row) != self._schema.arity:
            raise SchemaError(
                f"row {tuple(row)!r} has arity {len(row)}, "
                f"schema {self._schema.attributes} expects {self._schema.arity}"
            )

    # ------------------------------------------------------------------ basics
    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attribute names, in positional order."""
        return self._schema.attributes

    @property
    def counts(self) -> Mapping[Row, int]:
        """Read-only view of the underlying tuple→multiplicity mapping."""
        return self._counts

    def distinct_count(self) -> int:
        """Number of distinct tuples."""
        return len(self._counts)

    def total_count(self) -> int:
        """Total multiplicity (bag cardinality) — the paper's ``|Q(D)|``."""
        return sum(self._counts.values())

    def multiplicity(self, row: Sequence[object]) -> int:
        """Multiplicity of ``row`` (0 if absent)."""
        return self._counts.get(tuple(row), 0)

    def multiplicities(self, rows: Sequence[Sequence[object]]) -> list:
        """Bulk :meth:`multiplicity` lookup: one count per input row.

        Batched update compaction probes the pre-batch multiplicity of
        every mixed-sign tuple at once; the columnar backend answers the
        same call with a single vectorized key probe."""
        out = []
        for row in rows:
            row = tuple(row)
            self._check_row(row)
            out.append(self._counts.get(row, 0))
        return out

    def is_empty(self) -> bool:
        """True iff the bag holds no tuples."""
        return not self._counts

    def __contains__(self, row: object) -> bool:
        return isinstance(row, tuple) and row in self._counts

    def __iter__(self) -> Iterator[Row]:
        """Iterate over *distinct* tuples."""
        return iter(self._counts)

    def __len__(self) -> int:
        """Number of distinct tuples (``distinct_count``)."""
        return len(self._counts)

    def items(self) -> Iterable[Tuple[Row, int]]:
        """Iterate over (tuple, multiplicity) pairs."""
        return self._counts.items()

    # ------------------------------------------------------- value extraction
    def column_values(self, attribute: str) -> frozenset:
        """The active domain of ``attribute`` in this relation (Sec. 3.1).

        Memoised per attribute: relations are logically immutable, and
        witness extrapolation asks for the same domains on every
        maintained sensitivity read."""
        if self._column_values_cache is None:
            self._column_values_cache = {}
        cached = self._column_values_cache.get(attribute)
        if cached is None:
            pos = self._schema.index_of(attribute)
            cached = frozenset(row[pos] for row in self._counts)
            self._column_values_cache[attribute] = cached
        return cached

    def max_frequency(self, attributes: Sequence[str]) -> int:
        """Largest bag-count of any single value combination of ``attributes``.

        This is Flex's ``mf`` statistic.  An empty attribute list groups the
        whole relation together, so the result is ``total_count()`` — exactly
        the paper's cross-product extension of Elastic sensitivity.
        """
        if not self._counts:
            return 0
        positions = self._schema.project_positions(attributes)
        freq: Dict[Row, int] = {}
        for row, cnt in self._counts.items():
            key = tuple(row[p] for p in positions)
            freq[key] = freq.get(key, 0) + cnt
        return max(freq.values())

    def argmax_count(self) -> Tuple[Optional[Row], int]:
        """The (tuple, multiplicity) pair with the largest multiplicity.

        Returns ``(None, 0)`` on an empty relation.  Ties break on the
        smallest tuple under Python ordering so results are deterministic.
        """
        if not self._counts:
            return None, 0
        best_cnt = max(self._counts.values())
        best_row = min(row for row, cnt in self._counts.items() if cnt == best_cnt)
        return best_row, best_cnt

    # ----------------------------------------------------------- bag updates
    def add(self, row: Sequence[object], multiplicity: int = 1) -> "Relation":
        """Return a copy with ``multiplicity`` extra occurrences of ``row``."""
        if multiplicity < 0:
            raise SchemaError("use remove() to delete tuples")
        row = tuple(row)
        self._check_row(row)
        if multiplicity == 0:
            return self
        counts = dict(self._counts)
        counts[row] = counts.get(row, 0) + multiplicity
        return Relation._from_counts(self._schema, counts)

    def remove(self, row: Sequence[object], multiplicity: int = 1) -> "Relation":
        """Return a copy with up to ``multiplicity`` occurrences of ``row``
        removed.  Removing an absent tuple is a no-op, matching the paper's
        ``D \\ {t}`` semantics."""
        row = tuple(row)
        self._check_row(row)
        current = self._counts.get(row, 0)
        if current == 0:
            return self
        counts = dict(self._counts)
        remaining = current - multiplicity
        if remaining > 0:
            counts[row] = remaining
        else:
            del counts[row]
        return Relation._from_counts(self._schema, counts)

    def filter(self, predicate: Callable[[Mapping[str, object]], bool]) -> "Relation":
        """Keep tuples satisfying ``predicate`` (a selection σ).

        The predicate receives a ``{attribute: value}`` mapping for each
        distinct tuple; multiplicities are preserved for survivors.
        """
        attrs = self._schema.attributes
        counts = {
            row: cnt
            for row, cnt in self._counts.items()
            if predicate(dict(zip(attrs, row)))
        }
        return Relation._from_counts(self._schema, counts)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Return the same bag under renamed attributes."""
        new_attrs = [mapping.get(a, a) for a in self._schema.attributes]
        return Relation._from_counts(Schema(new_attrs), dict(self._counts))

    def scale_counts(self, factor: int) -> "Relation":
        """Multiply every multiplicity by a positive integer ``factor``."""
        if factor <= 0:
            raise SchemaError(f"scale factor must be positive, got {factor}")
        return Relation._from_counts(
            self._schema, {row: cnt * factor for row, cnt in self._counts.items()}
        )

    # ------------------------------------------------------------- comparison
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._counts == other._counts

    def __hash__(self) -> int:  # pragma: no cover - relations are dict-like
        raise TypeError("Relation is not hashable")

    def same_bag(self, other: "Relation") -> bool:
        """Bag equality up to attribute order (reorders columns to compare)."""
        return same_bag_counts(self, other)

    def __repr__(self) -> str:
        return (
            f"Relation({list(self._schema.attributes)!r}, "
            f"{self.distinct_count()} distinct / {self.total_count()} total)"
        )

    # --------------------------------------------------------------- internal
    @classmethod
    def _from_counts(cls, schema: Schema, counts: Dict[Row, int]) -> "Relation":
        """Fast constructor for already-validated count dictionaries."""
        rel = cls.__new__(cls)
        rel._schema = schema
        rel._counts = counts
        rel._column_values_cache = None
        return rel


def same_bag_counts(left, right) -> bool:
    """Bag equality up to attribute order, through the logical counts view.

    Backend-generic: works for (and across) any relation implementation
    exposing ``attributes`` / ``schema`` / ``items()`` / ``counts``."""
    if set(left.attributes) != set(right.attributes):
        return False
    positions = right.schema.project_positions(left.attributes)
    reordered: Dict[Row, int] = {}
    for row, cnt in right.items():
        key = tuple(row[p] for p in positions)
        reordered[key] = reordered.get(key, 0) + cnt
    return reordered == dict(left.counts)


def empty_like(relation: Relation) -> Relation:
    """An empty relation with the same schema (and backend) as ``relation``."""
    return type(relation)(relation.schema, ())
