"""Incremental delta re-evaluation over cached join-tree counts.

The paper's re-evaluation strawman (Sections 4.1/5.2) answers "how does
``|Q(D)|`` change if tuple ``t`` is inserted into / deleted from ``R``?"
by re-running a full count-only Yannakakis pass per candidate — ``O(n)``
per probe, ``O(n)`` probes, which is why :mod:`repro.baselines.reeval`
historically had to sample.  Berkholz, Keppeler & Schweikardt ("Answering
FO+MOD queries under updates") observe that counting under single-tuple
updates only needs *delta propagation* over a materialized structure.
This module implements that idea on the repo's decomposition trees:

**Base structure (built once).**  Bind the tree, compute every botjoin
``K(v)`` (:func:`repro.evaluation.yannakakis.compute_botjoins`), and for
every non-root node ``v`` with parent ``p`` cache the *sibling
complement* ``J(v) = rel_p r̃join (r̃join of K(c) for siblings c of v)``
— everything ``K(p)`` multiplies ``K(v)`` with.

**Probe (per update).**  ``|Q(D)|`` is multilinear in each relation's
multiplicity vector, so changing the multiplicity of ``t ∈ R`` by ``±1``
changes the count by exactly ``±w(t)`` where ``w(t)`` is the number of
join results (with multiplicity) one occurrence of ``t`` participates in.
``w(t)`` is obtained by pushing the one-tuple delta relation up the
leaf-to-root path::

    ΔK(v)  = γ_{shared(v)} (Δrel_v r̃join ∏_c K(c))        (v's node)
    ΔK(p)  = γ_{shared(p)} (ΔK(v) r̃join J(v))              (each ancestor)
    w(t)   = ΔK(root).total_count()

Each probe therefore touches only the path from ``R``'s node to the root
— ``O(depth)`` small joins against cached relations instead of a full
re-evaluation, turning the re-evaluation baseline from ``O(runs · n)``
into ``O(updates)`` after one ``O(n)`` build.

**Batching.**  Probes are independent and propagation is linear, so a
whole batch propagates in *one* pass: the delta relation carries an extra
probe-id column (:data:`PROBE_ATTRIBUTE`) that joins ignore and group-bys
retain, keeping per-probe contributions separate.  On the columnar
backend the batch pass runs entirely inside the vectorized join/group-by
kernels — one numpy pass per tree edge for thousands of probes.

Deltas stay non-negative throughout (the update's sign factors out), so
both relation backends can represent them; columnar ``int64`` overflow
surfaces as :class:`~repro.exceptions.MultiplicityOverflowError`, exactly
as a full re-evaluation would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.engine.operators import group_by, join
from repro.engine.relation import Row
from repro.evaluation.yannakakis import (
    BoundTree,
    _component_trees,
    bind,
    compute_botjoins,
)
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.exceptions import SchemaError, UnknownRelationError

#: Reserved column name carrying the probe index through a batch pass.
PROBE_ATTRIBUTE = "__probe__"


@dataclass
class _Component:
    """Cached evaluation state for one connected component of the query."""

    query: ConjunctiveQuery
    bound: BoundTree
    botjoins: Dict[str, object]
    #: ``v -> rel_{parent(v)} r̃join (r̃join of K(c) for siblings c of v)``.
    sibling_complement: Dict[str, object]
    #: relation -> bag join of the *other* atoms in its node (GHD nodes).
    node_others: Dict[str, Optional[object]]
    count: int
    #: product of the other components' counts (scales every delta).
    multiplier: int = 1


class IncrementalEvaluator:
    """Answer single-tuple count-update probes from cached join-tree state.

    Parameters
    ----------
    query:
        Full conjunctive query (any shape; disconnected queries are
        handled per component with cross-product multipliers).
    db:
        The database instance the cache is built over.  Probes are
        hypothetical: the evaluator never mutates ``db`` and successive
        probes are independent.
    tree:
        Decomposition override for connected queries (defaults to GYO /
        automatic GHD, like the rest of the evaluation stack).
    max_width:
        GHD node-size cap for the automatic decomposition of cyclic
        queries (ignored when ``tree`` is given).

    Examples
    --------
    >>> from repro.engine import Database, Relation
    >>> from repro.query import parse_query
    >>> q = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
    >>> db = Database({
    ...     "R": Relation(["A", "B"], [(1, 2), (3, 2)]),
    ...     "S": Relation(["B", "C"], [(2, 4)]),
    ... })
    >>> ev = IncrementalEvaluator(q, db)
    >>> ev.base_count
    2
    >>> ev.delta("S", (2, 9))     # inserting (2,9) adds both R tuples
    2
    >>> ev.delta_batch("R", [(1, 2), (5, 5)])
    [1, 0]
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        tree: Optional[DecompositionTree] = None,
        max_width: int = 3,
    ):
        query.validate_against(db)
        if PROBE_ATTRIBUTE in query.variables:
            raise SchemaError(
                f"query variable {PROBE_ATTRIBUTE!r} collides with the "
                "reserved probe column"
            )
        self._query = query
        self._db = db
        self._components: List[_Component] = []
        self._component_of: Dict[str, int] = {}
        for sub, sub_tree in _component_trees(query, tree, max_width):
            component = self._build_component(sub, sub_tree, db)
            index = len(self._components)
            self._components.append(component)
            for relation in sub.relation_names:
                self._component_of[relation] = index
        total = 1
        for component in self._components:
            total *= component.count
        self._base_count = total
        for i, component in enumerate(self._components):
            multiplier = 1
            for j, other in enumerate(self._components):
                if j != i:
                    multiplier *= other.count
            component.multiplier = multiplier

    # -------------------------------------------------------------- building
    @staticmethod
    def _build_component(
        sub: ConjunctiveQuery, sub_tree: DecompositionTree, db: Database
    ) -> _Component:
        bound = bind(sub, sub_tree, db)
        botjoins = compute_botjoins(bound)
        tree = bound.tree
        # Sibling complements, one per tree edge.  Prefix/suffix products
        # keep this linear in the child count even for high-degree nodes.
        sibling_complement: Dict[str, object] = {}
        for parent in tree.node_ids:
            children = tree.children(parent)
            if not children:
                continue
            base = bound.relation(parent)
            prefix = [base]
            for child in children[:-1]:
                prefix.append(join(prefix[-1], botjoins[child]))
            suffix: List[Optional[object]] = [None] * len(children)
            for i in range(len(children) - 2, -1, -1):
                nxt = botjoins[children[i + 1]]
                suffix[i] = nxt if suffix[i + 1] is None else join(nxt, suffix[i + 1])
            for i, child in enumerate(children):
                complement = prefix[i]
                if suffix[i] is not None:
                    complement = join(complement, suffix[i])
                sibling_complement[child] = complement
        # Within-node complements for GHD nodes holding several atoms.
        node_others: Dict[str, Optional[object]] = {}
        for relation in sub.relation_names:
            node = tree.node(tree.node_of_relation(relation))
            others = [r for r in node.relations if r != relation]
            if not others:
                node_others[relation] = None
                continue
            acc = bound.atom_relation(others[0])
            for other in others[1:]:
                acc = join(acc, bound.atom_relation(other))
            node_others[relation] = acc
        return _Component(
            query=sub,
            bound=bound,
            botjoins=botjoins,
            sibling_complement=sibling_complement,
            node_others=node_others,
            count=botjoins[tree.root].total_count(),
        )

    # ------------------------------------------------------------- accessors
    @property
    def query(self) -> ConjunctiveQuery:
        return self._query

    @property
    def db(self) -> Database:
        return self._db

    @property
    def base_count(self) -> int:
        """``|Q(D)|`` on the unmodified database (cached)."""
        return self._base_count

    # ----------------------------------------------------------------- probes
    def delta(self, relation: str, row: Sequence[object]) -> int:
        """``w(t)`` — the count change magnitude of a ``±1`` update of ``row``.

        Inserting one occurrence of ``row`` into ``relation`` yields
        ``base_count + delta``; deleting one *existing* occurrence yields
        ``base_count - delta``.  Tuples that fail the relation's selection
        predicate or join nothing have delta 0.
        """
        return self.delta_batch(relation, [row])[0]

    def delta_batch(
        self, relation: str, rows: Sequence[Sequence[object]]
    ) -> List[int]:
        """``w(t)`` for every probe tuple, via one shared propagation pass.

        All probes ride a single delta relation tagged with a probe-id
        column, so the cost is one leaf-to-root pass regardless of the
        batch size — on the columnar backend every step is a vectorized
        kernel call.
        """
        if relation not in self._component_of:
            raise UnknownRelationError(relation)
        rows = [tuple(row) for row in rows]
        if not rows:
            return []
        component = self._components[self._component_of[relation]]
        if component.multiplier == 0:
            return [0] * len(rows)
        probe = self._probe_relation(component, relation, rows)
        collapsed = self._propagate(component, relation, probe)
        per_probe = {key[0]: cnt for key, cnt in collapsed.items()}
        return [
            per_probe.get(i, 0) * component.multiplier for i in range(len(rows))
        ]

    def count_after_insert(self, relation: str, row: Sequence[object]) -> int:
        """``|Q(D ∪ {t})|`` without re-evaluating."""
        return self._base_count + self.delta(relation, tuple(row))

    def count_after_delete(self, relation: str, row: Sequence[object]) -> int:
        """``|Q(D \\ {t})|`` without re-evaluating.

        Deleting an absent tuple is a no-op (the paper's ``D \\ {t}``
        semantics), so the base count is returned unchanged in that case.
        """
        row = tuple(row)
        if self._db.relation(relation).multiplicity(row) == 0:
            return self._base_count
        return self._base_count - self.delta(relation, row)

    # ----------------------------------------------------------- propagation
    def _probe_relation(
        self, component: _Component, relation: str, rows: Sequence[Row]
    ):
        """The tagged delta relation: one row per probe, selection applied."""
        atom = component.query.atom(relation)
        for row in rows:
            if len(row) != atom.arity:
                raise SchemaError(
                    f"probe {row!r} has arity {len(row)}, atom {atom} "
                    f"expects {atom.arity}"
                )
        attributes = list(atom.variables) + [PROBE_ATTRIBUTE]
        relation_cls = type(self._db.relation(relation))
        counts = {row + (index,): 1 for index, row in enumerate(rows)}
        probe = relation_cls(attributes, counts)
        predicate = component.query.selections.get(relation)
        if predicate is not None:
            probe = probe.filter(predicate)
        return probe

    def _propagate(self, component: _Component, relation: str, probe):
        """Push the tagged delta from ``relation``'s node to the root.

        Every join partner's attributes are contained in the current
        node's attribute set, so the delta never grows columns beyond
        ``A_v ∪ {probe}`` and shrinks to the parent-shared attributes at
        each group-by — the per-probe work is bounded by the path, not
        the database.
        """
        tree = component.bound.tree
        node_id = tree.node_of_relation(relation)
        delta = probe
        others = component.node_others[relation]
        if others is not None:
            delta = join(delta, others)
        for child in tree.children(node_id):
            delta = join(delta, component.botjoins[child])
        delta = group_by(
            delta, sorted(tree.shared_with_parent(node_id)) + [PROBE_ATTRIBUTE]
        )
        while tree.parent(node_id) is not None:
            parent = tree.parent(node_id)
            delta = join(delta, component.sibling_complement[node_id])
            delta = group_by(
                delta, sorted(tree.shared_with_parent(parent)) + [PROBE_ATTRIBUTE]
            )
            node_id = parent
        return delta
