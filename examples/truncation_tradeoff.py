#!/usr/bin/env python
"""The bias/noise trade-off behind truncation-based DP (Sec. 6.2).

Sweeps the truncation threshold τ for one query and prints, per τ:

* the truncation **bias** ``|Q(D) − Q(T(D, τ))|`` — shrinks as τ grows;
* the Laplace **noise scale** ``τ/ε`` — grows with τ;
* the resulting expected absolute error (bias + expected |noise|).

The sweet spot the SVT search is trying to find sits where the two curves
cross, near the local sensitivity.  Also demonstrates the ℓ parameter
analysis: how TSensDP's learned τ and error move as the public bound ℓ is
varied (Sec. 7.3).

Run with::

    python examples/truncation_tradeoff.py
"""

import numpy as np

from repro.datasets import generate_ego_network
from repro.dp import run_tsens_dp
from repro.dp.truncation import TruncationOracle
from repro.workloads import star_workload


def main() -> None:
    epsilon = 1.0
    workload = star_workload()
    db = workload.prepared(generate_ego_network(seed=0))
    assert workload.primary is not None
    oracle = TruncationOracle(
        workload.query, db, workload.primary, tree=workload.tree
    )
    true_count = oracle.base_count
    print(f"query {workload.name}: |Q(D)| = {true_count:,}, "
          f"LS = {oracle.local_sensitivity}, "
          f"max primary tuple sensitivity = {oracle.max_primary_sensitivity}\n")

    print("threshold sweep (ε/2 on the final answer):")
    print(f"{'τ':>8}  {'bias':>10}  {'noise scale':>12}  {'expected |err|':>14}")
    tau = 1
    while tau <= 4 * oracle.max_primary_sensitivity:
        bias = true_count - oracle.truncated_count(tau)
        noise_scale = tau / (epsilon / 2)
        expected = bias + noise_scale  # E|Lap(b)| = b
        print(f"{tau:>8}  {bias:>10,}  {noise_scale:>12.0f}  {expected:>14,.0f}")
        tau *= 2
    print()

    print("TSensDP with varying public bound ℓ (20 runs each):")
    rng = np.random.default_rng(7)
    print(f"{'ℓ':>8}  {'median τ':>9}  {'median rel.err':>14}")
    for ell in (1, 10, 100, 1000, 10_000):
        outcomes = [
            run_tsens_dp(
                workload.query,
                db,
                primary=workload.primary,
                epsilon=epsilon,
                ell=ell,
                tree=workload.tree,
                oracle=oracle,
                rng=rng,
            )
            for _ in range(20)
        ]
        taus = sorted(o.tau for o in outcomes)
        errors = sorted(o.relative_error for o in outcomes)
        print(f"{ell:>8}  {taus[len(taus)//2]:>9}  {errors[len(errors)//2]:>14.2%}")


if __name__ == "__main__":
    main()
