"""Admission control: coalescing concurrent reads into shared passes.

The expensive serving reads are *batchable*: the PR 3 probe machinery
(:meth:`repro.session.PreparedQuery.probe`) answers a thousand probe
tuples with **one** probe-id-tagged leaf-to-root propagation pass, at
nearly the cost of answering one.  A server that executes each arriving
request by itself throws that economy away.  The
:class:`AdmissionQueue` gets it back:

* Callers submit requests (:meth:`~AdmissionQueue.submit_probe`,
  :meth:`~AdmissionQueue.submit_read`) and receive a
  ``concurrent.futures.Future`` immediately.
* A dispatcher thread drains everything pending in rounds.  Within one
  round, probe requests pinned to the **same epoch and relation** are
  concatenated into one row batch and answered by a single vectorized
  pass; per-request slices are fanned back out to the waiting futures.
  Cacheable reads (``count``, ``sensitivity``, ``top_k``, ``explain``,
  ``stats``) that share an epoch and configuration execute **once** and
  resolve every duplicate future with the same result object.
* DP releases are deliberately *not* admissible here: each release draws
  fresh randomness and spends a specific tenant's budget, so two
  identical release requests are two distinct answers.  The server calls
  :meth:`~repro.serve.epochs.EpochManager.release` directly, per
  request.

Coalescing never crosses epochs — requests pinned to different epochs
land in different groups, preserving the epoch-consistency guarantee of
:mod:`repro.serve.epochs`.  ``benchmarks/bench_serving.py`` measures the
payoff: coalesced probe admission versus request-at-a-time on the same
workload.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ServeError
from repro.serve.epochs import EpochLease, EpochManager

#: Read kinds the queue knows how to coalesce (dedup by configuration).
READ_KINDS = ("count", "sensitivity", "top_k", "explain", "stats")


class _ProbeRequest:
    __slots__ = ("lease", "relation", "rows", "future")

    def __init__(
        self,
        lease: EpochLease,
        relation: str,
        rows: List[Tuple[object, ...]],
        future: "Future",
    ):
        self.lease = lease
        self.relation = relation
        self.rows = rows
        self.future = future


class _ReadRequest:
    __slots__ = ("lease", "kind", "params", "future")

    def __init__(
        self,
        lease: EpochLease,
        kind: str,
        params: Tuple[Tuple[str, object], ...],
        future: "Future",
    ):
        self.lease = lease
        self.kind = kind
        self.params = params
        self.future = future


def _freeze(value):
    """Canonicalise a parameter value into a hashable grouping key."""
    if isinstance(value, (list, tuple, set, frozenset)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


class AdmissionQueue:
    """Round-based coalescing front of an :class:`EpochManager`.

    Parameters
    ----------
    manager:
        The epoch manager every admitted read executes against.
    max_batch:
        Cap on probe rows merged into one vectorized pass; a larger
        merged group is answered in ``max_batch``-sized chunks (still far
        fewer passes than request-at-a-time).
    """

    def __init__(self, manager: EpochManager, max_batch: int = 4096):
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        self._manager = manager
        self._max_batch = max_batch
        self._mutex = threading.Lock()
        self._wakeup = threading.Condition(self._mutex)
        self._probes: List[_ProbeRequest] = []
        self._reads: List[_ReadRequest] = []
        self._closed = False
        # Counters (guarded by the mutex) for the server's stats endpoint:
        # requests in, engine executions out — their ratio is the win.
        self._counters = {
            "probe_requests": 0,
            "probe_rows": 0,
            "probe_passes": 0,
            "read_requests": 0,
            "read_executions": 0,
            "dispatch_rounds": 0,
        }
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-admission", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------ submission
    def submit_probe(
        self,
        lease: EpochLease,
        relation: str,
        rows: Sequence[Sequence[object]],
    ) -> "Future":
        """Admit a probe request; resolves to ``List[int]`` (one ``w(t)``
        per row, in input order)."""
        request = _ProbeRequest(
            lease, relation, [tuple(row) for row in rows], Future()
        )
        with self._wakeup:
            if self._closed:
                raise ServeError("admission queue is closed")
            self._probes.append(request)
            self._counters["probe_requests"] += 1
            self._counters["probe_rows"] += len(request.rows)
            self._wakeup.notify()
        return request.future

    def submit_read(self, lease: EpochLease, kind: str, **params) -> "Future":
        """Admit a cacheable read (``kind`` in :data:`READ_KINDS`).

        Requests sharing (epoch, kind, configuration) within one dispatch
        round execute once; every duplicate future resolves to the same
        result object (results are immutable value objects, so sharing is
        safe).
        """
        if kind not in READ_KINDS:
            raise ServeError(
                f"unknown read kind {kind!r} (known: {', '.join(READ_KINDS)})"
            )
        frozen = tuple(sorted((k, _freeze(v)) for k, v in params.items()))
        request = _ReadRequest(lease, kind, frozen, Future())
        with self._wakeup:
            if self._closed:
                raise ServeError("admission queue is closed")
            self._reads.append(request)
            self._counters["read_requests"] += 1
            self._wakeup.notify()
        return request.future

    # -------------------------------------------------------------- dispatch
    def _dispatch_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._probes and not self._reads and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._probes and not self._reads:
                    return
                probes, self._probes = self._probes, []
                reads, self._reads = self._reads, []
                self._counters["dispatch_rounds"] += 1
            self._run_round(probes, reads)

    def _run_round(
        self, probes: List[_ProbeRequest], reads: List[_ReadRequest]
    ) -> None:
        probe_groups: Dict[Tuple[int, str], List[_ProbeRequest]] = {}
        for request in probes:
            key = (request.lease.epoch_id, request.relation)
            probe_groups.setdefault(key, []).append(request)
        for group in probe_groups.values():
            self._run_probe_group(group)

        read_groups: Dict[Tuple, List[_ReadRequest]] = {}
        for request in reads:
            key = (request.lease.epoch_id, request.kind, request.params)
            read_groups.setdefault(key, []).append(request)
        for group in read_groups.values():
            self._run_read_group(group)

    def _run_probe_group(self, group: List[_ProbeRequest]) -> None:
        """One vectorized pass (per ``max_batch`` chunk) for a same-epoch,
        same-relation probe group; slices fan back out by offset."""
        live = [r for r in group if r.future.set_running_or_notify_cancel()]
        if not live:
            return
        relation = live[0].relation
        cursor = 0
        while cursor < len(live):
            chunk: List[_ProbeRequest] = []
            rows: List[Tuple[object, ...]] = []
            while cursor < len(live):
                request = live[cursor]
                if chunk and len(rows) + len(request.rows) > self._max_batch:
                    break
                chunk.append(request)
                rows.extend(request.rows)
                cursor += 1
            try:
                weights = self._manager.probe(chunk[0].lease, relation, rows)
            except Exception as exc:
                for request in chunk:
                    request.future.set_exception(exc)
                continue
            with self._mutex:
                self._counters["probe_passes"] += 1
            offset = 0
            for request in chunk:
                request.future.set_result(
                    weights[offset : offset + len(request.rows)]
                )
                offset += len(request.rows)

    def _run_read_group(self, group: List[_ReadRequest]) -> None:
        live = [r for r in group if r.future.set_running_or_notify_cancel()]
        if not live:
            return
        first = live[0]
        try:
            result = self._execute_read(first.lease, first.kind, first.params)
        except Exception as exc:
            for request in live:
                request.future.set_exception(exc)
            return
        with self._mutex:
            self._counters["read_executions"] += 1
        for request in live:
            request.future.set_result(result)

    def _execute_read(
        self,
        lease: EpochLease,
        kind: str,
        params: Tuple[Tuple[str, object], ...],
    ):
        kwargs = dict(params)
        if kind == "count":
            return self._manager.count(lease)
        if kind == "sensitivity":
            return self._manager.sensitivity(
                lease,
                method=kwargs.get("method", "auto"),
                skip_relations=kwargs.get("skip_relations", ()),
                top_k=kwargs.get("top_k"),
            )
        if kind == "top_k":
            return self._manager.top_k(
                lease,
                kwargs["k"],
                skip_relations=kwargs.get("skip_relations", ()),
            )
        if kind == "explain":
            return self._manager.explain(
                lease, skip_relations=kwargs.get("skip_relations", ())
            )
        if kind == "stats":
            return self._manager.session_stats(lease)
        raise ServeError(f"unknown read kind {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------ lifecycle
    def stats(self) -> Dict[str, int]:
        """Coalescing counters: requests admitted vs engine executions."""
        with self._mutex:
            return dict(self._counters)

    def close(self) -> None:
        """Finish draining queued requests, then stop the dispatcher.
        Idempotent; further submissions raise
        :class:`~repro.exceptions.ServeError`."""
        with self._wakeup:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
                self._wakeup.notify_all()
        if not already:
            self._dispatcher.join()

    def __enter__(self) -> "AdmissionQueue":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        with self._mutex:
            pending = len(self._probes) + len(self._reads)
        return f"AdmissionQueue(pending={pending}, closed={self._closed})"
