"""Property tests for the truncation layer (Sec. 6.2 guarantees)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dp import TruncationOracle, tsens_truncate
from repro.datasets import random_acyclic_query, random_database
from repro.evaluation import count_query

seeds = st.integers(min_value=0, max_value=10_000)
thresholds = st.integers(min_value=0, max_value=12)


def make_instance(seed):
    rng = np.random.default_rng(seed)
    query = random_acyclic_query(rng, num_atoms=3)
    db = random_database(query, rng, max_rows=5)
    primary = query.relation_names[int(rng.integers(0, 3))]
    return query, db, primary, rng


class TestOracleClosedForm:
    @given(seeds, thresholds)
    @settings(max_examples=60, deadline=None)
    def test_suffix_sum_equals_reevaluation(self, seed, threshold):
        query, db, primary, _ = make_instance(seed)
        oracle = TruncationOracle(query, db, primary)
        assert oracle.truncated_count(
            threshold
        ) == oracle.truncated_count_reevaluated(threshold)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_monotone_and_bounded(self, seed):
        query, db, primary, _ = make_instance(seed)
        oracle = TruncationOracle(query, db, primary)
        previous = 0
        for threshold in range(0, 12):
            current = oracle.truncated_count(threshold)
            assert previous <= current <= oracle.base_count
            previous = current
        assert oracle.truncated_count(10**9) == oracle.base_count


class TestGlobalSensitivityGuarantee:
    @given(seeds, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_neighbouring_truncated_counts_differ_by_at_most_tau(
        self, seed, tau
    ):
        """Theorem 6.1's core: Q(T_TSens(Q, ·, τ)) has global sensitivity τ.

        We probe neighbours of D (add/remove one primary tuple), recompute
        the truncation on each neighbour, and check the count moves by ≤ τ.
        """
        query, db, primary, rng = make_instance(seed)

        def released(instance):
            return count_query(
                query, tsens_truncate(query, instance, primary, tau)
            )

        base = released(db)
        relation = db.relation(primary)
        # Deletions of existing tuples.
        for row in list(relation)[:4]:
            assert abs(released(db.remove_tuple(primary, row)) - base) <= tau
        # Insertions of random domain tuples.
        arity = relation.schema.arity
        for _ in range(4):
            row = tuple(int(rng.integers(0, 4)) for _ in range(arity))
            assert abs(released(db.add_tuple(primary, row)) - base) <= tau
