"""LSPathJoin — Algorithm 1, local sensitivity of path join queries.

For a path query ``R1(A0,A1), R2(A1,A2), ..., Rm(Am-1,Am)`` the sensitivity
of a tuple ``(a, b)`` in ``Ri`` factors into (number of incoming join paths
ending at ``a``) × (number of outgoing join paths starting at ``b``) —
Example 4.1.  Algorithm 1 computes, in two linear sweeps:

* topjoins ``J(Ri) = γ_{Ai-1}(r̃join(R1..Ri-1))`` iteratively left-to-right,
* botjoins ``K(Ri) = γ_{Ai-1}(r̃join(Ri..Rm))`` iteratively right-to-left,

then reads off, per relation, the max-count entries of ``J(Ri)`` and
``K(Ri+1)`` whose product is the most sensitive tuple's sensitivity.  Total
time is ``O(n log n)`` irrespective of the join output size (Theorem 4.1).

The implementation generalises the paper's two-attribute form slightly:

* adjacent relations may share several attributes (the paper's "replace
  multiple attributes by a combination" remark, handled natively);
* end relations may be unary (TPC-H ``Region(RK)``) or have exclusive
  attributes anywhere, which take extrapolated values in the witness.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.engine.database import Database
from repro.engine.operators import difference, group_by, join, union_all
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.evaluation.yannakakis import bound_delta
from repro.query.classify import path_order
from repro.query.conjunctive import ConjunctiveQuery
from repro.core.acyclic import best_witness, extrapolate_assignment
from repro.core.result import MultiplicityTable, SensitiveTuple, SensitivityResult
from repro.exceptions import InternalError, QueryStructureError

_UNIT = Relation(Schema(()), {(): 1})  # zero-arity bag with count 1

Row = Tuple[object, ...]


def _shared(query: ConjunctiveQuery, left: str, right: str) -> Tuple[str, ...]:
    """Attributes shared by two atoms, in the left atom's variable order."""
    left_vars = query.atom(left).variables
    right_vars = query.atom(right).variable_set
    return tuple(v for v in left_vars if v in right_vars)


class PathState:
    """Maintained two-sweep state of Algorithm 1 for one path query.

    Holds the bound relations plus the topjoin (``J``) and botjoin
    (``K``) sweeps over them.  :meth:`apply_relation_delta` folds a
    compacted signed delta relation into both sweeps — ``ΔJ`` propagates
    rightward from the updated position, ``ΔK`` leftward, each one small
    ``join``/``group_by`` per hop against the cached sweep values — so a
    ``method="path"`` read after updates re-runs only step III (the
    per-relation argmax scan) instead of both full sweeps.  The session
    layer treats the state as a pure cache: a failed fold just drops it
    and the next read rebuilds from the current database.
    """

    __slots__ = (
        "query", "order", "relations", "left_attrs", "right_attrs",
        "topjoins", "botjoins", "_position",
    )

    def __init__(self, query: ConjunctiveQuery, db: Database):
        order = path_order(query)
        if order is None:
            raise QueryStructureError(
                f"query {query.name} is not a path join query"
            )
        self.query = query
        self.order: List[str] = list(order)
        self._position = {name: i for i, name in enumerate(order)}
        m = len(order)
        self.relations: List[Relation] = [
            query.bound_relation(db, name) for name in order
        ]
        if m == 1:
            # Trivial case: step III never reads the sweeps.
            self.left_attrs: List[Tuple[str, ...]] = [()]
            self.right_attrs: List[Tuple[str, ...]] = [()]
            self.topjoins: List[Relation] = [_UNIT]
            self.botjoins: List[Optional[Relation]] = [None, _UNIT]
            return
        left_attrs: List[Tuple[str, ...]] = [()]
        for i in range(1, m):
            left_attrs.append(_shared(query, order[i], order[i - 1]))
        right_attrs: List[Tuple[str, ...]] = []
        for i in range(m - 1):
            right_attrs.append(_shared(query, order[i], order[i + 1]))
        right_attrs.append(())
        self.left_attrs = left_attrs
        self.right_attrs = right_attrs

        # I) topjoins: J[i] groups the join of R1..R_{i-1} on left_attrs[i].
        topjoins: List[Relation] = [_UNIT]
        topjoins.append(group_by(self.relations[0], right_attrs[0]))
        for i in range(2, m):
            expanded = join(topjoins[i - 1], self.relations[i - 1])
            topjoins.append(group_by(expanded, left_attrs[i]))
        self.topjoins = topjoins

        # II) botjoins: K[i] groups the join of R_i..R_m on left_attrs[i].
        botjoins: List[Optional[Relation]] = [None] * (m + 1)
        botjoins[m] = _UNIT
        botjoins[m - 1] = group_by(self.relations[m - 1], left_attrs[m - 1])
        for i in range(m - 2, 0, -1):
            expanded = join(self.relations[i], botjoins[i + 1])
            botjoins[i] = group_by(expanded, left_attrs[i])
        self.botjoins = botjoins

    def apply_relation_delta(
        self, relation: str, plus: Mapping[Row, int], minus: Mapping[Row, int]
    ) -> None:
        """Fold one relation's compacted signed delta into both sweeps.

        ``minus`` folds first (tuple-disjoint sides after compaction, so
        the order is mathematically free but matches the join-state
        folds); monus is exact because compaction bounds every minus
        count by the tuple's pre-batch multiplicity.
        """
        position = self._position[relation]
        if minus:
            self._fold(position, minus, False)
        if plus:
            self._fold(position, plus, True)

    def _fold(self, p: int, rows: Mapping[Row, int], insert: bool) -> None:
        """Stage one single-signed delta at position ``p``, then commit.

        ``J[j]`` depends on relations strictly left of ``j`` and ``K[i]``
        on relations at or right of ``i``, so the delta touches exactly
        ``J[p+1..m-1]`` and ``K[1..p]`` — each reached by one join against
        a cached relation or sweep value, with empty deltas pruning the
        rest of a sweep.  All fallible work happens before the first
        assignment.
        """
        base = self.relations[p]
        delta = bound_delta(self.query, self.order[p], rows, type(base))
        if delta.is_empty():
            return
        m = len(self.order)
        staged_tops: List[Tuple[int, Relation]] = []
        staged_bots: List[Tuple[int, Relation]] = []

        # Topjoin sweep, rightward from p+1.
        if m > 1 and p + 1 <= m - 1:
            if p == 0:
                dt = group_by(delta, self.right_attrs[0])
            else:
                dt = group_by(
                    join(self.topjoins[p], delta), self.left_attrs[p + 1]
                )
            j = p + 1
            while not dt.is_empty():
                old = self.topjoins[j]
                staged_tops.append(
                    (j, union_all([old, dt]) if insert else difference(old, dt))
                )
                if j + 1 > m - 1:
                    break
                dt = group_by(join(dt, self.relations[j]), self.left_attrs[j + 1])
                j += 1

        # Botjoin sweep, leftward from p.
        if m > 1 and p >= 1:
            if p == m - 1:
                dk = group_by(delta, self.left_attrs[m - 1])
            else:
                outgoing = self.botjoins[p + 1]
                if outgoing is None:
                    raise InternalError(f"missing botjoin for path position {p + 1}")
                dk = group_by(join(delta, outgoing), self.left_attrs[p])
            i = p
            while not dk.is_empty():
                old_bot = self.botjoins[i]
                if old_bot is None:
                    raise InternalError(f"missing botjoin for path position {i}")
                staged_bots.append(
                    (
                        i,
                        union_all([old_bot, dk])
                        if insert
                        else difference(old_bot, dk),
                    )
                )
                if i - 1 < 1:
                    break
                dk = group_by(
                    join(self.relations[i - 1], dk), self.left_attrs[i - 1]
                )
                i -= 1

        # The relation itself (single-tuple fast path mirrors the
        # maintained join-state fold).
        if delta.distinct_count() == 1:
            ((row, cnt),) = tuple(delta.items())
            new_base = base.add(row, cnt) if insert else base.remove(row, cnt)
        else:
            new_base = (
                union_all([base, delta]) if insert else difference(base, delta)
            )

        # Commit: assignments only.
        self.relations[p] = new_base
        for j, new_top in staged_tops:
            self.topjoins[j] = new_top
        for i, new_bot in staged_bots:
            self.botjoins[i] = new_bot


def ls_path_join(
    query: ConjunctiveQuery, db: Database, state: Optional[PathState] = None
) -> SensitivityResult:
    """Run Algorithm 1 on a path join query.

    ``state`` — a :class:`PathState` maintained under committed updates —
    skips both sweeps entirely, leaving only the per-relation argmax scan
    of step III; without one the sweeps run from scratch against ``db``.
    Either way the result is computed against ``db``, which must be the
    database the state reflects.

    Raises :class:`~repro.exceptions.QueryStructureError` when the query is
    not a path query (use :func:`repro.core.api.local_sensitivity`, which
    dispatches automatically).
    """
    if state is None:
        state = PathState(query, db)
    order = state.order
    m = len(order)

    if m == 1:
        # Single relation: LS = 1 and any representative tuple witnesses it
        # (the paper's trivial case in Sec. 2.1).
        assignment = extrapolate_assignment(query, db, order[0], {})
        witness = SensitiveTuple(order[0], assignment, 1)
        table = MultiplicityTable(order[0], (_UNIT,))
        return SensitivityResult(
            query_name=query.name,
            method="path",
            local_sensitivity=1,
            witness=witness,
            per_relation={order[0]: witness},
            tables={order[0]: table},
        )

    # I/II) the two sweeps come from the state (freshly built above, or
    # incrementally maintained by PathState.apply_relation_delta).
    topjoins = state.topjoins
    botjoins = state.botjoins

    # III) per-relation most sensitive tuple: argmax(J[i]) × argmax(K[i+1]).
    tables: Dict[str, MultiplicityTable] = {}
    per_relation: Dict[str, SensitiveTuple] = {}
    for i, name in enumerate(order):
        incoming = topjoins[i]
        outgoing = botjoins[i + 1]
        if outgoing is None:
            raise InternalError(f"missing botjoin for path position {i + 1}")
        table = MultiplicityTable(name, (incoming, outgoing))
        tables[name] = table
        per_relation[name] = best_witness(table, query, db, name)

    local = max(w.sensitivity for w in per_relation.values())
    witness: Optional[SensitiveTuple] = None
    if local > 0:
        witness = next(
            w for w in per_relation.values() if w.sensitivity == local
        )
    return SensitivityResult(
        query_name=query.name,
        method="path",
        local_sensitivity=local,
        witness=witness,
        per_relation=per_relation,
        tables=tables,
    )
