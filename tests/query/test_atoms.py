"""Unit tests for :mod:`repro.query.atoms`."""

import pytest

from repro.query.atoms import Atom
from repro.exceptions import SchemaError


class TestAtom:
    def test_basic(self):
        atom = Atom("R", ("A", "B"))
        assert atom.relation == "R"
        assert atom.variables == ("A", "B")
        assert atom.arity == 2

    def test_variable_set(self):
        assert Atom("R", ("A", "B")).variable_set == frozenset({"A", "B"})

    def test_accepts_list(self):
        assert Atom("R", ["A"]).variables == ("A",)

    def test_repeated_variable_rejected(self):
        with pytest.raises(SchemaError):
            Atom("R", ("A", "A"))

    def test_empty_variables_rejected(self):
        with pytest.raises(SchemaError):
            Atom("R", ())

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Atom("", ("A",))

    def test_str(self):
        assert str(Atom("R", ("A", "B"))) == "R(A, B)"

    def test_hashable_and_frozen(self):
        atom = Atom("R", ("A",))
        assert atom == Atom("R", ("A",))
        assert hash(atom) == hash(Atom("R", ("A",)))
