"""Shared fixtures for the benchmark suite.

Scales are chosen so the whole suite finishes in minutes on a laptop while
preserving every shape claim; pass larger scales through the experiment
modules (``python -m repro.experiments.fig6a``) for paper-sized runs.
"""

import pytest

from repro.datasets import generate_ego_network, generate_tpch

TPCH_SCALE = 0.0005
SEED = 0


@pytest.fixture(scope="session")
def tpch_base():
    return generate_tpch(TPCH_SCALE, seed=SEED)


@pytest.fixture(scope="session")
def tpch_small():
    return generate_tpch(0.0001, seed=SEED)


@pytest.fixture(scope="session")
def facebook_base():
    return generate_ego_network(
        nodes=120, directed_edges=2000, num_circles=250, seed=SEED
    )
