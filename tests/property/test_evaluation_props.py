"""Property tests for query evaluation and structural invariances."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import tsens_connected
from repro.datasets import random_acyclic_query, random_database, random_path_query
from repro.evaluation import count_query, evaluate_query, naive_join
from repro.query import gyo_join_tree
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery

seeds = st.integers(min_value=0, max_value=10_000)


class TestEvaluationAgainstNaiveJoin:
    @given(seeds, st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_count_matches_naive(self, seed, num_atoms):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng)
        assert count_query(query, db) == naive_join(query, db).total_count()

    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_full_evaluation_matches_naive_bag(self, seed, num_atoms):
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng)
        assert evaluate_query(query, db).same_bag(naive_join(query, db))


class TestStructuralInvariance:
    @given(seeds, st.integers(min_value=2, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_tsens_invariant_under_rerooting(self, seed, num_atoms):
        """Theorem 5.1 holds for *any* valid join tree: re-rooting must not
        change the local sensitivity or any per-relation maximum."""
        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng)
        tree = gyo_join_tree(query)
        baseline = tsens_connected(query, db, tree=tree)
        for new_root in tree.node_ids:
            rerooted = tree.rerooted(new_root)
            result = tsens_connected(query, db, tree=rerooted)
            assert result.local_sensitivity == baseline.local_sensitivity
            for relation in query.relation_names:
                assert (
                    result.per_relation[relation].sensitivity
                    == baseline.per_relation[relation].sensitivity
                )

    @given(seeds, st.integers(min_value=2, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_path_invariant_under_reversal(self, seed, length):
        """A path query read right-to-left is the same query; Algorithm 1
        must return the same sensitivities."""
        from repro.core import ls_path_join

        rng = np.random.default_rng(seed)
        query = random_path_query(rng, length=length)
        db = random_database(query, rng)
        reversed_query = ConjunctiveQuery(
            tuple(reversed(query.atoms)), name="Qrev"
        )
        forward = ls_path_join(query, db)
        backward = ls_path_join(reversed_query, db)
        assert forward.local_sensitivity == backward.local_sensitivity
        for relation in query.relation_names:
            assert (
                forward.per_relation[relation].sensitivity
                == backward.per_relation[relation].sensitivity
            )

    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_atom_order_irrelevant(self, seed, num_atoms):
        """Shuffling the query body must not change |Q(D)| or LS."""
        from repro.core import tsens

        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng)
        atoms = list(query.atoms)
        rng.shuffle(atoms)
        shuffled = ConjunctiveQuery(tuple(atoms), name="Qshuf")
        assert count_query(query, db) == count_query(shuffled, db)
        assert (
            tsens(query, db).local_sensitivity
            == tsens(shuffled, db).local_sensitivity
        )


class TestSensitivityDefinitionalProperties:
    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_ls_bounds_one_step_count_change(self, seed, num_atoms):
        """For any single-tuple change D → D', |Q(D)| moves by ≤ LS(Q, D)."""
        from repro.core import tsens

        rng = np.random.default_rng(seed)
        query = random_acyclic_query(rng, num_atoms=num_atoms)
        db = random_database(query, rng)
        ls = tsens(query, db).local_sensitivity
        base = count_query(query, db)
        relation = query.relation_names[int(rng.integers(0, num_atoms))]
        atom = query.atom(relation)
        row = tuple(int(rng.integers(0, 3)) for _ in atom.variables)
        grown = count_query(query, db.add_tuple(relation, row))
        assert abs(grown - base) <= ls
        existing = list(db.relation(relation))
        if existing:
            shrunk = count_query(query, db.remove_tuple(relation, existing[0]))
            assert abs(shrunk - base) <= ls
