"""The paper's three TPC-H queries (Fig. 5a).

* **q1** — path join ``R(RK), N(RK,NK), C(NK,CK), O(CK,OK), L(OK)``;
* **q2** — acyclic join ``PS(SK,PK), S(SK), P(PK), L(SK,PK)``;
* **q3** — cyclic "universal table" join over all eight relations with the
  extra constraint that supplier and customer share a nation, decomposed
  with the paper's generalized hypertree
  ``{R,N,L} / {O,C} / {S,P} / {PS}``.

Relations like ``L(OK)`` or ``S(SK)`` denote the base table restricted to
the named join attributes.  Under the paper's conventions the remaining
attributes are *exclusive* (they appear in no other atom) and are ignored
by the sensitivity analysis (Sec. 5.4 "Other"); for the data we realise
them as bag projections, which preserves both the join result and every
tuple sensitivity.
"""

from __future__ import annotations

from repro.engine.database import Database, ForeignKey
from repro.engine.operators import group_by
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.ghd import ghd_from_groups
from repro.workloads.base import Workload


def _prepare_q1(base: Database) -> Database:
    """Views for q1: the customer→order chain with Lineitem as L(OK)."""
    relations = {
        "R": base.relation("Region"),
        "N": base.relation("Nation"),
        "C": base.relation("Customer"),
        "O": base.relation("Orders"),
        "L": group_by(base.relation("Lineitem"), ("OK",)),
    }
    return Database(
        relations,
        primary_keys={"R": ("RK",), "N": ("NK",), "C": ("CK",), "O": ("OK",)},
        foreign_keys=[
            ForeignKey("N", ("RK",), "R", ("RK",)),
            ForeignKey("C", ("NK",), "N", ("NK",)),
            ForeignKey("O", ("CK",), "C", ("CK",)),
            ForeignKey("L", ("OK",), "O", ("OK",)),
        ],
    )


def _prepare_q2(base: Database) -> Database:
    """Views for q2: Partsupp joined with suppliers, parts and lineitems."""
    relations = {
        "PS": base.relation("Partsupp"),
        "S": group_by(base.relation("Supplier"), ("SK",)),
        "P": base.relation("Part"),
        "L": group_by(base.relation("Lineitem"), ("SK", "PK")),
    }
    return Database(
        relations,
        primary_keys={"S": ("SK",), "P": ("PK",), "PS": ("SK", "PK")},
        foreign_keys=[
            ForeignKey("PS", ("SK",), "S", ("SK",)),
            ForeignKey("PS", ("PK",), "P", ("PK",)),
            ForeignKey("L", ("SK", "PK"), "PS", ("SK", "PK")),
        ],
    )


def _prepare_q3(base: Database) -> Database:
    """Views for q3: all eight base relations under their workload names."""
    relations = {
        "R": base.relation("Region"),
        "N": base.relation("Nation"),
        "S": base.relation("Supplier"),
        "PS": base.relation("Partsupp"),
        "P": base.relation("Part"),
        "C": base.relation("Customer"),
        "O": base.relation("Orders"),
        "L": base.relation("Lineitem"),
    }
    return Database(
        relations,
        primary_keys={
            "R": ("RK",),
            "N": ("NK",),
            "S": ("SK",),
            "P": ("PK",),
            "C": ("CK",),
            "O": ("OK",),
            "PS": ("SK", "PK"),
        },
        foreign_keys=[
            ForeignKey("N", ("RK",), "R", ("RK",)),
            ForeignKey("S", ("NK",), "N", ("NK",)),
            ForeignKey("C", ("NK",), "N", ("NK",)),
            ForeignKey("O", ("CK",), "C", ("CK",)),
            ForeignKey("PS", ("SK",), "S", ("SK",)),
            ForeignKey("PS", ("PK",), "P", ("PK",)),
            ForeignKey("L", ("OK",), "O", ("OK",)),
            ForeignKey("L", ("SK", "PK"), "PS", ("SK", "PK")),
        ],
    )


def q1_workload() -> Workload:
    """q1: the paper's path join query (Customer is primary private)."""
    query = ConjunctiveQuery(
        [
            Atom("R", ("RK",)),
            Atom("N", ("RK", "NK")),
            Atom("C", ("NK", "CK")),
            Atom("O", ("CK", "OK")),
            Atom("L", ("OK",)),
        ],
        name="q1",
    )
    return Workload(
        name="q1",
        query=query,
        prepare=_prepare_q1,
        tree=None,  # path algorithm / GYO both apply
        primary="C",
        ell=100,
        description="path join Region-Nation-Customer-Orders-Lineitem",
    )


def q2_workload() -> Workload:
    """q2: the paper's acyclic star join (Supplier is primary private)."""
    query = ConjunctiveQuery(
        [
            Atom("PS", ("SK", "PK")),
            Atom("S", ("SK",)),
            Atom("P", ("PK",)),
            Atom("L", ("SK", "PK")),
        ],
        name="q2",
    )
    tree = ghd_from_groups(
        query,
        groups={"nPS": ["PS"], "nS": ["S"], "nP": ["P"], "nL": ["L"]},
        root="nPS",
        parent={"nS": "nPS", "nP": "nPS", "nL": "nPS"},
    )
    return Workload(
        name="q2",
        query=query,
        prepare=_prepare_q2,
        tree=tree,
        primary="S",
        ell=500,
        description="acyclic join Partsupp-Supplier-Part-Lineitem",
    )


def q3_workload() -> Workload:
    """q3: the paper's cyclic universal-table query with its Fig. 5a
    hypertree (Customer is primary private; Lineitem's table is skipped
    because (OK,SK,PK) is a superkey of the output, so δ ≤ 1)."""
    query = ConjunctiveQuery(
        [
            Atom("R", ("RK",)),
            Atom("N", ("RK", "NK")),
            Atom("S", ("NK", "SK")),
            Atom("PS", ("SK", "PK")),
            Atom("P", ("PK",)),
            Atom("C", ("NK", "CK")),
            Atom("O", ("CK", "OK")),
            Atom("L", ("OK", "SK", "PK")),
        ],
        name="q3",
    )
    tree = ghd_from_groups(
        query,
        groups={
            "gRNL": ["R", "N", "L"],
            "gOC": ["O", "C"],
            "gSP": ["S", "P"],
            "gPS": ["PS"],
        },
        root="gRNL",
        parent={"gOC": "gRNL", "gSP": "gRNL", "gPS": "gRNL"},
    )
    return Workload(
        name="q3",
        query=query,
        prepare=_prepare_q3,
        tree=tree,
        primary="C",
        ell=10,
        skip_relations=("L",),
        description="cyclic universal-table join (supplier & customer share nation)",
    )


def tpch_workloads() -> list:
    """All three TPC-H workloads in paper order."""
    return [q1_workload(), q2_workload(), q3_workload()]
