"""Experiment E5 — Table 2: DP query answering, TSensDP vs PrivSQL.

For each of the seven workloads, run both mechanisms ``n_runs`` times and
report the medians of relative error, relative bias and global sensitivity
plus the mean wall-clock time — the paper's Table 2 columns.  Budget
handling follows Sec. 7.3: both mechanisms split ε in two halves
(threshold learning / answering), PrivSQL's synopsis stage is disabled,
negative releases clamp to 0, and the TSens multiplicity tables are
computed once per workload and shared across repetitions (the paper's
timing likewise amortises the sensitivity pass).

Shape claims asserted by the integration tests: TSensDP achieves small
relative error on every query, while PrivSQL collapses (≥ 99% error) on the
queries where its frequency-based bound or truncation explodes.
"""

from __future__ import annotations

import time
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.experiments.reporting import format_table, median
from repro.session import prepare
from repro.experiments.runner import facebook_database, tpch_database
from repro.workloads.base import Workload
from repro.workloads.facebook_queries import facebook_workloads
from repro.workloads.tpch_queries import tpch_workloads
from repro.exceptions import MechanismConfigError

DEFAULT_TPCH_SCALE = 0.001
DEFAULT_EPSILON = 1.0
DEFAULT_RUNS = 20


def loose_bound(max_primary_sensitivity: int, floor: int) -> int:
    """A "public" tuple-sensitivity upper bound of paper-like looseness.

    The paper assumes per-query bounds roughly 2–8× the true value for its
    instances (Sec. 7.3).  Our synthetic instances have different absolute
    sensitivities, so a fixed number would either truncate everything or
    nothing; instead we take the paper's value as a floor and otherwise
    round ``2 × max primary tuple sensitivity`` up to the next power of
    two — the same looseness class, portable across instances.
    """
    target = 2 * max(1, max_primary_sensitivity)
    bound = 1
    while bound < target:
        bound *= 2
    return max(floor, bound)


def _run_workload(
    workload: Workload,
    base,
    epsilon: float,
    n_runs: int,
    seed: int,
) -> List[Mapping[str, object]]:
    db = workload.prepared(base)
    if workload.primary is None:
        raise MechanismConfigError(
            f"workload {workload.name} declares no primary private relation"
        )
    rng = np.random.default_rng(seed)

    # One prepared session per workload: the sensitivity pass and the
    # truncation oracle are built once, then n_runs releases reuse them.
    start = time.perf_counter()
    session = prepare(workload.query, db, tree=workload.tree)
    oracle = session.truncation_oracle(
        workload.primary, skip_relations=workload.skip_relations
    )
    oracle_seconds = time.perf_counter() - start
    ell = loose_bound(oracle.max_primary_sensitivity, floor=workload.ell)
    tsens_outcomes = []
    tsens_seconds = []
    for _ in range(n_runs):
        start = time.perf_counter()
        tsens_outcomes.append(
            session.release(
                epsilon,
                mechanism="tsensdp",
                primary=workload.primary,
                ell=ell,
                skip_relations=workload.skip_relations,
                rng=rng,
            )
        )
        tsens_seconds.append(time.perf_counter() - start)

    privsql_outcomes = []
    privsql_seconds = []
    for _ in range(n_runs):
        start = time.perf_counter()
        privsql_outcomes.append(
            session.release(
                epsilon,
                mechanism="privsql",
                primary=workload.primary,
                rng=rng,
            )
        )
        privsql_seconds.append(time.perf_counter() - start)

    true_count = tsens_outcomes[0].true_count
    return [
        {
            "query": workload.name,
            "true_count": true_count,
            "mechanism": "TSensDP",
            "ell": ell,
            "median_rel_error": median(o.relative_error for o in tsens_outcomes),
            "median_rel_bias": median(o.relative_bias for o in tsens_outcomes),
            "median_global_sens": median(o.global_sensitivity for o in tsens_outcomes),
            "mean_seconds": oracle_seconds / n_runs + sum(tsens_seconds) / n_runs,
        },
        {
            "query": workload.name,
            "true_count": true_count,
            "mechanism": "PrivSQL",
            "median_rel_error": median(o.relative_error for o in privsql_outcomes),
            "median_rel_bias": median(o.relative_bias for o in privsql_outcomes),
            "median_global_sens": median(o.global_sensitivity for o in privsql_outcomes),
            "mean_seconds": sum(privsql_seconds) / n_runs,
        },
    ]


def run(
    tpch_scale: float = DEFAULT_TPCH_SCALE,
    epsilon: float = DEFAULT_EPSILON,
    n_runs: int = DEFAULT_RUNS,
    seed: int = 0,
    queries: Optional[Sequence[str]] = None,
) -> List[Mapping[str, object]]:
    """Run the Table 2 comparison over all seven workloads."""
    rows: List[Mapping[str, object]] = []
    tpch_base = tpch_database(tpch_scale, seed)
    for workload in tpch_workloads():
        if queries is not None and workload.name not in queries:
            continue
        rows.extend(_run_workload(workload, tpch_base, epsilon, n_runs, seed))
    fb_base = facebook_database(seed)
    for workload in facebook_workloads():
        if queries is not None and workload.name not in queries:
            continue
        rows.extend(_run_workload(workload, fb_base, epsilon, n_runs, seed))
    return rows


def report(rows: Sequence[Mapping[str, object]]) -> str:
    """Text rendering of Table 2."""
    return format_table(
        rows,
        columns=[
            "query",
            "true_count",
            "mechanism",
            "ell",
            "median_rel_error",
            "median_rel_bias",
            "median_global_sens",
            "mean_seconds",
        ],
        title="Table 2 — DP answering: TSensDP vs PrivSQL",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
