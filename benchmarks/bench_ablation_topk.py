"""Ablation — the top-k approximation of Sec. 5.4.

Sweeps k on the path query qw and records the looseness of the resulting
upper bound relative to exact TSens.  Checks the monotone-in-k tightening
and exactness for large k.
"""

import pytest

from repro.core import local_sensitivity, tsens_topk
from repro.workloads import path_workload

KS = (1, 8, 64, 4096)
_state = {}


def _exact(db, workload):
    if "exact" not in _state:
        _state["exact"] = local_sensitivity(
            workload.query, db, method="tsens"
        ).local_sensitivity
    return _state["exact"]


@pytest.mark.parametrize("k", KS)
def test_topk_ablation(benchmark, facebook_base, k):
    workload = path_workload()
    db = workload.prepared(facebook_base)
    exact = _exact(db, workload)

    result = benchmark.pedantic(
        lambda: tsens_topk(workload.query, db, k=k),
        rounds=2,
        iterations=1,
    )
    bound = result.local_sensitivity
    benchmark.extra_info["bound"] = bound
    benchmark.extra_info["looseness"] = bound / max(1, exact)
    assert bound >= exact
    _state.setdefault("bounds", {})[k] = bound
    if len(_state["bounds"]) == len(KS):
        bounds = [_state["bounds"][k] for k in KS]
        assert bounds == sorted(bounds, reverse=True)
        assert bounds[-1] == exact
