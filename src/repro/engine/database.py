"""Database instances: named relations plus key constraints.

A :class:`Database` is an immutable mapping from relation name to
:class:`~repro.engine.relation.Relation`, optionally annotated with primary
keys and foreign keys.  The key annotations are what PrivSQL's neighbour
semantics (Sec. 6.1 of the paper) needs: deleting a tuple from the primary
private relation cascades along foreign keys.

The module also provides the paper's domain notions from Section 3.1:
:meth:`Database.active_domain` (values of an attribute appearing in a given
relation) and :meth:`Database.representative_domain` (Definition 3.1 — the
intersection of the attribute's active domains over the *other* relations
that mention it).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.engine.relation import Relation, Row
from repro.exceptions import SchemaError, UnknownRelationError


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key ``child.child_attrs → parent.parent_attrs``.

    Deleting a parent tuple cascades to every child tuple whose
    ``child_attrs`` values match the parent's ``parent_attrs`` values.
    """

    child: str
    child_attributes: Tuple[str, ...]
    parent: str
    parent_attributes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_attributes) != len(self.parent_attributes):
            raise SchemaError(
                f"foreign key arity mismatch: {self.child_attributes} vs "
                f"{self.parent_attributes}"
            )


class Database:
    """An immutable collection of named relations with optional keys.

    Parameters
    ----------
    relations:
        Mapping from relation name to :class:`Relation`.
    primary_keys:
        Optional mapping from relation name to its key attributes.
    foreign_keys:
        Optional iterable of :class:`ForeignKey` constraints.  Referenced
        relation names must exist.
    backend:
        Optional execution-backend name (``"python"``/``"columnar"``); when
        given, every relation is converted to that backend on construction.
    """

    def __init__(
        self,
        relations: Mapping[str, Relation],
        primary_keys: Optional[Mapping[str, Sequence[str]]] = None,
        foreign_keys: Optional[Iterable[ForeignKey]] = None,
        backend: Optional[str] = None,
    ):
        self._relations: Dict[str, Relation] = dict(relations)
        if backend is not None:
            from repro.engine.backend import get_backend

            chosen = get_backend(backend)
            self._relations = {
                name: chosen.convert(rel) for name, rel in self._relations.items()
            }
        if not self._relations:
            raise SchemaError("a database needs at least one relation")
        self._primary_keys: Dict[str, Tuple[str, ...]] = {}
        for name, attrs in (primary_keys or {}).items():
            self._require(name)
            for attr in attrs:
                self._relations[name].schema.index_of(attr)
            self._primary_keys[name] = tuple(attrs)
        self._foreign_keys: List[ForeignKey] = []
        for fk in foreign_keys or ():
            self._require(fk.child)
            self._require(fk.parent)
            for attr in fk.child_attributes:
                self._relations[fk.child].schema.index_of(attr)
            for attr in fk.parent_attributes:
                self._relations[fk.parent].schema.index_of(attr)
            self._foreign_keys.append(fk)

    def _require(self, name: str) -> None:
        if name not in self._relations:
            raise UnknownRelationError(name)

    # ------------------------------------------------------------- accessors
    def relation(self, name: str) -> Relation:
        """The relation called ``name``."""
        self._require(name)
        return self._relations[name]

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Relation names in insertion order."""
        return tuple(self._relations)

    @property
    def relations(self) -> Mapping[str, Relation]:
        """Read-only name→relation view."""
        return dict(self._relations)

    @property
    def foreign_keys(self) -> Tuple[ForeignKey, ...]:
        return tuple(self._foreign_keys)

    def primary_key(self, name: str) -> Optional[Tuple[str, ...]]:
        """Primary key attributes of ``name`` or ``None`` if undeclared."""
        self._require(name)
        return self._primary_keys.get(name)

    def total_tuples(self) -> int:
        """Total bag cardinality over all relations — the paper's ``n``."""
        return sum(rel.total_count() for rel in self._relations.values())

    def attribute_names(self) -> Tuple[str, ...]:
        """Union of all attribute names — the paper's ``A_D``."""
        seen: Dict[str, None] = {}
        for rel in self._relations.values():
            for attr in rel.attributes:
                seen.setdefault(attr, None)
        return tuple(seen)

    @property
    def backend(self) -> str:
        """Name of the execution backend the relations live on.

        ``"mixed"`` when relations disagree (possible after manual
        ``with_relation`` calls across backends).
        """
        from repro.engine.backend import backend_of

        names = {backend_of(rel) for rel in self._relations.values()}
        return names.pop() if len(names) == 1 else "mixed"

    def with_backend(self, backend: str) -> "Database":
        """Copy of this database with every relation converted to
        ``backend``; key metadata is preserved.  Identity conversions are
        free (relations already on the backend are reused)."""
        from repro.engine.backend import get_backend

        chosen = get_backend(backend)
        return self._copy_with(
            {name: chosen.convert(rel) for name, rel in self._relations.items()}
        )

    # ----------------------------------------------------------- modification
    def with_relation(self, name: str, relation: Relation) -> "Database":
        """Copy of this database with relation ``name`` replaced."""
        self._require(name)
        updated = dict(self._relations)
        updated[name] = relation
        return self._copy_with(updated)

    def add_tuple(self, name: str, row: Sequence[object]) -> "Database":
        """``D ∪ {t}`` — copy with one more occurrence of ``row`` in ``name``."""
        return self.with_relation(name, self.relation(name).add(row))

    def remove_tuple(self, name: str, row: Sequence[object]) -> "Database":
        """``D \\ {t}`` — copy with one occurrence of ``row`` removed."""
        return self.with_relation(name, self.relation(name).remove(row))

    def cascade_delete(self, name: str, row: Sequence[object]) -> "Database":
        """Delete ``row`` from ``name`` and cascade along foreign keys.

        This implements PrivSQL's neighbouring-database semantics for
        multi-relational schemas: removing a primary-private tuple removes
        every tuple (in any relation) that transitively references it.
        """
        row = tuple(row)
        updated = dict(self._relations)
        updated[name] = updated[name].remove(row)
        # Worklist of (relation, keyed values) whose dependants must go.
        frontier: List[Tuple[str, Row]] = [(name, row)]
        while frontier:
            parent_name, parent_row = frontier.pop()
            parent_schema = self._relations[parent_name].schema
            for fk in self._foreign_keys:
                if fk.parent != parent_name:
                    continue
                parent_positions = parent_schema.project_positions(fk.parent_attributes)
                key = tuple(parent_row[p] for p in parent_positions)
                child_rel = updated[fk.child]
                child_positions = child_rel.schema.project_positions(fk.child_attributes)
                doomed = [
                    crow
                    for crow in child_rel
                    if tuple(crow[p] for p in child_positions) == key
                ]
                if not doomed:
                    continue
                counts = dict(child_rel.counts)
                for crow in doomed:
                    del counts[crow]
                    frontier.append((fk.child, crow))
                updated[fk.child] = type(child_rel)._from_counts(
                    child_rel.schema, counts
                )
        return self._copy_with(updated)

    def _copy_with(self, relations: Dict[str, Relation]) -> "Database":
        db = Database.__new__(Database)
        db._relations = relations
        db._primary_keys = dict(self._primary_keys)
        db._foreign_keys = list(self._foreign_keys)
        return db

    # -------------------------------------------------------------- domains
    def active_domain(self, attribute: str, relation_name: str) -> frozenset:
        """``Σ^{A,i}_act`` — values of ``attribute`` appearing in the relation."""
        return self.relation(relation_name).column_values(attribute)

    def representative_domain(self, attribute: str, relation_name: str) -> frozenset:
        """Definition 3.1 — representative domain of ``attribute`` w.r.t.
        ``relation_name``.

        If the attribute appears in at least one *other* relation, this is
        the intersection of its active domains over those relations.  If it
        is exclusive to ``relation_name``, the paper picks one arbitrary
        active value; we return the smallest active value (or a synthetic
        placeholder when the relation is empty) for determinism.
        """
        self._require(relation_name)
        others = [
            rel
            for name, rel in self._relations.items()
            if name != relation_name and attribute in rel.schema
        ]
        if others:
            from repro.engine.columnar import ColumnarRelation, intersect_column_values

            if all(isinstance(rel, ColumnarRelation) for rel in others):
                fast = intersect_column_values(others, attribute)
                if fast is not None:
                    return fast
            domain = others[0].column_values(attribute)
            for rel in others[1:]:
                domain = domain & rel.column_values(attribute)
            return domain
        active = self.active_domain(attribute, relation_name)
        if active:
            return frozenset([min(active)])
        return frozenset([f"_any_{attribute}"])

    def representative_tuples(self, relation_name: str) -> Iterator[Row]:
        """``Σ^{A_i}_repr`` — cross product of per-attribute representative
        domains for ``relation_name`` (Definition 3.1).

        Used by the naive algorithm (Theorem 3.1); iterates lazily since the
        product can be large.
        """
        rel = self.relation(relation_name)
        domains = [
            sorted(self.representative_domain(attr, relation_name), key=repr)
            for attr in rel.attributes
        ]
        return iter(product(*domains))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{rel.total_count()}]" for name, rel in self._relations.items()
        )
        return f"Database({parts})"
