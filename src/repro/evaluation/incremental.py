"""Incremental delta re-evaluation over cached join-tree counts.

The paper's re-evaluation strawman (Sections 4.1/5.2) answers "how does
``|Q(D)|`` change if tuple ``t`` is inserted into / deleted from ``R``?"
by re-running a full count-only Yannakakis pass per candidate — ``O(n)``
per probe, ``O(n)`` probes, which is why :mod:`repro.baselines.reeval`
historically had to sample.  Berkholz, Keppeler & Schweikardt ("Answering
FO+MOD queries under updates") observe that counting under single-tuple
updates only needs *delta propagation* over a materialized structure.
This module implements that idea on the repo's decomposition trees:

**Base structure (built once).**  Bind the tree and compute every botjoin
``K(v)`` (:func:`repro.evaluation.yannakakis.compute_botjoins`).  The
first *probe* additionally caches, for every non-root node ``v`` with
parent ``p``, the *sibling complement* ``J(v) = rel_p r̃join (r̃join of
K(c) for siblings c of v)`` — everything ``K(p)`` multiplies ``K(v)``
with.  Probe state is lazy so count-only users (sessions maintaining
``|Q(D)|`` under updates) never pay for it.

**Probe (per hypothetical update).**  ``|Q(D)|`` is multilinear in each
relation's multiplicity vector, so changing the multiplicity of ``t ∈ R``
by ``±1`` changes the count by exactly ``±w(t)`` where ``w(t)`` is the
number of join results (with multiplicity) one occurrence of ``t``
participates in.  ``w(t)`` is obtained by pushing the one-tuple delta
relation up the leaf-to-root path::

    ΔK(v)  = γ_{shared(v)} (Δrel_v r̃join ∏_c K(c))        (v's node)
    ΔK(p)  = γ_{shared(p)} (ΔK(v) r̃join J(v))              (each ancestor)
    w(t)   = ΔK(root).total_count()

Each probe therefore touches only the path from ``R``'s node to the root
— ``O(depth)`` small joins against cached relations instead of a full
re-evaluation, turning the re-evaluation baseline from ``O(runs · n)``
into ``O(updates)`` after one ``O(n)`` build.

**Batching.**  Probes are independent and propagation is linear, so a
whole batch propagates in *one* pass: the delta relation carries an extra
probe-id column (:data:`PROBE_ATTRIBUTE`) that joins ignore and group-bys
retain, keeping per-probe contributions separate.  On the columnar
backend the batch pass runs entirely inside the vectorized join/group-by
kernels — one numpy pass per tree edge for thousands of probes.

**Applied updates (streams).**  Beyond hypothetical probes, the evaluator
can *commit* updates: :meth:`IncrementalEvaluator.apply_insert` /
:meth:`~IncrementalEvaluator.apply_delete` fold the one-tuple delta into
the per-component :class:`~repro.evaluation.joinstate.JoinState` — the
maintained layer owning the botjoins (and, lazily, the topjoins and
multiplicity tables the sensitivity algorithms read) — recomputing only
the touched leaf-to-root path, no re-decomposition, no re-binding of
untouched relations, no visits to off-path subtrees.  Sibling
complements and within-node complements that the update invalidates are
merely *marked* stale and rebuilt lazily before the next probe, so a
stream of updates interleaved with count reads never pays for probe
state it does not use.  This is the engine behind
:class:`repro.session.PreparedQuery`'s mutation methods.

**Batched streams.**  A whole update stream compacts into per-relation
signed delta *relations* (:func:`compact_updates`: matching ``+t``/``-t``
pairs cancel, duplicate tuples coalesce into multiplicities) and
:meth:`IncrementalEvaluator.apply_batch` folds each delta relation into
the database and every maintained level in one vectorized pass per
relation side — the same leaf-to-root/root-to-leaf walks, but carrying a
bag of tuples instead of one.  The entire batch is staged then committed
across all components, so a mid-batch failure leaves the evaluator
bit-identical to its pre-batch state.

Deltas stay non-negative throughout (the update's sign factors out), so
both relation backends can represent them; columnar ``int64`` overflow
surfaces as :class:`~repro.exceptions.MultiplicityOverflowError`, exactly
as a full re-evaluation would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.database import Database
from repro.engine.operators import difference, group_by, join, union_all
from repro.engine.relation import Row
from repro.evaluation.joinstate import AppliedUpdate, JoinState, RelationDelta
from repro.evaluation.yannakakis import _component_trees
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.jointree import DecompositionTree
from repro.exceptions import SchemaError, SessionError, UnknownRelationError

#: Reserved column name carrying the probe index through a batch pass.
PROBE_ATTRIBUTE = "__probe__"


def compact_updates(
    db: Database, updates: Sequence[Tuple[bool, str, Row]]
) -> List[RelationDelta]:
    """Compact an ordered update stream into per-relation signed deltas.

    ``updates`` is a sequence of ``(insert, relation, row)`` triples in
    application order.  Compaction replays each tuple's sign sequence
    against its pre-batch database multiplicity with the same clamping
    the sequential path applies (deleting an absent occurrence is a
    no-op), then keeps only the *net* change — matching ``+t``/``-t``
    pairs cancel and duplicate inserts coalesce into one multiplicity.
    The result is one :class:`RelationDelta` per touched relation (in
    first-touch order) whose tuples are single-signed and whose minus
    counts never exceed the pre-batch multiplicity, which is what makes
    bag monus an exact delta downstream.  Cross-relation order is
    irrelevant: every derived structure is multilinear in each relation's
    multiplicity vector, so per-relation nets commute.
    """
    by_relation: Dict[str, Dict[Row, List[bool]]] = {}
    for insert, relation, row in updates:
        signs_of = by_relation.setdefault(relation, {})
        signs_of.setdefault(tuple(row), []).append(insert)
    deltas: List[RelationDelta] = []
    for relation, signs_of in by_relation.items():
        base = db.relation(relation)
        plus: Dict[Row, int] = {}
        minus: Dict[Row, int] = {}
        mixed = [row for row, signs in signs_of.items() if not all(signs)]
        starts = dict(zip(mixed, base.multiplicities(mixed)))
        for row, signs in signs_of.items():
            if all(signs):
                # Pure inserts never clamp: net is just the count, no
                # multiplicity lookup needed.
                plus[row] = len(signs)
                continue
            start = current = starts[row]
            for sign in signs:
                if sign:
                    current += 1
                elif current > 0:
                    current -= 1
            net = current - start
            if net > 0:
                plus[row] = net
            elif net < 0:
                minus[row] = -net
        if plus or minus:
            deltas.append(RelationDelta(relation, plus, minus))
    return deltas


def _patched_relation(base, delta: RelationDelta):
    """``base`` with ``delta`` folded in (minus first, then plus).

    Single-tuple sides take the array-level ``add``/``remove`` fast path;
    larger sides go through one vectorized union/monus kernel pass.
    After compaction the two sides are tuple-disjoint, so the fold order
    is mathematically free — minus-first matches the staged join folds.
    """
    if delta.minus:
        if len(delta.minus) == 1:
            ((row, cnt),) = delta.minus.items()
            base = base.remove(row, cnt)
        else:
            base = difference(base, type(base)(base.schema, dict(delta.minus)))
    if delta.plus:
        if len(delta.plus) == 1:
            ((row, cnt),) = delta.plus.items()
            base = base.add(row, cnt)
        else:
            base = union_all([base, type(base)(base.schema, dict(delta.plus))])
    return base


@dataclass
class _Component:
    """Cached evaluation state for one connected component of the query.

    The join-tree structure itself (bound tree, botjoins, and — for
    sensitivity consumers — topjoins and multiplicity tables) lives in
    the component's maintained :class:`JoinState`; this wrapper adds the
    evaluator's probe-only caches and the cross-component multiplier.
    """

    state: JoinState
    #: product of the other components' counts (scales every delta).
    multiplier: int = 1
    #: ``v -> rel_{parent(v)} r̃join (r̃join of K(c) for siblings c of v)``.
    #: Built lazily on the first probe; see :meth:`_ensure_probe_state`.
    sibling_complement: Dict[str, object] = field(default_factory=dict)
    #: relation -> bag join of the *other* atoms in its node (GHD nodes).
    node_others: Dict[str, Optional[object]] = field(default_factory=dict)
    probe_ready: bool = False
    #: parents whose children's complements an applied update invalidated.
    stale_parents: Set[str] = field(default_factory=set)
    #: multi-atom nodes whose ``node_others`` an applied update invalidated.
    stale_other_nodes: Set[str] = field(default_factory=set)

    @property
    def query(self) -> ConjunctiveQuery:
        return self.state.query

    @property
    def bound(self):
        return self.state.bound

    @property
    def botjoins(self) -> Dict[str, object]:
        return self.state.botjoins

    @property
    def count(self) -> int:
        return self.state.count


class IncrementalEvaluator:
    """Answer count-update probes, and apply update streams, from cached
    join-tree state.

    Parameters
    ----------
    query:
        Full conjunctive query (any shape; disconnected queries are
        handled per component with cross-product multipliers).
    db:
        The database instance the cache is built over.  ``delta`` probes
        are hypothetical and leave the evaluator untouched;
        ``apply_insert`` / ``apply_delete`` commit updates, after which
        :attr:`db` reflects the mutated instance.
    tree:
        Decomposition override for connected queries (defaults to GYO /
        automatic GHD, like the rest of the evaluation stack).
    max_width:
        GHD node-size cap for the automatic decomposition of cyclic
        queries (ignored when ``tree`` is given).
    component_pairs:
        Advanced: pre-decomposed ``(subquery, tree)`` pairs, one per
        connected component, as produced by the session layer's prepare
        step.  Skips re-deriving the decomposition; overrides ``tree``.

    Examples
    --------
    >>> from repro.engine import Database, Relation
    >>> from repro.query import parse_query
    >>> q = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
    >>> db = Database({
    ...     "R": Relation(["A", "B"], [(1, 2), (3, 2)]),
    ...     "S": Relation(["B", "C"], [(2, 4)]),
    ... })
    >>> ev = IncrementalEvaluator(q, db)
    >>> ev.base_count
    2
    >>> ev.delta("S", (2, 9))     # inserting (2,9) adds both R tuples
    2
    >>> ev.apply_insert("S", (2, 9))
    4
    >>> ev.delta_batch("R", [(1, 2), (5, 5)])
    [2, 0]
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        tree: Optional[DecompositionTree] = None,
        max_width: int = 3,
        component_pairs: Optional[
            Sequence[Tuple[ConjunctiveQuery, DecompositionTree]]
        ] = None,
        parallel=None,
    ):
        query.validate_against(db)
        if PROBE_ATTRIBUTE in query.variables:
            raise SchemaError(
                f"query variable {PROBE_ATTRIBUTE!r} collides with the "
                "reserved probe column"
            )
        self._query = query
        self._db = db
        self._components: List[_Component] = []
        self._component_of: Dict[str, int] = {}
        if component_pairs is None:
            component_pairs = _component_trees(query, tree, max_width)
        for sub, sub_tree in component_pairs:
            component = self._build_component(sub, sub_tree, db, parallel)
            index = len(self._components)
            self._components.append(component)
            for relation in sub.relation_names:
                self._component_of[relation] = index
        self._commit_totals()

    # -------------------------------------------------------------- building
    @staticmethod
    def _build_component(
        sub: ConjunctiveQuery,
        sub_tree: DecompositionTree,
        db: Database,
        parallel=None,
    ) -> _Component:
        return _Component(state=JoinState(sub, sub_tree, db, parallel=parallel))

    @staticmethod
    def _edge_complements(
        component: _Component, parent: str
    ) -> Dict[str, object]:
        """Sibling complements for every child of ``parent``.

        Prefix/suffix products keep this linear in the child count even
        for high-degree nodes.
        """
        bound, botjoins = component.bound, component.botjoins
        children = bound.tree.children(parent)
        out: Dict[str, object] = {}
        if not children:
            return out
        base = bound.relation(parent)
        prefix = [base]
        for child in children[:-1]:
            prefix.append(join(prefix[-1], botjoins[child]))
        suffix: List[Optional[object]] = [None] * len(children)
        for i in range(len(children) - 2, -1, -1):
            nxt = botjoins[children[i + 1]]
            suffix[i] = nxt if suffix[i + 1] is None else join(nxt, suffix[i + 1])
        for i, child in enumerate(children):
            complement = prefix[i]
            if suffix[i] is not None:
                complement = join(complement, suffix[i])
            out[child] = complement
        return out

    @staticmethod
    def _node_other_complements(
        component: _Component, node_id: str
    ) -> Dict[str, Optional[object]]:
        """Within-node complements for the relations of one (GHD) node."""
        bound = component.bound
        node = bound.tree.node(node_id)
        out: Dict[str, Optional[object]] = {}
        for relation in node.relations:
            others = [r for r in node.relations if r != relation]
            if not others:
                out[relation] = None
                continue
            acc = bound.atom_relation(others[0])
            for other in others[1:]:
                acc = join(acc, bound.atom_relation(other))
            out[relation] = acc
        return out

    def _ensure_probe_state(self, component: _Component) -> None:
        """Build (or refresh the stale parts of) the probe-only caches."""
        tree = component.bound.tree
        if not component.probe_ready:
            component.sibling_complement = {}
            component.node_others = {}
            for parent in tree.node_ids:
                component.sibling_complement.update(
                    self._edge_complements(component, parent)
                )
                component.node_others.update(
                    self._node_other_complements(component, parent)
                )
            component.probe_ready = True
        else:
            for parent in sorted(component.stale_parents):
                component.sibling_complement.update(
                    self._edge_complements(component, parent)
                )
            for node_id in sorted(component.stale_other_nodes):
                component.node_others.update(
                    self._node_other_complements(component, node_id)
                )
        component.stale_parents.clear()
        component.stale_other_nodes.clear()

    def _commit(self, new_db: Database) -> None:
        """Fold a fully-staged update into committed state.

        Rebinding the database and refreshing the derived totals happen
        here and nowhere else (enforced by lint rule R002), so no fallible
        staging step can leave them disagreeing."""
        self._db = new_db
        self._commit_totals()

    def _commit_totals(self) -> None:
        total = 1
        for component in self._components:
            total *= component.count
        self._base_count = total
        for i, component in enumerate(self._components):
            multiplier = 1
            for j, other in enumerate(self._components):
                if j != i:
                    multiplier *= other.count
            component.multiplier = multiplier

    # ------------------------------------------------------------- accessors
    @property
    def query(self) -> ConjunctiveQuery:
        return self._query

    @property
    def db(self) -> Database:
        """The database the cached state currently reflects (tracks
        applied updates)."""
        return self._db

    @property
    def base_count(self) -> int:
        """``|Q(D)|`` on the current (post-update) database (cached)."""
        return self._base_count

    @property
    def component_states(self) -> Tuple[JoinState, ...]:
        """The maintained :class:`JoinState` of every connected component,
        in component order.  The sensitivity algorithms consume these
        directly, so session reads after updates reuse the folded
        botjoins/topjoins/tables instead of rebuilding them."""
        return tuple(component.state for component in self._components)

    # ----------------------------------------------------------------- probes
    def delta(self, relation: str, row: Sequence[object]) -> int:
        """``w(t)`` — the count change magnitude of a ``±1`` update of ``row``.

        Inserting one occurrence of ``row`` into ``relation`` yields
        ``base_count + delta``; deleting one *existing* occurrence yields
        ``base_count - delta``.  Tuples that fail the relation's selection
        predicate or join nothing have delta 0.
        """
        return self.delta_batch(relation, [row])[0]

    def delta_batch(
        self, relation: str, rows: Sequence[Sequence[object]]
    ) -> List[int]:
        """``w(t)`` for every probe tuple, via one shared propagation pass.

        All probes ride a single delta relation tagged with a probe-id
        column, so the cost is one leaf-to-root pass regardless of the
        batch size — on the columnar backend every step is a vectorized
        kernel call.
        """
        if relation not in self._component_of:
            raise UnknownRelationError(relation)
        rows = [tuple(row) for row in rows]
        if not rows:
            return []
        component = self._components[self._component_of[relation]]
        if component.multiplier == 0:
            # Arity checks must still run for a consistent error surface.
            self._check_probe_arity(component, relation, rows)
            return [0] * len(rows)
        self._ensure_probe_state(component)
        probe = self._probe_relation(component, relation, rows)
        collapsed = self._propagate(component, relation, probe)
        per_probe = {key[0]: cnt for key, cnt in collapsed.items()}
        return [
            per_probe.get(i, 0) * component.multiplier for i in range(len(rows))
        ]

    def count_after_insert(self, relation: str, row: Sequence[object]) -> int:
        """``|Q(D ∪ {t})|`` without re-evaluating."""
        return self._base_count + self.delta(relation, tuple(row))

    def count_after_delete(self, relation: str, row: Sequence[object]) -> int:
        """``|Q(D \\ {t})|`` without re-evaluating.

        Deleting an absent tuple is a no-op (the paper's ``D \\ {t}``
        semantics), so the base count is returned unchanged in that case.
        """
        row = tuple(row)
        if self._db.relation(relation).multiplicity(row) == 0:
            return self._base_count
        return self._base_count - self.delta(relation, row)

    # -------------------------------------------------------- applied updates
    def apply_insert(self, relation: str, row: Sequence[object]) -> int:
        """Commit ``D ← D ∪ {t}`` and return the maintained ``|Q(D)|``.

        Only the botjoins on the path from ``relation``'s node to its
        component root are recomputed; probe-only caches the update
        invalidates are marked stale and refreshed on the next probe.
        """
        return self._apply(relation, tuple(row), insert=True)

    def apply_delete(self, relation: str, row: Sequence[object]) -> int:
        """Commit ``D ← D \\ {t}`` and return the maintained ``|Q(D)|``.

        Deleting an absent tuple is a no-op, matching ``D \\ {t}``.
        """
        row = tuple(row)
        if relation not in self._component_of:
            raise UnknownRelationError(relation)
        if self._db.relation(relation).multiplicity(row) == 0:
            component = self._components[self._component_of[relation]]
            self._check_probe_arity(component, relation, [row])
            return self._base_count
        return self._apply(relation, row, insert=False)

    def _apply(self, relation: str, row: Row, insert: bool) -> int:
        delta = RelationDelta(
            relation,
            {row: 1} if insert else {},
            {} if insert else {row: 1},
        )
        return self.apply_batch([delta])

    def apply_batch(self, deltas: Sequence[RelationDelta]) -> int:
        """Commit a compacted batch of delta relations atomically.

        The batch folds into every maintained structure in one vectorized
        pass per touched relation side: the database relations are patched
        via union/monus, then each touched component's
        :class:`JoinState` stages the whole batch against an overlay.
        Validation and every fallible step (including columnar ``int64``
        overflow anywhere on a delta path) run before the first cache
        mutation, so a raising batch leaves the evaluator — counts,
        sensitivity state, shard partitionings — bit-identical to its
        pre-batch value.  Returns the maintained ``|Q(D)|``.
        """
        deltas = [delta for delta in deltas if not delta.is_empty()]
        if not deltas:
            return self._base_count
        # ---- validate the whole batch before touching anything
        for delta in deltas:
            if delta.relation not in self._component_of:
                raise UnknownRelationError(delta.relation)
            component = self._components[self._component_of[delta.relation]]
            self._check_probe_arity(
                component, delta.relation, list(delta.plus) + list(delta.minus)
            )
        for delta in deltas:
            if not delta.minus:
                continue
            rows = list(delta.minus)
            have = self._db.relation(delta.relation).multiplicities(rows)
            for row, available in zip(rows, have):
                if delta.minus[row] > available:
                    raise SessionError(
                        f"delta deletes {delta.minus[row]} of {row!r} from "
                        f"{delta.relation!r} but only {available} exist; "
                        "compact the update stream against the current "
                        "database first"
                    )
        # ---- stage (all fallible): patched database + join-state overlays
        new_db = self._db
        for delta in deltas:
            new_db = new_db.with_relation(
                delta.relation,
                _patched_relation(new_db.relation(delta.relation), delta),
            )
        by_component: Dict[int, List[RelationDelta]] = {}
        for delta in deltas:
            by_component.setdefault(
                self._component_of[delta.relation], []
            ).append(delta)
        stagings = [
            (
                self._components[index],
                self._components[index].state.stage_update_batch(group),
            )
            for index, group in by_component.items()
        ]
        # ---- commit (nothing below raises)
        touched_columns: Set[str] = set()
        for component, staging in stagings:
            touched_columns.update(staging.touched_columns)
            for report in component.state.commit_update_batch(staging):
                self._mark_probe_caches_stale(component, report)
        # Witness extrapolation reads representative domains across the
        # whole database, so *every* component's cached witnesses can go
        # stale when they share a base column name with a touched relation
        # (the touched components already dropped their own at commit).
        for component in self._components:
            component.state.drop_domain_dependent_witnesses(touched_columns)
        self._commit(new_db)
        return self._base_count

    @staticmethod
    def _mark_probe_caches_stale(
        component: _Component, report: AppliedUpdate
    ) -> None:
        """Invalidate the probe-only complements an applied update moved."""
        if report.filtered:
            return  # filtered out before the join: no cached state moved
        tree = component.state.tree
        if report.node_multi_atom:
            component.stale_other_nodes.add(report.node_id)
        if tree.children(report.node_id):
            # rel_node changed: every child-edge complement under the node
            # embeds it, whether or not the botjoin delta survives below.
            component.stale_parents.add(report.node_id)
        for changed in report.changed_botjoins:
            parent = tree.parent(changed)
            if parent is not None:
                # changed's botjoin moved: its siblings' complements (and
                # the parent's other child edges) are stale; changed's own
                # complement does not involve it.
                component.stale_parents.add(parent)

    # ----------------------------------------------------------- propagation
    @staticmethod
    def _check_probe_arity(
        component: _Component, relation: str, rows: Sequence[Row]
    ) -> None:
        atom = component.query.atom(relation)
        for row in rows:
            if len(row) != atom.arity:
                raise SchemaError(
                    f"probe {row!r} has arity {len(row)}, atom {atom} "
                    f"expects {atom.arity}"
                )

    def _probe_relation(
        self, component: _Component, relation: str, rows: Sequence[Row]
    ):
        """The tagged delta relation: one row per probe, selection applied."""
        self._check_probe_arity(component, relation, rows)
        atom = component.query.atom(relation)
        attributes = list(atom.variables) + [PROBE_ATTRIBUTE]
        relation_cls = type(self._db.relation(relation))
        counts = {row + (index,): 1 for index, row in enumerate(rows)}
        probe = relation_cls(attributes, counts)
        predicate = component.query.selections.get(relation)
        if predicate is not None:
            probe = probe.filter(predicate)
        return probe

    def _propagate(self, component: _Component, relation: str, probe):
        """Push the tagged delta from ``relation``'s node to the root.

        Every join partner's attributes are contained in the current
        node's attribute set, so the delta never grows columns beyond
        ``A_v ∪ {probe}`` and shrinks to the parent-shared attributes at
        each group-by — the per-probe work is bounded by the path, not
        the database.
        """
        tree = component.bound.tree
        node_id = tree.node_of_relation(relation)
        delta = probe
        others = component.node_others[relation]
        if others is not None:
            delta = join(delta, others)
        for child in tree.children(node_id):
            delta = join(delta, component.botjoins[child])
        delta = group_by(
            delta, sorted(tree.shared_with_parent(node_id)) + [PROBE_ATTRIBUTE]
        )
        while tree.parent(node_id) is not None:
            parent = tree.parent(node_id)
            delta = join(delta, component.sibling_complement[node_id])
            delta = group_by(
                delta, sorted(tree.shared_with_parent(parent)) + [PROBE_ATTRIBUTE]
            )
            node_id = parent
        return delta
