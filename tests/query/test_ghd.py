"""Unit tests for generalized hypertree decompositions."""

import pytest

from repro.query import auto_decompose, ghd_from_groups, parse_query
from repro.exceptions import DecompositionError


class TestGhdFromGroups:
    def test_triangle_ghd(self, triangle_query):
        tree = ghd_from_groups(
            triangle_query,
            groups={"g12": ["R1", "R2"], "g3": ["R3"]},
            root="g12",
            parent={"g3": "g12"},
        )
        assert tree.width() == 2
        assert tree.node("g12").attributes == frozenset({"A", "B", "C"})
        assert tree.covers_query(triangle_query)

    def test_incomplete_grouping_rejected(self, triangle_query):
        with pytest.raises(DecompositionError):
            ghd_from_groups(
                triangle_query,
                groups={"g12": ["R1", "R2"]},
                root="g12",
                parent={},
            )

    def test_duplicated_relation_rejected(self, triangle_query):
        with pytest.raises(DecompositionError):
            ghd_from_groups(
                triangle_query,
                groups={"g1": ["R1", "R2"], "g2": ["R2", "R3"]},
                root="g1",
                parent={"g2": "g1"},
            )

    def test_invalid_running_intersection_rejected(self):
        q = parse_query("R1(A,B), R2(B,C), R3(C,D), R4(D,A)")
        # Grouping that splits the cycle the wrong way: {R1,R3} covers
        # A,B,C,D but {R2},{R4} hang off it fine... build a genuinely bad
        # chain instead: R2 and R4 both need A/D connectivity through R1R3.
        with pytest.raises(DecompositionError):
            ghd_from_groups(
                q,
                groups={"gA": ["R1"], "gB": ["R2"], "gC": ["R3"], "gD": ["R4"]},
                root="gA",
                parent={"gB": "gA", "gC": "gB", "gD": "gC"},
            )


class TestAutoDecompose:
    def test_acyclic_query_gets_width_1(self, fig1_query):
        assert auto_decompose(fig1_query).width() == 1

    def test_triangle_needs_width_2(self, triangle_query):
        tree = auto_decompose(triangle_query)
        assert tree.width() == 2
        assert tree.covers_query(triangle_query)

    def test_four_cycle(self):
        q = parse_query("R1(A,B), R2(B,C), R3(C,D), R4(D,A)")
        tree = auto_decompose(q)
        assert tree.covers_query(q)
        assert tree.width() >= 2

    def test_five_cycle_needs_two_merges(self):
        q = parse_query("R1(A,B), R2(B,C), R3(C,D), R4(D,E), R5(E,A)")
        tree = auto_decompose(q)
        assert tree.covers_query(q)

    def test_width_cap_respected(self, triangle_query):
        with pytest.raises(DecompositionError):
            auto_decompose(triangle_query, max_width=1)

    def test_disconnected_rejected(self):
        with pytest.raises(DecompositionError):
            auto_decompose(parse_query("R(A), S(B)"))
