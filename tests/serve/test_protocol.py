"""Unit tests for the NDJSON wire protocol and result projections."""

import json

import pytest

from repro.core.result import SensitiveTuple, SensitivityResult
from repro.dp.tsensdp import TSensDPOutcome
from repro.exceptions import (
    PrivacyBudgetError,
    ProtocolError,
    ServeError,
    SessionError,
)
from repro.serve.protocol import (
    MAX_LINE,
    OPS,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    outcome_to_dict,
    parse_request,
    raise_remote,
    sensitivity_result_to_dict,
)


class TestFraming:
    def test_roundtrip(self):
        payload = {"id": 7, "op": "count"}
        line = encode_frame(payload)
        assert line.endswith(b"\n")
        assert decode_frame(line[:-1]) == payload

    def test_oversized_encode_raises(self):
        with pytest.raises(ProtocolError):
            encode_frame({"id": 1, "blob": "x" * (MAX_LINE + 1)})

    def test_oversized_decode_raises(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"x" * (MAX_LINE + 1))

    def test_non_json_raises(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"not json at all")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2, 3]")


class TestRequests:
    def test_parse_splits_params(self):
        rid, op, params = parse_request(
            {"id": "a1", "op": "probe", "relation": "R", "rows": [[1]]}
        )
        assert (rid, op) == ("a1", "probe")
        assert params == {"relation": "R", "rows": [[1]]}

    def test_missing_id_raises(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "count"})

    def test_missing_or_bad_op_raises(self):
        with pytest.raises(ProtocolError):
            parse_request({"id": 1})
        with pytest.raises(ProtocolError):
            parse_request({"id": 1, "op": 5})
        with pytest.raises(ProtocolError):
            parse_request({"id": 1, "op": "drop_tables"})

    def test_every_advertised_op_parses(self):
        for op in OPS:
            assert parse_request({"id": 0, "op": op})[1] == op


class TestResponses:
    def test_ok_response_echoes_id_and_epoch(self):
        payload = ok_response("r1", {"count": 3}, epoch=4)
        assert payload == {
            "id": "r1",
            "ok": True,
            "result": {"count": 3},
            "epoch": 4,
        }

    def test_error_response_keeps_library_exception_names(self):
        payload = error_response(2, PrivacyBudgetError("empty"))
        assert payload["error"]["type"] == "PrivacyBudgetError"
        assert payload["error"]["message"] == "empty"

    def test_foreign_exceptions_degrade_to_serve_error(self):
        payload = error_response(2, RuntimeError("boom"))
        assert payload["error"]["type"] == "ServeError"

    def test_raise_remote_reconstructs_class(self):
        with pytest.raises(PrivacyBudgetError):
            raise_remote({"type": "PrivacyBudgetError", "message": "empty"})
        with pytest.raises(SessionError):
            raise_remote({"type": "SessionError", "message": "bad op"})

    def test_raise_remote_unknown_type(self):
        with pytest.raises(ServeError):
            raise_remote({"type": "NoSuchError", "message": "?"})


class TestProjections:
    def test_sensitivity_result_projection(self):
        witness = SensitiveTuple("R", {"A": 1, "B": 2}, 5)
        result = SensitivityResult(
            query_name="Q",
            method="tsens",
            local_sensitivity=5,
            witness=witness,
            per_relation={"R": witness},
        )
        projected = sensitivity_result_to_dict(result)
        assert projected["local_sensitivity"] == 5
        assert projected["witness"]["assignment"] == {"A": 1, "B": 2}
        assert projected["per_relation"]["R"]["sensitivity"] == 5
        assert "tables" not in projected  # never serialised
        json.dumps(projected)  # wire-safe

    def test_no_witness_projects_to_none(self):
        result = SensitivityResult(
            query_name="Q", method="tsens", local_sensitivity=0, witness=None
        )
        assert sensitivity_result_to_dict(result)["witness"] is None

    def test_outcome_projection(self):
        outcome = TSensDPOutcome(
            answer=3.5,
            tau=4,
            global_sensitivity=4,
            noisy_estimate=3.5,
            true_count=3,
            truncated_count=3,
            epsilon=1.0,
            epsilon_threshold=0.5,
            ledger={"threshold": 0.5, "release": 0.5},
        )
        projected = outcome_to_dict(outcome)
        assert projected["mechanism_outcome"] == "TSensDPOutcome"
        assert projected["answer"] == 3.5
        json.dumps(projected)

    def test_non_dataclass_outcome_raises(self):
        with pytest.raises(ProtocolError):
            outcome_to_dict(object())
