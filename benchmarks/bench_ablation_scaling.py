"""Ablation — empirical complexity of Algorithm 1 (Theorem 4.1).

Runs ``LSPathJoin`` on TPC-H q1 at geometrically growing scales and checks
that runtime grows sub-quadratically in the input size — the observable
consequence of the ``O(n log n)`` bound on this hash-join substrate.
"""

import time

import pytest

from repro.core import ls_path_join
from repro.datasets import generate_tpch
from repro.workloads import q1_workload

SCALES = (0.0002, 0.0008, 0.0032)


@pytest.mark.parametrize("scale", SCALES)
def test_scaling_path_algorithm(benchmark, scale):
    workload = q1_workload()
    db = workload.prepared(generate_tpch(scale, seed=0))
    n = db.total_tuples()
    benchmark.extra_info["n"] = n
    benchmark.pedantic(
        lambda: ls_path_join(workload.query, db), rounds=3, iterations=1
    )


def test_scaling_is_subquadratic():
    """4× more data must cost clearly less than 16× more time (amortised
    over two growth steps; generous 8× threshold absorbs timer noise)."""
    workload = q1_workload()
    timings = []
    for scale in SCALES:
        db = workload.prepared(generate_tpch(scale, seed=0))
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            ls_path_join(workload.query, db)
            best = min(best, time.perf_counter() - start)
        timings.append((db.total_tuples(), best))
    for (n1, t1), (n2, t2) in zip(timings, timings[1:]):
        growth = n2 / n1
        assert t2 / t1 < 2 * growth ** 2, (timings,)
    # End-to-end: 16× the data in far less than 256× the time.
    n_ratio = timings[-1][0] / timings[0][0]
    t_ratio = timings[-1][1] / timings[0][1]
    assert t_ratio < n_ratio ** 2 / 2
