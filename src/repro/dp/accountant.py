"""A simple sequential-composition privacy accountant.

Pure ε-DP composes additively; the accountant tracks labelled spends
against a total budget and refuses overdrafts.  The mechanisms in this
package draw their budget through an accountant so experiments can assert,
post hoc, that the advertised ε was respected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import MechanismConfigError, PrivacyBudgetError


@dataclass
class BudgetAccountant:
    """Tracks ε spends under sequential composition.

    Parameters
    ----------
    total_epsilon:
        The overall budget.  Spends beyond it raise
        :class:`~repro.exceptions.PrivacyBudgetError`.
    """

    total_epsilon: float
    _spends: List[Tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.total_epsilon > 0:
            raise MechanismConfigError(
                f"total_epsilon must be positive, got {self.total_epsilon}"
            )

    @property
    def spent(self) -> float:
        """Total ε spent so far."""
        return sum(amount for _, amount in self._spends)

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self.total_epsilon - self.spent

    def spend(self, epsilon: float, label: str = "") -> float:
        """Record a spend of ``epsilon`` and return it.

        A tiny tolerance absorbs floating-point drift from repeated halving.
        """
        if not epsilon > 0:
            raise MechanismConfigError(f"spend must be positive, got {epsilon}")
        if epsilon > self.remaining + 1e-12:
            raise PrivacyBudgetError(
                f"cannot spend ε={epsilon} ({label!r}); remaining {self.remaining}"
            )
        self._spends.append((label, epsilon))
        return epsilon

    def ledger(self) -> Dict[str, float]:
        """Spends grouped by label."""
        out: Dict[str, float] = {}
        for label, amount in self._spends:
            out[label] = out.get(label, 0.0) + amount
        return out

    def __repr__(self) -> str:
        return (
            f"BudgetAccountant(total={self.total_epsilon}, spent={self.spent:.6g}, "
            f"remaining={self.remaining:.6g})"
        )
