"""Unit tests for GYO decomposition and hypergraphs (Fig. 2 of the paper)."""

import pytest

from repro.query import (
    Hypergraph,
    gyo_join_forest,
    gyo_join_tree,
    gyo_reduce,
    is_acyclic,
    parse_query,
)
from repro.exceptions import NotAcyclicError, QueryStructureError


class TestHypergraph:
    def test_of_query(self, fig1_query):
        hg = Hypergraph.of_query(fig1_query)
        assert hg.edge("R1") == frozenset({"A", "B", "C"})
        assert hg.vertices == frozenset({"A", "B", "C", "D", "E", "F"})

    def test_incident_edges(self, fig1_query):
        hg = Hypergraph.of_query(fig1_query)
        assert set(hg.incident_edges("A")) == {"R1", "R2", "R3"}

    def test_connectivity(self):
        hg = Hypergraph({"R": {"A"}, "S": {"A", "B"}, "T": {"C"}})
        assert not hg.is_connected()
        assert hg.components() == [("R", "S"), ("T",)]

    def test_restrict(self):
        hg = Hypergraph({"R": {"A"}, "S": {"B"}})
        assert hg.restrict(["R"]).edge_names == ("R",)


class TestAcyclicity:
    def test_fig1_query_is_acyclic(self, fig1_query):
        assert is_acyclic(fig1_query)

    def test_triangle_is_cyclic(self, triangle_query):
        assert not is_acyclic(triangle_query)

    def test_four_cycle_is_cyclic(self):
        q = parse_query("R1(A,B), R2(B,C), R3(C,D), R4(D,A)")
        assert not is_acyclic(q)

    def test_path_is_acyclic(self, fig3_query):
        assert is_acyclic(fig3_query)

    def test_triangle_with_covering_edge_is_acyclic(self):
        # Adding an edge covering all three vertices makes it α-acyclic.
        q = parse_query("R1(A,B), R2(B,C), R3(C,A), W(A,B,C)")
        assert is_acyclic(q)

    def test_gyo_reduce_reports_eliminations(self, fig1_query):
        acyclic, eliminations = gyo_reduce(Hypergraph.of_query(fig1_query))
        assert acyclic
        assert len(eliminations) == 4


class TestJoinTree:
    def test_fig2_tree_shape(self, fig1_query):
        # The paper's Fig. 2: R2(ABD), R3(AE), R4(BF) are all ears of
        # R1(ABC) — every non-root node must attach to a node sharing its
        # join variables; the running-intersection property is checked by
        # the constructor.
        tree = gyo_join_tree(fig1_query)
        assert set(tree.node_ids) == {"R1", "R2", "R3", "R4"}
        assert tree.covers_query(fig1_query)

    def test_path_query_tree_is_a_chain(self, fig3_query):
        tree = gyo_join_tree(fig3_query)
        assert tree.max_degree() <= 2

    def test_cyclic_query_raises(self, triangle_query):
        with pytest.raises(NotAcyclicError):
            gyo_join_tree(triangle_query)

    def test_disconnected_query_raises(self):
        q = parse_query("R(A,B), S(C,D)")
        with pytest.raises(QueryStructureError):
            gyo_join_tree(q)

    def test_join_forest_for_disconnected(self):
        q = parse_query("R(A,B), S(C,D), T(D,E)")
        forest = gyo_join_forest(q)
        assert len(forest) == 2
        sizes = sorted(len(tree.node_ids) for tree in forest)
        assert sizes == [1, 2]

    def test_single_atom_tree(self):
        q = parse_query("R(A,B)")
        tree = gyo_join_tree(q)
        assert tree.root == "R"
        assert tree.max_degree() == 0

    def test_identical_edges(self):
        q = parse_query("R(A,B), S(A,B)")
        tree = gyo_join_tree(q)
        assert set(tree.node_ids) == {"R", "S"}
