"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "TSens local sensitivity : 4" in proc.stdout

    def test_query_explanation(self):
        proc = run_example("query_explanation.py")
        assert proc.returncode == 0, proc.stderr
        assert "most impactful single flight" in proc.stdout

    def test_tpch_sensitivity_tiny_scale(self):
        proc = run_example("tpch_sensitivity.py", "0.0002")
        assert proc.returncode == 0, proc.stderr
        assert "TSens LS" in proc.stdout
        assert "q3" in proc.stdout

    def test_facebook_privacy(self):
        proc = run_example("facebook_privacy.py", "1.0")
        assert proc.returncode == 0, proc.stderr
        assert "TSensDP" in proc.stdout and "PrivSQL" in proc.stdout

    def test_truncation_tradeoff(self):
        proc = run_example("truncation_tradeoff.py")
        assert proc.returncode == 0, proc.stderr
        assert "threshold sweep" in proc.stdout

    def test_serve_quickstart(self):
        proc = run_example("serve_quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "local sensitivity = 2" in proc.stdout
        assert "TSensDP release" in proc.stdout
        assert "vectorized passes" in proc.stdout
        assert "server drained and stopped" in proc.stdout
