"""Property-based tests for the bag-relational algebra."""

from hypothesis import given, settings, strategies as st

from repro.engine import (
    Relation,
    difference,
    group_by,
    join,
    semijoin,
    symmetric_difference_size,
    union_all,
)

values = st.integers(min_value=0, max_value=3)
rows_ab = st.lists(st.tuples(values, values), max_size=8)
rows_bc = st.lists(st.tuples(values, values), max_size=8)


def rel(attrs, rows):
    return Relation(attrs, rows)


class TestJoinAlgebra:
    @given(rows_ab, rows_bc)
    @settings(max_examples=100, deadline=None)
    def test_join_total_symmetric(self, left_rows, right_rows):
        left = rel(["A", "B"], left_rows)
        right = rel(["B", "C"], right_rows)
        assert (
            join(left, right).total_count() == join(right, left).total_count()
        )

    @given(rows_ab, rows_bc)
    @settings(max_examples=100, deadline=None)
    def test_join_matches_nested_loop(self, left_rows, right_rows):
        left = rel(["A", "B"], left_rows)
        right = rel(["B", "C"], right_rows)
        expected = 0
        for (a, b), lcnt in left.items():
            for (b2, c), rcnt in right.items():
                if b == b2:
                    expected += lcnt * rcnt
        assert join(left, right).total_count() == expected

    @given(rows_ab, rows_bc, st.lists(st.tuples(values, values), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_join_associative_in_counts(self, r1, r2, r3):
        a = rel(["A", "B"], r1)
        b = rel(["B", "C"], r2)
        c = rel(["C", "D"], r3)
        left_first = join(join(a, b), c).total_count()
        right_first = join(a, join(b, c)).total_count()
        assert left_first == right_first

    @given(rows_ab)
    @settings(max_examples=60, deadline=None)
    def test_group_by_preserves_total(self, rows):
        relation = rel(["A", "B"], rows)
        assert group_by(relation, ("A",)).total_count() == relation.total_count()
        assert group_by(relation, ()).total_count() == relation.total_count()

    @given(rows_ab, rows_bc)
    @settings(max_examples=60, deadline=None)
    def test_semijoin_is_subbag(self, left_rows, right_rows):
        left = rel(["A", "B"], left_rows)
        right = rel(["B", "C"], right_rows)
        reduced = semijoin(left, right)
        for row, cnt in reduced.items():
            assert left.multiplicity(row) == cnt
        # Semijoin reduction never changes the join result.
        assert join(reduced, right).total_count() == join(left, right).total_count()


class TestBagSetAlgebra:
    @given(rows_ab, rows_ab)
    @settings(max_examples=60, deadline=None)
    def test_symmetric_difference_is_metric_like(self, rows_x, rows_y):
        x = rel(["A", "B"], rows_x)
        y = rel(["A", "B"], rows_y)
        assert symmetric_difference_size(x, x) == 0
        assert symmetric_difference_size(x, y) == symmetric_difference_size(y, x)

    @given(rows_ab, rows_ab)
    @settings(max_examples=60, deadline=None)
    def test_difference_union_inverse(self, rows_x, rows_y):
        x = rel(["A", "B"], rows_x)
        y = rel(["A", "B"], rows_y)
        # (x ∪ y) ∸ y == x under bag semantics.
        assert difference(union_all([x, y]), y) == x

    @given(rows_ab, rows_ab)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, rows_x, rows_y):
        x = rel(["A", "B"], rows_x)
        y = rel(["A", "B"], rows_y)
        empty = rel(["A", "B"], [])
        d_xy = symmetric_difference_size(x, y)
        d_xe = symmetric_difference_size(x, empty)
        d_ey = symmetric_difference_size(empty, y)
        assert d_xy <= d_xe + d_ey
