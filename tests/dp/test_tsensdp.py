"""Unit tests for the TSensDP mechanism (Sec. 6.2 / Theorem 6.1)."""

import numpy as np
import pytest

from repro.dp import TruncationOracle, run_tsens_dp
from repro.engine import Database, Relation
from repro.query import parse_query
from repro.exceptions import MechanismConfigError


@pytest.fixture
def query():
    return parse_query("Q(U,V,W) :- R(U,V), S(V,W)")


@pytest.fixture
def db():
    rows_r = [(f"u{i}", "hot") for i in range(10)] + [
        (f"x{i}", f"v{i}") for i in range(20)
    ]
    rows_s = [("hot", f"w{j}") for j in range(30)] + [
        (f"v{i}", f"w{i}") for i in range(20)
    ]
    return Database(
        {"R": Relation(["U", "V"], rows_r), "S": Relation(["V", "W"], rows_s)}
    )


class TestOutcome:
    def test_fields_consistent(self, query, db):
        out = run_tsens_dp(
            query, db, primary="R", epsilon=1.0, ell=50,
            rng=np.random.default_rng(1),
        )
        assert out.global_sensitivity == out.tau
        assert 1 <= out.tau <= 50
        assert out.true_count == 320
        assert out.truncated_count <= out.true_count
        assert out.bias == out.true_count - out.truncated_count

    def test_budget_ledger_sums_to_epsilon(self, query, db):
        out = run_tsens_dp(
            query, db, primary="R", epsilon=0.7, ell=50,
            rng=np.random.default_rng(2),
        )
        assert sum(out.ledger.values()) == pytest.approx(0.7)
        assert out.epsilon_threshold == pytest.approx(0.35)

    def test_deterministic_under_seed(self, query, db):
        a = run_tsens_dp(
            query, db, primary="R", epsilon=1.0, ell=50,
            rng=np.random.default_rng(9),
        )
        b = run_tsens_dp(
            query, db, primary="R", epsilon=1.0, ell=50,
            rng=np.random.default_rng(9),
        )
        assert a.answer == b.answer and a.tau == b.tau

    def test_clamps_negative_answers(self, query, db):
        # Tiny epsilon => enormous noise; over several seeds we must never
        # see a negative release.
        for seed in range(20):
            out = run_tsens_dp(
                query, db, primary="R", epsilon=0.01, ell=50,
                rng=np.random.default_rng(seed),
            )
            assert out.answer >= 0.0

    def test_invalid_ell(self, query, db):
        with pytest.raises(MechanismConfigError):
            run_tsens_dp(query, db, primary="R", epsilon=1.0, ell=0)


class TestAccuracy:
    def test_large_epsilon_small_error(self, query, db):
        errors = [
            run_tsens_dp(
                query, db, primary="R", epsilon=100.0, ell=64,
                rng=np.random.default_rng(seed),
            ).relative_error
            for seed in range(10)
        ]
        assert sorted(errors)[len(errors) // 2] < 0.05

    def test_oracle_reuse_matches_fresh(self, query, db):
        oracle = TruncationOracle(query, db, "R")
        reused = run_tsens_dp(
            query, db, primary="R", epsilon=1.0, ell=50, oracle=oracle,
            rng=np.random.default_rng(4),
        )
        fresh = run_tsens_dp(
            query, db, primary="R", epsilon=1.0, ell=50,
            rng=np.random.default_rng(4),
        )
        assert reused.answer == fresh.answer

    def test_ell_one_truncates_heavily(self, query, db):
        out = run_tsens_dp(
            query, db, primary="R", epsilon=1.0, ell=1,
            rng=np.random.default_rng(5),
        )
        assert out.tau == 1
        # The hot rows (sensitivity 30) must be gone.
        assert out.truncated_count <= 20

    def test_tau_tracks_sensitivity_scale(self, query, db):
        # With a generous budget the learned τ should land near the point
        # where truncation stops biting (δ ∈ {1, 30} here): τ ≥ 30 keeps
        # everything, and SVT with low noise should stop well below ell.
        taus = [
            run_tsens_dp(
                query, db, primary="R", epsilon=50.0, ell=1000,
                rng=np.random.default_rng(seed),
            ).tau
            for seed in range(10)
        ]
        median_tau = sorted(taus)[len(taus) // 2]
        assert 30 <= median_tau <= 200
