"""R006 — no-bare-assert: library code must raise real exceptions.

``python -O`` strips ``assert`` statements, so an invariant guarded by a
bare assert silently stops being checked in optimised runs — and its
message is lost to callers who want to handle the failure.  Library code
raises :class:`~repro.exceptions.InternalError` (or a specific
:class:`~repro.exceptions.ReproError`) instead.  Tests are exempt:
asserts are pytest's native idiom there.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.analysis.framework import FileContext, Finding, Rule


class NoBareAssertRule(Rule):
    rule_id = "R006"
    title = "no-bare-assert: assert statement in library code"
    rationale = (
        "python -O strips asserts; library invariants must raise "
        "InternalError/ReproError so they survive optimised runs."
    )

    def applies_to(self, path: PurePath) -> bool:
        parts = set(path.parts)
        return "tests" not in parts and "test" not in parts

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield ctx.finding(
                    self,
                    node,
                    "bare assert is stripped under python -O; raise "
                    "InternalError (repro.exceptions) instead",
                )
