"""Unit tests for :mod:`repro.core.result` — multiplicity tables."""

import pytest

from repro.core.result import MultiplicityTable, SensitiveTuple, SensitivityResult
from repro.engine import Relation


@pytest.fixture
def dense_table():
    factor = Relation(["A", "B"], {("a1", "b1"): 3, ("a2", "b2"): 7})
    return MultiplicityTable("R", (factor,))


@pytest.fixture
def factored_table():
    left = Relation(["A"], {("a1",): 2, ("a2",): 5})
    right = Relation(["B"], {("b1",): 3})
    return MultiplicityTable("R", (left, right))


class TestDenseTable:
    def test_lookup(self, dense_table):
        assert dense_table.sensitivity_of({"A": "a2", "B": "b2"}) == 7

    def test_missing_combination_is_zero(self, dense_table):
        assert dense_table.sensitivity_of({"A": "a1", "B": "b2"}) == 0

    def test_extra_keys_ignored(self, dense_table):
        assert dense_table.sensitivity_of({"A": "a1", "B": "b1", "Z": 9}) == 3

    def test_argmax(self, dense_table):
        assignment, value = dense_table.argmax()
        assert value == 7
        assert assignment == {"A": "a2", "B": "b2"}

    def test_max_sensitivity(self, dense_table):
        assert dense_table.max_sensitivity() == 7


class TestFactoredTable:
    def test_lookup_multiplies(self, factored_table):
        assert factored_table.sensitivity_of({"A": "a2", "B": "b1"}) == 15

    def test_missing_factor_value_is_zero(self, factored_table):
        assert factored_table.sensitivity_of({"A": "a2", "B": "zz"}) == 0

    def test_argmax_multiplies_maxima(self, factored_table):
        assignment, value = factored_table.argmax()
        assert value == 15
        assert assignment == {"A": "a2", "B": "b1"}

    def test_empty_factor_argmax(self):
        table = MultiplicityTable(
            "R", (Relation(["A"], ()), Relation(["B"], {("b",): 2}))
        )
        assert table.argmax() == (None, 0)

    def test_dense_materialisation(self, factored_table):
        dense = factored_table.dense()
        assert dense.multiplicity(("a1", "b1")) == 6
        assert dense.total_count() == (2 + 5) * 3

    def test_overlapping_factors_rejected(self):
        with pytest.raises(ValueError):
            MultiplicityTable(
                "R",
                (Relation(["A"], [(1,)]), Relation(["A"], [(2,)])),
            )

    def test_no_factors_rejected(self):
        with pytest.raises(ValueError):
            MultiplicityTable("R", ())

    def test_zero_arity_factor_acts_as_scalar(self):
        unit = Relation([], {(): 4})
        other = Relation(["A"], {("a",): 3})
        table = MultiplicityTable("R", (unit, other))
        assert table.sensitivity_of({"A": "a"}) == 12


class TestScaling:
    def test_scaled_lookups(self, dense_table):
        assert dense_table.scaled(10).sensitivity_of({"A": "a1", "B": "b1"}) == 30

    def test_scaled_argmax(self, factored_table):
        assert factored_table.scaled(2).argmax()[1] == 30

    def test_zero_multiplier(self, dense_table):
        zeroed = dense_table.scaled(0)
        assert zeroed.sensitivity_of({"A": "a2", "B": "b2"}) == 0
        assert zeroed.dense().is_empty()

    def test_attributes(self, factored_table):
        assert factored_table.attributes == ("A", "B")


class TestSensitivityResult:
    def test_tuple_sensitivity_helper(self, dense_table):
        result = SensitivityResult(
            query_name="Q",
            method="tsens",
            local_sensitivity=7,
            witness=SensitiveTuple("R", {"A": "a2", "B": "b2"}, 7),
            per_relation={},
            tables={"R": dense_table},
        )
        assert result.tuple_sensitivity("R", {"A": "a1", "B": "b1"}) == 3
        with pytest.raises(KeyError):
            result.table("S")

    def test_sensitive_tuple_as_row(self):
        witness = SensitiveTuple("R", {"A": 1, "B": 2}, 5)
        assert witness.as_row(("B", "A")) == (2, 1)
