"""Conjunctive-query representation, decompositions, and classification."""

from repro.query.atoms import Atom
from repro.query.classify import (
    classify,
    is_doubly_acyclic,
    is_doubly_acyclic_tree,
    is_path_query,
    path_order,
)
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.ghd import auto_decompose, ghd_from_groups
from repro.query.gyo import gyo_join_forest, gyo_join_tree, gyo_reduce, is_acyclic
from repro.query.hypergraph import Hypergraph
from repro.query.jointree import DecompositionTree, TreeNode, join_tree_from_parents
from repro.query.parser import parse_query
from repro.query.predicates import Predicate, parse_predicate

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "DecompositionTree",
    "Hypergraph",
    "TreeNode",
    "auto_decompose",
    "classify",
    "ghd_from_groups",
    "gyo_join_forest",
    "gyo_join_tree",
    "gyo_reduce",
    "is_acyclic",
    "is_doubly_acyclic",
    "is_doubly_acyclic_tree",
    "is_path_query",
    "join_tree_from_parents",
    "parse_predicate",
    "parse_query",
    "Predicate",
    "path_order",
]
