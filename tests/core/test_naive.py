"""Unit tests for the naive Theorem 3.1 algorithm."""

import pytest

from repro.core import naive_local_sensitivity, naive_tuple_sensitivity
from repro.core.naive import DomainTooLargeError
from repro.engine import Database, Relation
from repro.query import parse_query


class TestNaive:
    def test_fig1(self, fig1_query, fig1_db):
        result = naive_local_sensitivity(fig1_query, fig1_db)
        assert result.local_sensitivity == 4
        assert result.witness.relation == "R1"

    def test_method_label(self, fig1_query, fig1_db):
        assert naive_local_sensitivity(fig1_query, fig1_db).method == "naive"

    def test_restricted_relations(self, fig1_query, fig1_db):
        result = naive_local_sensitivity(
            fig1_query, fig1_db, relations=("R3",)
        )
        assert set(result.per_relation) == {"R3"}
        assert result.local_sensitivity == 1

    def test_domain_cap(self, fig1_query, fig1_db):
        with pytest.raises(DomainTooLargeError):
            naive_local_sensitivity(fig1_query, fig1_db, max_candidates=2)

    def test_no_tables_produced(self, fig1_query, fig1_db):
        assert naive_local_sensitivity(fig1_query, fig1_db).tables == {}


class TestNaiveTupleSensitivity:
    def test_downward(self, fig1_query, fig1_db):
        delta = naive_tuple_sensitivity(
            fig1_query, fig1_db, "R1", ("a1", "b1", "c1")
        )
        assert delta == 1

    def test_upward(self, fig1_query, fig1_db):
        delta = naive_tuple_sensitivity(
            fig1_query, fig1_db, "R1", ("a2", "b2", "c1")
        )
        assert delta == 4

    def test_irrelevant_tuple(self, fig1_query, fig1_db):
        delta = naive_tuple_sensitivity(
            fig1_query, fig1_db, "R1", ("zz", "zz", "zz")
        )
        assert delta == 0

    def test_duplicate_removal_one_copy(self):
        q = parse_query("R(A), S(A)")
        db = Database(
            {"R": Relation(["A"], {(1,): 3}), "S": Relation(["A"], {(1,): 2})}
        )
        # Removing one copy of R(1) removes 2 outputs (its S partners).
        assert naive_tuple_sensitivity(q, db, "R", (1,)) == 2
