"""Known-bad for R005: raw arithmetic on multiplicity columns.

Fixture only — parsed by the analyzer, never imported or executed.
"""


def scale(relation, factor):
    return relation._mult * factor  # silent int64 wrap on overflow


def combine(left_mult, right_mult):
    products = left_mult * right_mult
    return products


def bump(relation, delta):
    relation._mult += delta  # augmented form wraps too
