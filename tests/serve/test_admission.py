"""Unit tests for the coalescing admission queue."""

import threading

import pytest

from repro.engine import Database, Relation
from repro.exceptions import ServeError, UnknownRelationError
from repro.query import parse_query
from repro.serve import AdmissionQueue, EpochManager
from repro.session import prepare


def _stack(max_batch=4096):
    query = parse_query("Q(A,B,C) :- R(A,B), S(B,C)")
    db = Database(
        {
            "R": Relation(["A", "B"], [(1, 2), (3, 2)]),
            "S": Relation(["B", "C"], [(2, 4)]),
        }
    )
    session = prepare(query, db)
    manager = EpochManager(session)
    queue = AdmissionQueue(manager, max_batch=max_batch)
    return session, manager, queue


@pytest.fixture()
def stack():
    session, manager, queue = _stack()
    yield session, manager, queue
    queue.close()
    manager.close()
    session.close()


class TestProbes:
    def test_probe_answers_match_direct_session_probe(self, stack):
        session, manager, queue = stack
        rows = [(2, 0), (2, 1), (9, 9)]
        expected = session.probe("S", rows)
        with manager.acquire() as lease:
            assert queue.submit_probe(lease, "S", rows).result(timeout=60) == expected

    def test_concurrent_probes_coalesce_into_fewer_passes(self, stack):
        _session, manager, queue = stack
        n_requests = 24
        barrier = threading.Barrier(n_requests)
        results = [None] * n_requests
        lease = manager.acquire()

        def submit(i):
            barrier.wait()
            results[i] = queue.submit_probe(lease, "S", [(2, i)])

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(n_requests)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(f.result(timeout=60) == [2] for f in results)
        stats = queue.stats()
        assert stats["probe_requests"] == n_requests
        assert stats["probe_passes"] < n_requests
        lease.release()

    def test_max_batch_chunks_large_groups(self):
        session, manager, queue = _stack(max_batch=2)
        try:
            with manager.acquire() as lease:
                futures = [
                    queue.submit_probe(lease, "S", [(2, i), (2, i + 100)])
                    for i in range(5)
                ]
                assert all(
                    f.result(timeout=60) == [2, 2] for f in futures
                )
            assert queue.stats()["probe_passes"] >= 1
        finally:
            queue.close()
            manager.close()
            session.close()

    def test_probe_error_propagates_to_every_future(self, stack):
        _session, manager, queue = stack
        with manager.acquire() as lease:
            future = queue.submit_probe(lease, "Nope", [(1, 1)])
            with pytest.raises(UnknownRelationError):
                future.result(timeout=60)

    def test_released_lease_fails_the_future_not_the_queue(self, stack):
        _session, manager, queue = stack
        lease = manager.acquire()
        lease.release()
        with pytest.raises(ServeError):
            queue.submit_probe(lease, "S", [(2, 0)]).result(timeout=60)
        # The dispatcher survived; a fresh lease still works.
        with manager.acquire() as fresh:
            assert queue.submit_probe(fresh, "S", [(2, 0)]).result(timeout=60) == [2]


class TestReads:
    def test_all_kinds_execute(self, stack):
        session, manager, queue = stack
        with manager.acquire() as lease:
            assert queue.submit_read(lease, "count").result(timeout=60) == 2
            sens = queue.submit_read(lease, "sensitivity").result(timeout=60)
            assert sens.local_sensitivity == session.sensitivity().local_sensitivity
            topk = queue.submit_read(lease, "top_k", k=2).result(timeout=60)
            assert topk.local_sensitivity >= sens.local_sensitivity
            explain = queue.submit_read(lease, "explain").result(timeout=60)
            assert explain.local_sensitivity == sens.local_sensitivity
            stats = queue.submit_read(lease, "stats").result(timeout=60)
            assert stats["backend"] == "python"

    def test_duplicate_reads_execute_once(self, stack):
        _session, manager, queue = stack
        n_requests = 16
        barrier = threading.Barrier(n_requests)
        futures = [None] * n_requests
        lease = manager.acquire()

        def submit(i):
            barrier.wait()
            futures[i] = queue.submit_read(
                lease, "sensitivity", method="auto", skip_relations=[]
            )

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(n_requests)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [f.result(timeout=60) for f in futures]
        assert len({id(r) for r in results}) < n_requests  # shared objects
        stats = queue.stats()
        assert stats["read_requests"] == n_requests
        assert stats["read_executions"] < n_requests
        lease.release()

    def test_list_and_tuple_parameters_share_a_group(self, stack):
        _session, manager, queue = stack
        with manager.acquire() as lease:
            a = queue.submit_read(lease, "explain", skip_relations=["S"])
            b = queue.submit_read(lease, "explain", skip_relations=("S",))
            assert (
                a.result(timeout=60).local_sensitivity
                == b.result(timeout=60).local_sensitivity
            )

    def test_unknown_kind_raises_immediately(self, stack):
        _session, manager, queue = stack
        with manager.acquire() as lease:
            with pytest.raises(ServeError):
                queue.submit_read(lease, "release")


class TestLifecycle:
    def test_close_refuses_new_submissions(self):
        session, manager, queue = _stack()
        lease = manager.acquire()
        queue.close()
        with pytest.raises(ServeError):
            queue.submit_probe(lease, "S", [(2, 0)])
        with pytest.raises(ServeError):
            queue.submit_read(lease, "count")
        queue.close()  # idempotent
        lease.release()
        manager.close()
        session.close()

    def test_close_drains_pending_work(self):
        session, manager, queue = _stack()
        with manager.acquire() as lease:
            futures = [
                queue.submit_probe(lease, "S", [(2, i)]) for i in range(8)
            ]
            queue.close()
            assert all(f.result(timeout=60) == [2] for f in futures)
        manager.close()
        session.close()

    def test_invalid_max_batch(self):
        session = prepare(
            parse_query("Q(A,B) :- R(A,B)"),
            Database({"R": Relation(["A", "B"], [(1, 2)])}),
        )
        manager = EpochManager(session)
        with pytest.raises(ServeError):
            AdmissionQueue(manager, max_batch=0)
        manager.close()
        session.close()
