"""Ablation — maintained sensitivity under updates vs recompute-per-update.

PR 4's session bench pinned that maintained *counts* beat
rebuild-per-update; this one pins the same claim for the full TSens
pipeline.  Once a session's join-state (botjoins, topjoins, multiplicity
tables, witnesses) is materialised, each committed update folds a small
delta into every level and a `sensitivity()` read refreshes from the
maintained structures — while the historical pattern re-plans, re-binds
and recomputes botjoins, topjoins, every table and every witness from
scratch after each change.

Same broom-shaped workload as ``bench_session_updates`` (a star around a
hub plus a two-hop handle — deliberately *not* a path query, so
``sensitivity()`` resolves to TSens).  Both sides share one explicit
join tree, so the measured gap excludes the rebuild's decomposition
cost; the assertion is conservative.

The bench asserts exact agreement after every update (local sensitivity
and all per-relation witness sensitivities) and a ≥5× speedup for the
maintained session, on both backends.
"""

import time

import numpy as np

from repro.datasets import random_update_stream
from repro.engine import Database, Relation
from repro.query import parse_query
from repro.query.jointree import join_tree_from_parents
from repro.session import prepare

UPDATES = 20
#: Per-backend relation sizes: large enough that one full TSens rebuild
#: clearly dominates one maintained fold+read, small enough for CI.  The
#: columnar engine needs bigger tables: its maintained cost is mostly
#: fixed per-kernel overhead, so the gap widens with scale.
ROWS = {"python": 2000, "columnar": 60000}
DOMAIN = 400
SEED = 11

QUERY = parse_query(
    "Q(A,B,C,D,E,F,G) :- Hub(A,B), S1(A,C), S2(A,D), S3(A,E), T1(B,F), T2(F,G)"
)
TREE = join_tree_from_parents(
    QUERY,
    "Hub",
    {"S1": "Hub", "S2": "Hub", "S3": "Hub", "T1": "Hub", "T2": "T1"},
)


def _broom_database(backend: str, rng: np.random.Generator) -> Database:
    n_rows = ROWS[backend]

    def table(attrs):
        rows = rng.integers(0, DOMAIN, size=(n_rows, len(attrs)))
        return Relation(attrs, [tuple(int(v) for v in row) for row in rows])

    return Database(
        {
            "Hub": table(["A", "B"]),
            "S1": table(["A", "C"]),
            "S2": table(["A", "D"]),
            "S3": table(["A", "E"]),
            "T1": table(["B", "F"]),
            "T2": table(["F", "G"]),
        },
        backend=backend,
    )


def _snapshot(result):
    """The per-update agreement fingerprint: LS plus every witness δ."""
    return (
        result.local_sensitivity,
        tuple(
            (relation, witness.sensitivity)
            for relation, witness in sorted(result.per_relation.items())
        ),
    )


def rebuild_per_update_sensitivity(query, db, stream, tree):
    """The recompute-from-scratch strawman: a fresh plan + full TSens
    (bind, botjoins, topjoins, all tables, all witnesses) per update."""
    snapshots = []
    current = db
    for op, relation, row in stream:
        current = (
            current.add_tuple(relation, row)
            if op == "insert"
            else current.remove_tuple(relation, row)
        )
        snapshots.append(
            _snapshot(prepare(query, current, tree=tree).sensitivity())
        )
    return snapshots


def test_maintained_sensitivity_vs_recompute(benchmark, backend):
    rng = np.random.default_rng(SEED)
    db = _broom_database(backend, rng)
    stream = random_update_stream(QUERY, db, rng, UPDATES)

    # The maintained session exists up front (the session API's whole
    # point); the timed region is the update stream itself — fold the
    # delta, then read sensitivity off the maintained state.
    session = prepare(QUERY, db, tree=TREE)
    session.sensitivity()  # materialise topjoins/tables/witnesses

    def maintained_stream():
        snapshots = []
        for op, relation, row in stream:
            if op == "insert":
                session.insert(relation, row)
            else:
                session.delete(relation, row)
            snapshots.append(_snapshot(session.sensitivity()))
        return snapshots

    maintained = benchmark.pedantic(maintained_stream, rounds=1, iterations=1)
    maintained_seconds = benchmark.stats.stats.min

    start = time.perf_counter()
    rebuilt = rebuild_per_update_sensitivity(QUERY, db, stream, TREE)
    rebuild_seconds = time.perf_counter() - start

    # Exact agreement after every single update, not just at the end.
    assert maintained == rebuilt

    speedup = rebuild_seconds / max(maintained_seconds, 1e-9)
    benchmark.extra_info["updates"] = UPDATES
    benchmark.extra_info["maintained_seconds"] = maintained_seconds
    benchmark.extra_info["rebuild_seconds"] = rebuild_seconds
    benchmark.extra_info["rebuild_vs_maintained_speedup"] = speedup

    # The acceptance bar: maintained sensitivity-after-update beats
    # recompute-per-update by at least 5x on both backends.
    assert speedup >= 5.0
