"""Persistent worker pool fanning columnar kernels across hash shards.

:class:`ParallelContext` is the sharded-execution front end the evaluation
layer talks to.  With ``workers=1`` (the default everywhere) every method
falls through to the serial operators in :mod:`repro.engine.operators`, so
the context is free and behavior is bit-identical to a build without this
module.  With ``workers=N`` it keeps ``N`` long-lived worker processes and
implements:

* ``join`` / ``join_group`` — co-partition both operands on a shared join
  attribute (:mod:`repro.engine.sharding`), run the vectorized join (with
  the final group-by fused into the worker) per shard, and reduce the
  partials on the coordinator.  When the grouping drops the partition
  attribute the shard outputs are *partial* group sums and are regrouped
  with the overflow-checked union kernel; otherwise they are disjoint and
  simply concatenate.
* ``group_by`` — partition on a grouping attribute; disjoint partials.
* ``semijoin`` — co-partition on a shared attribute; disjoint survivors.
* ``filter`` — row-block partition; workers need real dictionary values
  for selection predicates, so the vocabulary is incrementally replicated
  to workers first (append-only, so replication is a suffix send).

Exactness: hash co-partitioning sends every joinable pair of rows to the
same shard, every output row retains the partition attribute (so shard
outputs are disjoint), and regrouped partials go through the same
overflow-checked ``union_all`` kernel the serial fold uses.  Order may
differ from the serial plan, but relations are bags — every consumer above
the engine is order-independent — so counts, sensitivities and tie-breaks
agree exactly.  The property suite
``tests/property/test_sharded_equivalence.py`` pins this.

Vocabulary discipline: workers receive *read-only* vocabulary replicas —
``encode`` raises :class:`~repro.exceptions.InternalError`, so no worker
can mutate the shared dictionary — and
:func:`~repro.engine.columnar.reset_vocabulary` is vetoed while any live
context has pinned a vocabulary, because shard codes already exported to
workers would silently decode against the wrong dictionary.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import columnar as _columnar
from repro.engine import operators as _operators
from repro.engine.columnar import ColumnarRelation, _Vocabulary
from repro.engine.relation import Relation
from repro.engine.sharding import (
    ShardMap,
    ShardedRelation,
    decode_relation,
    encode_result,
    import_result,
    release_result,
)
from repro.exceptions import InternalError, SessionError

#: Below this many distinct rows (larger operand) a fan-out costs more in
#: partitioning + IPC than the kernel itself; run serial instead.
DEFAULT_MIN_SHARD_ROWS = 8192


def default_worker_count() -> int:
    """Worker count matching the cores this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without affinity (macOS)
        return max(1, os.cpu_count() or 1)


# ================================================================ worker side
class _FrozenVocabulary(_Vocabulary):
    """A worker's read-only vocabulary replica.

    Decoding (``values``/``lookup``) works on whatever prefix has been
    replicated; ``encode`` always raises — workers must never mint codes,
    or the same value could get different codes in different processes and
    joins would silently drop rows.
    """

    __slots__ = ()

    def encode(self, value: object) -> int:
        raise InternalError(
            "sharded worker attempted to encode a new value into the shared "
            "vocabulary; all encoding must happen on the coordinator"
        )


#: Per-worker-process vocabulary replicas, keyed by coordinator generation.
_WORKER_VOCABS: Dict[int, _FrozenVocabulary] = {}


def _worker_vocab(generation: int) -> _FrozenVocabulary:
    vocab = _WORKER_VOCABS.get(generation)
    if vocab is None:
        vocab = _FrozenVocabulary(generation=generation)
        _WORKER_VOCABS[generation] = vocab
    return vocab


def _extend_worker_vocab(generation: int, start: int, values: Sequence[object]) -> None:
    vocab = _worker_vocab(generation)
    if len(vocab.values) != start:
        raise InternalError(
            f"vocabulary replica out of sync: worker has {len(vocab.values)} "
            f"values, coordinator sent suffix starting at {start}"
        )
    for value in values:
        vocab.code_of[value] = len(vocab.values)
        vocab.values.append(value)


def _silence_shm_resource_tracking() -> None:
    """Detach shared-memory segments from this process's resource tracker.

    Workers only *attach* segments the coordinator owns; letting the
    tracker register them makes it unlink blocks still in use and spam
    leak warnings at exit (the well-known attach-side tracker problem,
    fixed upstream only in 3.13's ``track=False``).
    """
    from multiprocessing import resource_tracker

    register = resource_tracker.register
    unregister = resource_tracker.unregister

    def _register(name, rtype):
        if rtype != "shared_memory":
            register(name, rtype)

    def _unregister(name, rtype):
        if rtype != "shared_memory":
            unregister(name, rtype)

    resource_tracker.register = _register
    resource_tracker.unregister = _unregister


def _kernel_join(payload, resolve):
    left = resolve(payload["left"])
    right = resolve(payload["right"])
    out = _operators.join(left, right)
    group = payload.get("group")
    if group is not None:
        out = _operators.group_by(out, group)
    return out


def _kernel_group_by(payload, resolve):
    return _operators.group_by(resolve(payload["relation"]), payload["attrs"])


def _kernel_semijoin(payload, resolve):
    return _operators.semijoin(resolve(payload["left"]), resolve(payload["right"]))


def _kernel_filter(payload, resolve):
    return resolve(payload["relation"]).filter(payload["predicate"])


_KERNELS = {
    "join": _kernel_join,
    "group_by": _kernel_group_by,
    "semijoin": _kernel_semijoin,
    "filter": _kernel_filter,
}


def _execute_task(kind: str, payload) -> Tuple:
    """Run one kernel, attaching/closing shared-memory shards around it.

    Large columnar results go back through a worker-created shared-memory
    segment (:func:`~repro.engine.sharding.encode_result`) — the
    coordinator unlinks it after the copy-out; small results ride the
    pipe inline.
    """
    segments = []

    def resolve(relation_payload):
        relation, segment = decode_relation(relation_payload, _worker_vocab)
        if segment is not None:
            segments.append(segment)
        return relation

    try:
        return encode_result(_KERNELS[kind](payload, resolve))
    finally:
        # Kernel outputs are fresh arrays and the shard views died with the
        # kernel frame, so the mappings can be dropped; if an exception
        # traceback still pins a view, leave the mapping to the OS.
        for segment in segments:
            with contextlib.suppress(BufferError, OSError):
                segment.close()


def _worker_main(conn) -> None:
    """Worker loop: ``(task_id, kind, payload)`` in, ``(task_id, ok, value)``
    out, in order.  ``kind="vocab"`` extends the local replica without a
    reply; ``None`` shuts down."""
    _silence_shm_resource_tracking()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, kind, payload = message
        if kind == "vocab":
            generation, start, values = payload
            _extend_worker_vocab(generation, start, values)
            continue
        try:
            result = (task_id, True, _execute_task(kind, payload))
        except BaseException as exc:  # propagated to the coordinator
            result = (task_id, False, exc)
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            break
        except Exception as exc:  # unpicklable kernel error
            conn.send((task_id, False, InternalError(f"worker error: {exc!r}")))


# ============================================================ coordinator side
class _WorkerHandle:
    __slots__ = ("process", "conn", "synced")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        #: vocabulary generation -> number of values already replicated.
        self.synced: Dict[int, int] = {}


def _shutdown_workers(handles: List[_WorkerHandle]) -> None:
    for handle in handles:
        with contextlib.suppress(OSError, ValueError, BrokenPipeError):
            handle.conn.send(None)
    for handle in handles:
        handle.process.join(timeout=2)
        if handle.process.is_alive():
            handle.process.terminate()
        with contextlib.suppress(OSError):
            handle.conn.close()
    handles.clear()


class WorkerPool:
    """``n`` persistent worker processes fed over one pipe each.

    Workers are started lazily on the first :meth:`run` (fork where
    available — shard payloads are tiny either way, the data rides in
    shared memory).  Tasks are round-robined; each worker answers its
    tasks in order, so collection is deterministic.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None):
        if workers < 1:
            raise SessionError(f"worker pool needs at least 1 worker, got {workers}")
        self.workers = workers
        method = start_method or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._mp = multiprocessing.get_context(method)
        self._handles: List[_WorkerHandle] = []
        self._closed = False
        self._finalizer = weakref.finalize(self, _shutdown_workers, self._handles)

    def _ensure_started(self) -> None:
        if self._closed:
            raise SessionError("worker pool is closed")
        if self._handles:
            return
        for _ in range(self.workers):
            parent_conn, child_conn = self._mp.Pipe()
            process = self._mp.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            self._handles.append(_WorkerHandle(process, parent_conn))

    def sync_vocabulary(self, vocab: _Vocabulary) -> None:
        """Replicate the vocabulary suffix workers have not seen yet."""
        self._ensure_started()
        size = len(vocab.values)
        for handle in self._handles:
            done = handle.synced.get(vocab.generation, 0)
            if done < size:
                handle.conn.send(
                    (-1, "vocab", (vocab.generation, done, vocab.values[done:size]))
                )
                handle.synced[vocab.generation] = size

    def run(self, tasks: Sequence[Tuple[str, dict]]) -> List:
        """Run ``(kind, payload)`` tasks across the pool; results in order.

        A worker exception is re-raised here (real exception objects
        travel back over the pipe, so ``MultiplicityOverflowError`` from a
        shard behaves exactly like the serial overflow).
        """
        self._ensure_started()
        conns = []
        for index, (kind, payload) in enumerate(tasks):
            conn = self._handles[index % len(self._handles)].conn
            conn.send((index, kind, payload))
            conns.append(conn)
        results: List = [None] * len(tasks)
        failure: Optional[BaseException] = None
        for index, conn in enumerate(conns):
            try:
                task_id, ok, value = conn.recv()
            except (EOFError, OSError) as exc:
                raise InternalError(
                    "sharded worker died mid-task; state is unchanged "
                    f"(pipe error: {exc!r})"
                ) from exc
            if task_id != index:
                raise InternalError(
                    f"worker reply out of order: expected task {index}, got {task_id}"
                )
            if ok:
                results[index] = value
            elif failure is None:
                failure = value
        if failure is not None:
            for value in results:
                release_result(value)
            raise failure
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._finalizer()


# ------------------------------------------------------------- combination
def _combine(parts: List, regroup: bool):
    """Reduce per-shard kernel outputs into one relation.

    ``regroup=False``: shard outputs are disjoint (each row carries the
    partition attribute), so they concatenate without deduplication.
    ``regroup=True``: shard outputs are partial group sums over the same
    keys, reduced with the overflow-checked union kernel.
    """
    first = parts[0]
    if isinstance(first, ColumnarRelation):
        if regroup:
            return _columnar.union_all(parts)
        vocab = first._vocab
        codes = [
            np.concatenate([part._codes[j] for part in parts])
            for j in range(first.schema.arity)
        ]
        mult = np.concatenate([part._mult for part in parts])
        return ColumnarRelation._from_parts(first.schema, codes, mult, vocab=vocab)
    merged: Dict = {}
    for part in parts:
        for row, count in part.counts.items():
            merged[row] = merged.get(row, 0) + count
    return Relation._from_counts(first.schema, merged)


#: Live contexts consulted by the vocabulary reset guard.
_LIVE_CONTEXTS: "weakref.WeakSet[ParallelContext]" = weakref.WeakSet()


def _vocabulary_reset_guard() -> None:
    for context in list(_LIVE_CONTEXTS):
        if context.active and context.pinned_vocabulary is not None:
            raise InternalError(
                "reset_vocabulary() while a sharded ParallelContext holds "
                "exported code arrays; close() sharded sessions first — "
                "workers would decode stale codes against a fresh dictionary"
            )


_columnar.register_reset_guard(_vocabulary_reset_guard)


class ParallelContext:
    """Sharded execution context: a worker pool plus fan-out operators.

    ``workers=1`` (the default) never starts processes and every operator
    delegates straight to the serial kernels — callers can thread a
    context unconditionally.  ``min_shard_rows`` gates fan-out by operand
    size (tests set it to 0 to force sharding on tiny inputs).

    The context pins the first columnar vocabulary it exports and refuses
    operands from any other vocabulary: codes crossing process boundaries
    must all mean the same values.
    """

    def __init__(
        self,
        workers: int = 1,
        min_shard_rows: int = DEFAULT_MIN_SHARD_ROWS,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise SessionError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.min_shard_rows = min_shard_rows
        self._pool = WorkerPool(workers, start_method) if workers > 1 else None
        self._vocab: Optional[_Vocabulary] = None
        self._closed = False
        if workers > 1:
            _LIVE_CONTEXTS.add(self)

    # ---------------------------------------------------------- lifecycle
    @property
    def active(self) -> bool:
        """Whether operators fan out (more than one worker, not closed)."""
        return self.workers > 1 and not self._closed

    @property
    def pinned_vocabulary(self) -> Optional[_Vocabulary]:
        return self._vocab

    def close(self) -> None:
        """Shut the worker processes down.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._vocab = None
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ParallelContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------ plumbing
    def _pin_vocabulary(self, relation) -> None:
        if not isinstance(relation, ColumnarRelation):
            return
        vocab = relation._vocab
        if self._vocab is None:
            if vocab is not _columnar.current_vocabulary():
                raise InternalError(
                    "sharded execution over a relation from a retired "
                    "vocabulary (reset_vocabulary() was called after it was "
                    "built); rebuild the relation or the session"
                )
            self._vocab = vocab
        elif self._vocab is not vocab:
            raise InternalError(
                "sharded execution across vocabularies: reset_vocabulary() "
                "split this session's relations over two dictionaries; "
                "close() and re-prepare the session"
            )

    def _worth_sharding(self, *relations) -> bool:
        if not self.active:
            return False
        kinds = {type(relation) for relation in relations}
        if len(kinds) != 1:
            return False
        return max(relation.distinct_count() for relation in relations) >= max(
            1, self.min_shard_rows
        )

    def _shard(
        self,
        relation,
        attribute: Optional[str],
        cache: Optional[ShardMap],
        key: Optional[str],
    ) -> Tuple[ShardedRelation, bool]:
        """Partition (or fetch the cached partitioning of) one operand.

        Returns ``(sharded, ephemeral)`` — ephemeral partitionings are
        closed by the caller right after the fan-out.
        """
        self._pin_vocabulary(relation)
        if cache is not None and key is not None:
            return cache.get(key, relation, attribute, self.workers, share=True), False
        return ShardedRelation(relation, attribute, self.workers, share=True), True

    def _run(self, kind: str, payloads: Sequence[dict]) -> List:
        if self._pool is None:
            raise InternalError("fan-out attempted on a serial ParallelContext")
        outputs = self._pool.run([(kind, payload) for payload in payloads])
        return [import_result(output, self._vocab) for output in outputs]

    @staticmethod
    def _partition_attribute(
        common: Sequence[str], group: Optional[Sequence[str]]
    ) -> str:
        if group:
            for attribute in common:
                if attribute in group:
                    return attribute
        return common[0]

    # ----------------------------------------------------------- operators
    def join(
        self,
        left,
        right,
        group: Optional[Sequence[str]] = None,
        cache: Optional[ShardMap] = None,
        left_key: Optional[str] = None,
        right_key: Optional[str] = None,
    ):
        """``r̃join`` (optionally fused with a trailing ``γ_group``).

        Serial fallback when the context is inactive, the operands are
        small or mixed-backend, or the join is a cross product of two
        tiny sides.
        """
        common = left.schema.common(right.schema)
        if not common or not self._worth_sharding(left, right):
            out = _operators.join(left, right)
            return _operators.group_by(out, group) if group is not None else out
        attribute = self._partition_attribute(common, group)
        sharded_left, left_ephemeral = self._shard(left, attribute, cache, left_key)
        sharded_right, right_ephemeral = self._shard(right, attribute, cache, right_key)
        group_payload = tuple(group) if group is not None else None
        try:
            parts = self._run(
                "join",
                [
                    {
                        "left": sharded_left.payloads[i],
                        "right": sharded_right.payloads[i],
                        "group": group_payload,
                    }
                    for i in range(self.workers)
                ],
            )
        finally:
            if left_ephemeral:
                sharded_left.close()
            if right_ephemeral:
                sharded_right.close()
        regroup = group is not None and attribute not in group
        return _combine(parts, regroup)

    def group_by(
        self,
        relation,
        attributes: Sequence[str],
        cache: Optional[ShardMap] = None,
        key: Optional[str] = None,
    ):
        """``γ_A`` with disjoint per-shard partials."""
        if not attributes or not self._worth_sharding(relation):
            return _operators.group_by(relation, attributes)
        attribute = attributes[0]
        sharded, ephemeral = self._shard(relation, attribute, cache, key)
        try:
            parts = self._run(
                "group_by",
                [
                    {"relation": payload, "attrs": tuple(attributes)}
                    for payload in sharded.payloads
                ],
            )
        finally:
            if ephemeral:
                sharded.close()
        return _combine(parts, regroup=False)

    def semijoin(self, left, right):
        """Yannakakis reducer, co-partitioned on a shared attribute."""
        common = left.schema.common(right.schema)
        if not common or not self._worth_sharding(left, right):
            return _operators.semijoin(left, right)
        attribute = common[0]
        sharded_left, _ = self._shard(left, attribute, None, None)
        sharded_right, _ = self._shard(right, attribute, None, None)
        try:
            parts = self._run(
                "semijoin",
                [
                    {
                        "left": sharded_left.payloads[i],
                        "right": sharded_right.payloads[i],
                    }
                    for i in range(self.workers)
                ],
            )
        finally:
            sharded_left.close()
            sharded_right.close()
        return _combine(parts, regroup=False)

    def filter(self, relation, predicate):
        """Selection over row blocks; replicates the vocabulary first."""
        if not self._worth_sharding(relation) or not _picklable_predicate(predicate):
            return relation.filter(predicate)
        if isinstance(relation, ColumnarRelation):
            self._pin_vocabulary(relation)
            self._pool.sync_vocabulary(relation._vocab)
        sharded = ShardedRelation(relation, None, self.workers, share=True)
        try:
            parts = self._run(
                "filter",
                [
                    {"relation": payload, "predicate": predicate}
                    for payload in sharded.payloads
                ],
            )
        finally:
            sharded.close()
        return _combine(parts, regroup=False)

    def join_group(
        self,
        parts: Sequence,
        group: Optional[Sequence[str]],
        cache: Optional[ShardMap] = None,
        keys: Optional[Sequence[Optional[str]]] = None,
    ):
        """Left-deep ``r̃join`` fold of ``parts`` ending in ``γ_group``.

        The bag-identical sharded counterpart of
        ``group_by(join_all(parts), group)`` — the grouping is fused into
        the last join's shard kernels.  ``keys`` (aligned with ``parts``)
        names cacheable operands in ``cache``.
        """
        if keys is None:
            keys = [None] * len(parts)
        if len(parts) == 1:
            if group is None:
                return parts[0]
            return self.group_by(parts[0], group, cache=cache, key=keys[0])
        accumulator = parts[0]
        accumulator_key: Optional[str] = keys[0]
        for index in range(1, len(parts)):
            last = index == len(parts) - 1
            accumulator = self.join(
                accumulator,
                parts[index],
                group=group if last else None,
                cache=cache,
                left_key=accumulator_key,
                right_key=keys[index],
            )
            accumulator_key = None
        return accumulator

    def join_all(self, parts: Sequence, cache=None, keys=None):
        """Left-deep ``r̃join`` fold without a trailing group-by."""
        return self.join_group(parts, None, cache=cache, keys=keys)


def _picklable_predicate(predicate) -> bool:
    """Only structural DSL predicates travel to workers; arbitrary
    callables (lambdas, closures) stay on the coordinator."""
    from repro.query.predicates import Predicate

    return isinstance(predicate, Predicate)


def fan_out(parallel: Optional[ParallelContext]) -> bool:
    """True when ``parallel`` is a live multi-worker context."""
    return parallel is not None and parallel.active
