"""Known-good for R004: both backends handled, three acceptable shapes.

Fixture only — parsed by the analyzer, never imported or executed.
"""


def join(left, right):
    if isinstance(left, ColumnarRelation):
        return columnar_join(left, right)
    return dict_join(left, right)  # trailing fallback


def union(left, right):
    if isinstance(left, ColumnarRelation):
        return columnar_union(left, right)
    else:
        return dict_union(left, right)  # explicit else arm


def project(relation, attributes):
    if isinstance(relation, ColumnarRelation):
        return backend_for(relation).project(relation, attributes)  # registry
