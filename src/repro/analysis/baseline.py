"""Baseline files for ``repro lint``.

A baseline records the findings that existed when it was written so a CI
gate can fail only on *new* findings.  Entries are keyed by
``(rule, path, stripped line text)`` — not line numbers — so unrelated
edits above a finding don't invalidate the baseline, while deleting or
fixing the offending line makes its entry *stale*.  Stale entries are
dropped on ``repro lint --update-baseline`` (they "age out").

Matching is consuming: each baseline entry absolves at most one live
finding, so duplicating a baselined bad line yields a new finding.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.framework import Finding, LintConfigError

_VERSION = 1


class Baseline:
    """A multiset of accepted finding keys."""

    def __init__(self, entries: Iterable[Tuple[str, str, str]] = ()):
        self._entries = Counter(tuple(entry) for entry in entries)

    def __len__(self) -> int:
        return sum(self._entries.values())

    # --------------------------------------------------------------- I/O
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise LintConfigError(f"baseline {path} is not valid JSON: {error}") from error
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise LintConfigError(f"baseline {path} has an unsupported format")
        entries = []
        for row in payload.get("entries", []):
            entries.append((row["rule"], row["path"], row["line_text"]))
        return cls(entries)

    @staticmethod
    def write(path: Path, findings: Iterable[Finding]) -> int:
        """Persist ``findings`` as the new baseline; returns the entry count."""
        rows = [
            {"rule": rule, "path": file_path, "line_text": line_text}
            for rule, file_path, line_text in sorted(f.key() for f in findings)
        ]
        payload = {"version": _VERSION, "entries": rows}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return len(rows)

    # ---------------------------------------------------------- matching
    def split(self, findings: List[Finding]) -> Tuple[List[Finding], int, int]:
        """Partition live findings against the baseline.

        Returns ``(new findings, matched count, stale entry count)`` where
        stale entries are baseline rows with no surviving finding.
        """
        remaining = Counter(self._entries)
        new: List[Finding] = []
        matched = 0
        for finding in findings:
            key = finding.key()
            if remaining[key] > 0:
                remaining[key] -= 1
                matched += 1
            else:
                new.append(finding)
        stale = sum(remaining.values())
        return new, matched, stale
