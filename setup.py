from pathlib import Path

from setuptools import find_packages, setup

_here = Path(__file__).resolve().parent
_readme = _here / "README.md"

setup(
    name="repro-tsens",
    version="0.2.0",
    description=(
        "Local sensitivities of counting queries with joins (TSens) with a "
        "pluggable python/columnar execution backend"
    ),
    long_description=_readme.read_text() if _readme.exists() else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis"],
        "bench": ["pytest", "pytest-benchmark"],
        "datasets": ["networkx"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
        # Plugin group for `repro lint`: each entry point is a callable
        # returning an iterable of repro.analysis.framework.Rule instances.
        "repro.lint_rules": [
            "builtin=repro.analysis.rules:builtin_rules",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: Database",
    ],
)
